"""Z-order (Morton) curve: bit interleaving, decoding, and BIGMIN.

The Z-order curve (Morton 1966) is the projection function behind the
ZM-index family: each dimension is quantised to ``bits`` integer bits and
the bits are interleaved so nearby points receive nearby codes.

:func:`bigmin` implements the classic BIGMIN/LITMAX range-splitting
primitive: given a query box and a position on the curve, it returns the
smallest Z-address >= that position that re-enters the box, letting range
scans skip the curve's excursions outside the box.
"""

from __future__ import annotations

import numpy as np

from repro.core import sanitize as _sanitize
from repro.curves.capacity import fits_code_budget, require_code_budget

__all__ = [
    "interleave",
    "deinterleave",
    "interleave_array",
    "deinterleave_array",
    "zencode",
    "zdecode",
    "zencode_array",
    "zdecode_array",
    "quantize",
    "dequantize",
    "bigmin",
]


def quantize(points: np.ndarray, lo: np.ndarray, hi: np.ndarray, bits: int) -> np.ndarray:
    """Map float points in [lo, hi] to integer lattice coordinates.

    The lattice cell is the *floor* cell ``floor(frac * 2^bits)`` (clamped
    to the lattice), the same equal-width bucketing used by the grid-style
    cell routing in ``GridIndex``/Flood — so curve quantisation and grid
    routing can never disagree about which cell a point belongs to.

    Args:
        points: ``(n, d)`` float array.
        lo, hi: per-dimension bounds; points outside are clamped.
        bits: bits per dimension (so coordinates lie in [0, 2^bits - 1]).
    """
    if bits < 1 or bits > 31:
        raise ValueError("bits must be in [1, 31]")
    pts = np.asarray(points, dtype=np.float64)
    span = np.asarray(hi, dtype=np.float64) - np.asarray(lo, dtype=np.float64)
    span[span == 0] = 1.0
    frac = (pts - lo) / span
    scaled = np.clip(frac, 0.0, 1.0) * (1 << bits)
    return np.minimum(np.floor(scaled).astype(np.int64), (1 << bits) - 1)


def dequantize(coords: np.ndarray, lo: np.ndarray, hi: np.ndarray, bits: int) -> np.ndarray:
    """Inverse of :func:`quantize` (to cell-centre coordinates)."""
    span = np.asarray(hi, dtype=np.float64) - np.asarray(lo, dtype=np.float64)
    span[span == 0] = 1.0
    centres = (np.asarray(coords, dtype=np.float64) + 0.5) / (1 << bits)
    return np.asarray(lo) + centres * span


def interleave(coords: tuple[int, ...] | np.ndarray, bits: int) -> int:
    """Interleave d integer coordinates into one Morton code."""
    code = 0
    d = len(coords)
    for bit in range(bits - 1, -1, -1):
        for dim in range(d):
            code = (code << 1) | ((int(coords[dim]) >> bit) & 1)
    return code


def deinterleave(code: int, dims: int, bits: int) -> tuple[int, ...]:
    """Split a Morton code back into d integer coordinates."""
    coords = [0] * dims
    for bit in range(bits):
        for dim in range(dims):
            shift = (bits - 1 - bit) * dims + (dims - 1 - dim)
            coords[dim] = (coords[dim] << 1) | ((code >> shift) & 1)
    return tuple(coords)


def zencode(point, lo, hi, bits: int) -> int:
    """Quantise one float point and return its Morton code."""
    coords = quantize(np.asarray(point, dtype=np.float64)[None, :], np.asarray(lo), np.asarray(hi), bits)[0]
    return interleave(tuple(coords), bits)


def zdecode(code: int, lo, hi, dims: int, bits: int) -> np.ndarray:
    """Morton code back to (approximate) float coordinates."""
    coords = deinterleave(code, dims, bits)
    return dequantize(np.asarray(coords)[None, :], np.asarray(lo), np.asarray(hi), bits)[0]


# -- vectorised bit spreading -------------------------------------------------
#
# ``interleave_array`` is the hot path of every projected-space index: it
# turns an ``(n, d)`` integer coordinate array into n Morton codes with a
# handful of numpy kernels.  For d = 2 and d = 3 the classic magic-mask
# bit-spreading sequences run in O(log bits) array ops; other
# dimensionalities fall back to one masked shift per (bit, dim) pair,
# still fully vectorised over the n points.

#: (shift, mask) spreading steps and the input mask, per dimensionality.
_SPREAD_STEPS = {
    2: (
        (
            (16, np.uint64(0x0000FFFF0000FFFF)),
            (8, np.uint64(0x00FF00FF00FF00FF)),
            (4, np.uint64(0x0F0F0F0F0F0F0F0F)),
            (2, np.uint64(0x3333333333333333)),
            (1, np.uint64(0x5555555555555555)),
        ),
        np.uint64(0xFFFFFFFF),
    ),
    3: (
        (
            (32, np.uint64(0x001F00000000FFFF)),
            (16, np.uint64(0x001F0000FF0000FF)),
            (8, np.uint64(0x100F00F00F00F00F)),
            (4, np.uint64(0x10C30C30C30C30C3)),
            (2, np.uint64(0x1249249249249249)),
        ),
        np.uint64(0x1FFFFF),
    ),
}


def _spread(x: np.ndarray, dims: int) -> np.ndarray:
    """Insert ``dims - 1`` zero bits between the bits of each element."""
    steps, in_mask = _SPREAD_STEPS[dims]
    x = x.astype(np.uint64) & in_mask
    for shift, mask in steps:
        x = (x | (x << np.uint64(shift))) & mask
    return x


def _compact(x: np.ndarray, dims: int) -> np.ndarray:
    """Inverse of :func:`_spread`: keep every ``dims``-th bit, pack them."""
    steps, in_mask = _SPREAD_STEPS[dims]
    x = x.astype(np.uint64) & steps[-1][1]
    for i in range(len(steps) - 1, 0, -1):
        x = (x | (x >> np.uint64(steps[i][0]))) & steps[i - 1][1]
    x = (x | (x >> np.uint64(steps[0][0]))) & in_mask
    return x.astype(np.int64)


def interleave_array(coords: np.ndarray, bits: int) -> np.ndarray:
    """Vectorised :func:`interleave` over an ``(n, d)`` int array.

    Requires ``d * bits <= 62`` (codes fit in int64); dimension 0
    occupies the most significant bit of each ``d``-bit group, matching
    the scalar encoder exactly.
    """
    arr = np.asarray(coords, dtype=np.int64)
    n, d = arr.shape
    require_code_budget(d, bits)
    if _sanitize.enabled():
        _sanitize.check_lattice_coords(arr, bits, what="interleave_array")
    if d == 1:
        return arr[:, 0].copy()
    if d in (2, 3):
        codes = np.zeros(n, dtype=np.uint64)
        for dim in range(d):
            codes |= _spread(arr[:, dim], d) << np.uint64(d - 1 - dim)
        out = codes.astype(np.int64)
        if _sanitize.enabled():
            _sanitize.check_code_headroom(out, what="interleave_array")
        return out
    codes = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        col = (arr >> bit) & 1
        for dim in range(d):
            codes |= col[:, dim] << (bit * d + (d - 1 - dim))
    return codes


def deinterleave_array(codes: np.ndarray, dims: int, bits: int) -> np.ndarray:
    """Vectorised :func:`deinterleave`: codes back to ``(n, d)`` coords.

    Geometries beyond the int64 fast-path budget (the object-dtype codes
    :func:`zencode_array` produces, e.g. ``bits=22, dims=3``) are decoded
    with the exact scalar decoder per code; coordinates always fit int64
    because ``bits <= 31``.
    """
    if not fits_code_budget(dims, bits):
        seq = np.asarray(codes, dtype=object).ravel()
        wide = np.empty((seq.size, dims), dtype=np.int64)
        for i, c in enumerate(seq):
            wide[i] = deinterleave(int(c), dims, bits)
        return wide
    arr = np.asarray(codes, dtype=np.int64)
    if dims == 1:
        return arr[:, None].copy()
    out = np.empty((arr.size, dims), dtype=np.int64)
    if dims in (2, 3):
        u = arr.astype(np.uint64)
        for dim in range(dims):
            out[:, dim] = _compact(u >> np.uint64(dims - 1 - dim), dims)
        if _sanitize.enabled():
            _sanitize.check_lattice_coords(out, bits, what="deinterleave_array")
        return out
    out[:] = 0
    for bit in range(bits):
        for dim in range(dims):
            out[:, dim] |= ((arr >> (bit * dims + (dims - 1 - dim))) & 1) << bit
    return out


def zencode_array(points: np.ndarray, lo, hi, bits: int) -> np.ndarray:
    """Vectorised Morton encoding of an ``(n, d)`` point array.

    Uses magic-number bit spreading (see :func:`interleave_array`);
    returns an ``object`` array of Python ints when the code would
    overflow 62 bits, else ``int64``.
    """
    pts = np.asarray(points, dtype=np.float64)
    n, d = pts.shape
    coords = quantize(pts, np.asarray(lo, dtype=np.float64), np.asarray(hi, dtype=np.float64), bits)
    if fits_code_budget(d, bits):
        return interleave_array(coords, bits)
    out = np.empty(n, dtype=object)
    for i in range(n):
        out[i] = interleave(tuple(coords[i]), bits)
    return out


def zdecode_array(codes: np.ndarray, lo, hi, dims: int, bits: int) -> np.ndarray:
    """Vectorised :func:`zdecode`: Morton codes to ``(n, d)`` float points."""
    coords = deinterleave_array(codes, dims, bits)
    return dequantize(coords, np.asarray(lo), np.asarray(hi), bits)


def _load_bits(code: int, dim: int, dims: int, bits: int) -> int:
    """Extract dimension ``dim``'s coordinate from a Morton code."""
    coord = 0
    for bit in range(bits):
        shift = (bits - 1 - bit) * dims + (dims - 1 - dim)
        coord = (coord << 1) | ((code >> shift) & 1)
    return coord


def _set_bit_pattern(value: int, bit: int, kind: str) -> int:
    """BIGMIN helpers: force bit patterns below position ``bit``.

    ``kind='min'`` sets bit ``bit`` to 1 and all lower bits to 0
    (smallest value with that prefix); ``kind='max'`` sets bit ``bit`` to
    0 and all lower bits to 1 (largest value with that prefix).
    """
    mask_low = (1 << bit) - 1
    if kind == "min":
        return (value | (1 << bit)) & ~mask_low
    return (value & ~(1 << bit)) | mask_low


def bigmin(code: int, lo_code_coords: tuple[int, ...], hi_code_coords: tuple[int, ...],
           dims: int, bits: int) -> int | None:
    """Smallest Morton code > ``code`` whose point lies inside the box.

    Args:
        code: current position on the curve (typically just past a miss).
        lo_code_coords, hi_code_coords: quantised box corners.
        dims, bits: curve geometry.

    Returns:
        The BIGMIN code, or ``None`` if no curve point after ``code``
        intersects the box.

    This is the Tropf-Herzog algorithm walking the code's bits from the
    most significant down, maintaining shrunken box corners.
    """
    lo = list(lo_code_coords)
    hi = list(hi_code_coords)
    result: int | None = None
    total_bits = dims * bits
    for pos in range(total_bits - 1, -1, -1):
        dim = (total_bits - 1 - pos) % dims
        bit_index = pos // dims  # bit position within the dimension
        code_bit = (code >> pos) & 1
        lo_bit = (lo[dim] >> bit_index) & 1
        hi_bit = (hi[dim] >> bit_index) & 1
        if code_bit == 0 and lo_bit == 0 and hi_bit == 0:
            continue
        if code_bit == 0 and lo_bit == 0 and hi_bit == 1:
            # Candidate: jump into the upper half later; continue in lower.
            candidate_lo = list(lo)
            candidate_lo[dim] = _set_bit_pattern(lo[dim], bit_index, "min")
            candidate = _compose(candidate_lo, dims, bits)
            result = candidate if result is None else min(result, candidate)
            hi[dim] = _set_bit_pattern(hi[dim], bit_index, "max")
            continue
        if code_bit == 0 and lo_bit == 1:
            # Box entirely in upper half: BIGMIN is the box minimum.
            return _compose(lo, dims, bits)
        if code_bit == 1 and hi_bit == 0:
            # Box entirely in lower half, code already above: no result here.
            return result
        if code_bit == 1 and lo_bit == 0 and hi_bit == 1:
            lo[dim] = _set_bit_pattern(lo[dim], bit_index, "min")
            continue
        # code_bit == 1 and lo_bit == 1 and hi_bit == 1: continue.
    return result


def _compose(coords: list[int], dims: int, bits: int) -> int:
    return interleave(tuple(coords), bits)
