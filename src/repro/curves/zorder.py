"""Z-order (Morton) curve: bit interleaving, decoding, and BIGMIN.

The Z-order curve (Morton 1966) is the projection function behind the
ZM-index family: each dimension is quantised to ``bits`` integer bits and
the bits are interleaved so nearby points receive nearby codes.

:func:`bigmin` implements the classic BIGMIN/LITMAX range-splitting
primitive: given a query box and a position on the curve, it returns the
smallest Z-address >= that position that re-enters the box, letting range
scans skip the curve's excursions outside the box.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "interleave",
    "deinterleave",
    "zencode",
    "zdecode",
    "zencode_array",
    "quantize",
    "dequantize",
    "bigmin",
]


def quantize(points: np.ndarray, lo: np.ndarray, hi: np.ndarray, bits: int) -> np.ndarray:
    """Map float points in [lo, hi] to integer lattice coordinates.

    Args:
        points: ``(n, d)`` float array.
        lo, hi: per-dimension bounds; points outside are clamped.
        bits: bits per dimension (so coordinates lie in [0, 2^bits - 1]).
    """
    if bits < 1 or bits > 31:
        raise ValueError("bits must be in [1, 31]")
    pts = np.asarray(points, dtype=np.float64)
    span = np.asarray(hi, dtype=np.float64) - np.asarray(lo, dtype=np.float64)
    span[span == 0] = 1.0
    frac = (pts - lo) / span
    scaled = np.clip(frac, 0.0, 1.0) * ((1 << bits) - 1)
    return np.rint(scaled).astype(np.int64)


def dequantize(coords: np.ndarray, lo: np.ndarray, hi: np.ndarray, bits: int) -> np.ndarray:
    """Inverse of :func:`quantize` (to cell-centre coordinates)."""
    span = np.asarray(hi, dtype=np.float64) - np.asarray(lo, dtype=np.float64)
    span[span == 0] = 1.0
    return np.asarray(lo) + np.asarray(coords, dtype=np.float64) / ((1 << bits) - 1) * span


def interleave(coords: tuple[int, ...] | np.ndarray, bits: int) -> int:
    """Interleave d integer coordinates into one Morton code."""
    code = 0
    d = len(coords)
    for bit in range(bits - 1, -1, -1):
        for dim in range(d):
            code = (code << 1) | ((int(coords[dim]) >> bit) & 1)
    return code


def deinterleave(code: int, dims: int, bits: int) -> tuple[int, ...]:
    """Split a Morton code back into d integer coordinates."""
    coords = [0] * dims
    for bit in range(bits):
        for dim in range(dims):
            shift = (bits - 1 - bit) * dims + (dims - 1 - dim)
            coords[dim] = (coords[dim] << 1) | ((code >> shift) & 1)
    return tuple(coords)


def zencode(point, lo, hi, bits: int) -> int:
    """Quantise one float point and return its Morton code."""
    coords = quantize(np.asarray(point, dtype=np.float64)[None, :], np.asarray(lo), np.asarray(hi), bits)[0]
    return interleave(tuple(coords), bits)


def zdecode(code: int, lo, hi, dims: int, bits: int) -> np.ndarray:
    """Morton code back to (approximate) float coordinates."""
    coords = deinterleave(code, dims, bits)
    return dequantize(np.asarray(coords)[None, :], np.asarray(lo), np.asarray(hi), bits)[0]


def zencode_array(points: np.ndarray, lo, hi, bits: int) -> np.ndarray:
    """Vectorised Morton encoding of an ``(n, d)`` point array.

    Uses magic-number bit spreading for d = 2 and a per-bit loop
    otherwise; returns an ``object`` array of Python ints when the code
    would overflow 63 bits, else ``int64``.
    """
    pts = np.asarray(points, dtype=np.float64)
    n, d = pts.shape
    coords = quantize(pts, np.asarray(lo, dtype=np.float64), np.asarray(hi, dtype=np.float64), bits)
    total_bits = d * bits
    if total_bits <= 62:
        codes = np.zeros(n, dtype=np.int64)
        for bit in range(bits - 1, -1, -1):
            for dim in range(d):
                codes = (codes << 1) | ((coords[:, dim] >> bit) & 1)
        return codes
    out = np.empty(n, dtype=object)
    for i in range(n):
        out[i] = interleave(tuple(coords[i]), bits)
    return out


def _load_bits(code: int, dim: int, dims: int, bits: int) -> int:
    """Extract dimension ``dim``'s coordinate from a Morton code."""
    coord = 0
    for bit in range(bits):
        shift = (bits - 1 - bit) * dims + (dims - 1 - dim)
        coord = (coord << 1) | ((code >> shift) & 1)
    return coord


def _set_bit_pattern(value: int, bit: int, kind: str) -> int:
    """BIGMIN helpers: force bit patterns below position ``bit``.

    ``kind='min'`` sets bit ``bit`` to 1 and all lower bits to 0
    (smallest value with that prefix); ``kind='max'`` sets bit ``bit`` to
    0 and all lower bits to 1 (largest value with that prefix).
    """
    mask_low = (1 << bit) - 1
    if kind == "min":
        return (value | (1 << bit)) & ~mask_low
    return (value & ~(1 << bit)) | mask_low


def bigmin(code: int, lo_code_coords: tuple[int, ...], hi_code_coords: tuple[int, ...],
           dims: int, bits: int) -> int | None:
    """Smallest Morton code > ``code`` whose point lies inside the box.

    Args:
        code: current position on the curve (typically just past a miss).
        lo_code_coords, hi_code_coords: quantised box corners.
        dims, bits: curve geometry.

    Returns:
        The BIGMIN code, or ``None`` if no curve point after ``code``
        intersects the box.

    This is the Tropf-Herzog algorithm walking the code's bits from the
    most significant down, maintaining shrunken box corners.
    """
    lo = list(lo_code_coords)
    hi = list(hi_code_coords)
    result: int | None = None
    total_bits = dims * bits
    for pos in range(total_bits - 1, -1, -1):
        dim = (total_bits - 1 - pos) % dims
        bit_index = pos // dims  # bit position within the dimension
        code_bit = (code >> pos) & 1
        lo_bit = (lo[dim] >> bit_index) & 1
        hi_bit = (hi[dim] >> bit_index) & 1
        if code_bit == 0 and lo_bit == 0 and hi_bit == 0:
            continue
        if code_bit == 0 and lo_bit == 0 and hi_bit == 1:
            # Candidate: jump into the upper half later; continue in lower.
            candidate_lo = list(lo)
            candidate_lo[dim] = _set_bit_pattern(lo[dim], bit_index, "min")
            candidate = _compose(candidate_lo, dims, bits)
            result = candidate if result is None else min(result, candidate)
            hi[dim] = _set_bit_pattern(hi[dim], bit_index, "max")
            continue
        if code_bit == 0 and lo_bit == 1:
            # Box entirely in upper half: BIGMIN is the box minimum.
            return _compose(lo, dims, bits)
        if code_bit == 1 and hi_bit == 0:
            # Box entirely in lower half, code already above: no result here.
            return result
        if code_bit == 1 and lo_bit == 0 and hi_bit == 1:
            lo[dim] = _set_bit_pattern(lo[dim], bit_index, "min")
            continue
        # code_bit == 1 and lo_bit == 1 and hi_bit == 1: continue.
    return result


def _compose(coords: list[int], dims: int, bits: int) -> int:
    return interleave(tuple(coords), bits)
