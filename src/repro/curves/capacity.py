"""Shared code-budget and fast-path capacity checks for the curve kernels.

Every vectorised curve encoder (Z-order and Hilbert alike) packs
``dims * bits`` interleaved bits into an int64 code, so the int64 fast
paths require ``dims * bits <= 62`` (:data:`CODE_BUDGET_BITS`); wider
codes must take the exact object-dtype path.  Independently, the
magic-number bit-spreading tables only preserve a fixed number of input
bits per dimension (:data:`FAST_PATH_COORD_BITS`): 32 for d=2 and 21
for d=3.  Within the 62-bit budget the masks always have headroom
(31 <= 32, 20 <= 21), but the two limits are distinct facts — this
module checks both explicitly so a future budget or mask-table change
can never reintroduce silent truncation, and so the scalar and array
paths raise the *same* error for the same inputs.
"""

from __future__ import annotations

__all__ = [
    "CODE_BUDGET_BITS",
    "FAST_PATH_COORD_BITS",
    "fits_code_budget",
    "require_code_budget",
]

#: Interleaved codes must fit an int64 with headroom: ``dims * bits <= 62``.
CODE_BUDGET_BITS = 62

#: Bits per coordinate preserved by the magic-mask spreading tables.
FAST_PATH_COORD_BITS = {2: 32, 3: 21}


def fits_code_budget(dims: int, bits: int) -> bool:
    """Whether ``dims``-dimensional ``bits``-wide codes fit the int64 paths.

    True iff ``dims * bits <= 62`` *and* ``bits`` does not exceed the
    magic-mask input width for this dimensionality (32 for d=2, 21 for
    d=3; other dimensionalities use per-bit loops with no mask limit).
    """
    if dims * bits > CODE_BUDGET_BITS:
        return False
    return bits <= FAST_PATH_COORD_BITS.get(dims, bits)


def require_code_budget(dims: int, bits: int) -> None:
    """Raise ``ValueError`` unless :func:`fits_code_budget` holds.

    Shared by the scalar and vectorised Z-order/Hilbert paths so every
    caller sees one canonical error for an over-budget geometry.
    """
    if dims * bits > CODE_BUDGET_BITS:
        raise ValueError(
            f"dims * bits must be <= {CODE_BUDGET_BITS} for int64 codes "
            f"(got dims={dims}, bits={bits})"
        )
    cap = FAST_PATH_COORD_BITS.get(dims)
    if cap is not None and bits > cap:
        raise ValueError(
            f"bits={bits} exceeds the {cap}-bit d={dims} fast-path mask capacity"
        )
