"""Hilbert curve encoding/decoding in d dimensions.

The Hilbert curve preserves locality better than the Z-order curve (no
long diagonal jumps), at the cost of a more intricate bit transformation.
This is the Skilling (2004) algorithm: transpose-form Gray-code
manipulation, working for any ``dims >= 1`` and ``bits`` per dimension.
"""

from __future__ import annotations

import numpy as np

from repro.core import sanitize as _sanitize
from repro.curves.capacity import fits_code_budget
from repro.curves.zorder import interleave_array

__all__ = ["hilbert_encode", "hilbert_decode", "hilbert_encode_array"]


def _coords_to_transpose(coords: tuple[int, ...], bits: int) -> list[int]:
    return list(coords)


def hilbert_encode(coords: tuple[int, ...] | np.ndarray, bits: int) -> int:
    """Hilbert index of integer ``coords`` (each in [0, 2^bits - 1])."""
    x = [int(c) for c in coords]
    dims = len(x)
    if any(c < 0 or c >= (1 << bits) for c in x):
        raise ValueError("coordinates out of range for given bits")

    # Skilling's inverse transformation: coords -> transposed Hilbert.
    m = 1 << (bits - 1)
    q = m
    while q > 1:
        p = q - 1
        for i in range(dims):
            if x[i] & q:
                x[0] ^= p  # invert
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode
    for i in range(1, dims):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[dims - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(dims):
        x[i] ^= t

    # Interleave the transposed form into a single integer.
    code = 0
    for bit in range(bits - 1, -1, -1):
        for i in range(dims):
            code = (code << 1) | ((x[i] >> bit) & 1)
    return code


def hilbert_decode(code: int, dims: int, bits: int) -> tuple[int, ...]:
    """Inverse of :func:`hilbert_encode`."""
    # De-interleave into transposed form.
    x = [0] * dims
    for bit in range(bits):
        for i in range(dims):
            shift = (bits - 1 - bit) * dims + (dims - 1 - i)
            x[i] = (x[i] << 1) | ((code >> shift) & 1)

    # Skilling's forward transformation: transposed Hilbert -> coords.
    n = 2 << (bits - 1)
    t = x[dims - 1] >> 1
    for i in range(dims - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    q = 2
    while q != n:
        p = q - 1
        for i in range(dims - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return tuple(x)


def hilbert_encode_array(coords: np.ndarray, bits: int) -> np.ndarray:
    """Vectorised Hilbert encoding of an ``(n, d)`` integer coordinate array.

    Runs Skilling's inverse transformation on whole coordinate columns —
    ``O(bits * d)`` numpy kernels regardless of ``n`` — then interleaves
    the transposed form with the Morton bit-spreading fast path.  Codes
    wider than 62 bits fall back to the per-row scalar encoder and an
    object-dtype result; otherwise the output is int64 and element-wise
    identical to :func:`hilbert_encode`.
    """
    arr = np.asarray(coords)
    n, d = arr.shape
    if not fits_code_budget(d, bits):
        out = np.empty(n, dtype=object)
        for i in range(n):
            out[i] = hilbert_encode(tuple(int(c) for c in arr[i]), bits)
        return out
    x = np.ascontiguousarray(arr, dtype=np.int64).copy()
    if np.any(x < 0) or np.any(x >= (1 << bits)):
        raise ValueError("coordinates out of range for given bits")

    # Skilling's inverse transformation, column-parallel.
    m = 1 << (bits - 1)
    q = m
    while q > 1:
        p = q - 1
        for i in range(d):
            upper = (x[:, i] & q) != 0
            if i == 0:
                x[upper, 0] ^= p
            else:
                t = np.where(upper, 0, (x[:, 0] ^ x[:, i]) & p)
                x[:, 0] = np.where(upper, x[:, 0] ^ p, x[:, 0] ^ t)
                x[:, i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, d):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(n, dtype=np.int64)
    q = m
    while q > 1:
        t = np.where((x[:, d - 1] & q) != 0, t ^ (q - 1), t)
        q >>= 1
    x ^= t[:, None]
    codes = interleave_array(x, bits)
    if _sanitize.enabled():
        _sanitize.check_code_headroom(codes, what="hilbert_encode_array")
    return codes
