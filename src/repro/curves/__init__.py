"""Space-filling curves: the projection substrate of the taxonomy's
"projected space" branch."""

from repro.curves.hilbert import hilbert_decode, hilbert_encode, hilbert_encode_array
from repro.curves.zorder import (
    bigmin,
    deinterleave,
    deinterleave_array,
    dequantize,
    interleave,
    interleave_array,
    quantize,
    zdecode,
    zdecode_array,
    zencode,
    zencode_array,
)

__all__ = [
    "hilbert_decode",
    "hilbert_encode",
    "hilbert_encode_array",
    "bigmin",
    "deinterleave",
    "deinterleave_array",
    "dequantize",
    "interleave",
    "interleave_array",
    "quantize",
    "zdecode",
    "zdecode_array",
    "zencode",
    "zencode_array",
]
