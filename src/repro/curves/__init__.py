"""Space-filling curves: the projection substrate of the taxonomy's
"projected space" branch."""

from repro.curves.hilbert import hilbert_decode, hilbert_encode, hilbert_encode_array
from repro.curves.zorder import (
    bigmin,
    deinterleave,
    dequantize,
    interleave,
    quantize,
    zdecode,
    zencode,
    zencode_array,
)

__all__ = [
    "hilbert_decode",
    "hilbert_encode",
    "hilbert_encode_array",
    "bigmin",
    "deinterleave",
    "dequantize",
    "interleave",
    "quantize",
    "zdecode",
    "zencode",
    "zencode_array",
]
