"""ML-index — Davitkova et al., 2020: pivot projection + learned 1-d index.

The ML-index projects points onto one dimension with an iDistance-style
mapping: each point is assigned to its nearest pivot ``i`` and keyed as
``i * C + dist(point, pivot_i)`` where ``C`` exceeds any within-partition
distance, so partitions occupy disjoint key stripes.  A learned
one-dimensional index (PGM segments) over the keys replaces iDistance's
B+-tree.  Range and kNN queries scan, per pivot, the distance interval
that could intersect the query region.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.interfaces import MultiDimIndex
from repro.models.pla import Segment, segment_stream
from repro.onedim._search import bounded_binary_search

__all__ = ["MLIndex"]


def _kmeans(points: np.ndarray, k: int, iterations: int = 12, seed: int = 5) -> np.ndarray:
    """Plain k-means (deterministic seed) returning the centroids."""
    rng = np.random.default_rng(seed)
    n = points.shape[0]
    centroids = points[rng.choice(n, size=min(k, n), replace=False)].copy()
    for _ in range(iterations):
        dists = np.linalg.norm(points[:, None, :] - centroids[None, :, :], axis=2)
        assign = np.argmin(dists, axis=1)
        for c in range(centroids.shape[0]):
            members = points[assign == c]
            if members.shape[0]:
                centroids[c] = members.mean(axis=0)
    return centroids


class MLIndex(MultiDimIndex):
    """iDistance-style learned multi-dimensional index.

    Args:
        num_pivots: number of pivots (k-means centroids).
        epsilon: error bound of the learned key -> position model.
    """

    name = "ml-index"

    def __init__(self, num_pivots: int = 16, epsilon: int = 32) -> None:
        super().__init__()
        if num_pivots < 1:
            raise ValueError("num_pivots must be >= 1")
        self.num_pivots = num_pivots
        self.epsilon = epsilon
        self._points = np.empty((0, 2))
        self._values: list[object] = []
        self._keys = np.empty(0)
        self._pivots = np.empty((0, 2))
        self._stripe = 1.0
        self._segments: list[Segment] = []
        self._segment_keys = np.empty(0)

    def build(self, points: np.ndarray, values: Sequence[object] | None = None) -> "MLIndex":
        pts, vals = self._prepare_points(points, values)
        self.dims = int(pts.shape[1]) if pts.size else 0
        self._built = True
        if pts.shape[0] == 0:
            self._points = pts
            return self
        self._extent = float(np.max(pts.max(axis=0) - pts.min(axis=0))) or 1.0

        self._pivots = _kmeans(pts, self.num_pivots)
        dists = np.linalg.norm(pts[:, None, :] - self._pivots[None, :, :], axis=2)
        assign = np.argmin(dists, axis=1)
        dist_to_pivot = dists[np.arange(pts.shape[0]), assign]
        # Stripe width: strictly larger than any within-partition distance.
        self._stripe = float(dist_to_pivot.max()) * 1.01 + 1e-9
        keys = assign * self._stripe + dist_to_pivot

        order = np.argsort(keys, kind="mergesort")
        self._keys = keys[order]
        self._points = pts[order]
        self._values = [vals[i] for i in order]

        self._segments = segment_stream(self._keys, float(self.epsilon))
        self._segment_keys = np.array([seg.key for seg in self._segments])
        self.stats.size_bytes = (
            sum(seg.size_bytes for seg in self._segments)
            + self._pivots.size * 8
            + 8 * int(self._keys.size)
        )
        self.stats.extra["segments"] = len(self._segments)
        return self

    # -- learned locate -----------------------------------------------------------
    def _locate(self, key: float) -> int:
        self.stats.model_predictions += 1
        seg_idx = int(np.searchsorted(self._segment_keys, key, side="right")) - 1
        seg_idx = min(max(seg_idx, 0), len(self._segments) - 1)
        seg = self._segments[seg_idx]
        predicted = int(np.clip(round(seg.predict(key)), seg.first, seg.last - 1))
        return bounded_binary_search(self._keys, key, predicted, self.epsilon + 1, self.stats)

    def _key_of(self, point: np.ndarray) -> float:
        """Scalarize a point as (nearest pivot, distance) — iDistance.

        Config-bounded: ``self._pivots`` holds ``num_pivots`` rows fixed
        at construction, so the distance computation is O(1) in n.
        """
        dists = np.linalg.norm(self._pivots - point, axis=1)
        pivot = int(np.argmin(dists))
        return pivot * self._stripe + float(dists[pivot])

    # -- queries ---------------------------------------------------------------------
    def point_query(self, point: Sequence[float]) -> object | None:
        """Learned locate plus a duplicate-bounded scan of the
        equal-iDistance-key run around the predicted position."""
        self._require_built()
        if self._keys.size == 0:
            return None
        q = np.asarray(point, dtype=np.float64)
        key = self._key_of(q)
        pos = self._locate(key)
        # Distance collisions are possible: scan the equal-key run, with a
        # small tolerance for floating-point distance jitter.
        i = pos
        while i < self._keys.size and self._keys[i] <= key + 1e-9:
            self.stats.keys_scanned += 1
            if np.array_equal(self._points[i], q):
                return self._values[i]
            i += 1
        i = pos - 1
        while i >= 0 and self._keys[i] >= key - 1e-9:
            self.stats.keys_scanned += 1
            if np.array_equal(self._points[i], q):
                return self._values[i]
            i -= 1
        return None

    def range_query(self, low: Sequence[float], high: Sequence[float]) -> list[tuple[tuple[float, ...], object]]:
        self._require_built()
        if self._keys.size == 0:
            return []
        lo = np.asarray(low, dtype=np.float64)
        hi = np.asarray(high, dtype=np.float64)
        if np.any(hi < lo):
            return []
        hits: set[int] = set()
        corners = self._box_corners(lo, hi)
        for pivot_id in range(self._pivots.shape[0]):
            pivot = self._pivots[pivot_id]
            # Min distance from pivot to the box; max distance to a corner.
            clamped = np.clip(pivot, lo, hi)
            d_min = float(np.linalg.norm(pivot - clamped))
            d_max = float(np.max(np.linalg.norm(corners - pivot, axis=1)))
            if d_min > self._stripe:
                continue  # no partition member can reach the box
            lo_key = pivot_id * self._stripe + d_min
            # Within-partition distances never reach `stripe`, so the scan
            # can stop at the stripe boundary even for huge boxes.
            hi_key = pivot_id * self._stripe + min(d_max, self._stripe)
            i = self._locate(lo_key - 1e-9)
            while i < self._keys.size and self._keys[i] <= hi_key + 1e-9:
                p = self._points[i]
                self.stats.keys_scanned += 1
                if i not in hits and np.all(p >= lo) and np.all(p <= hi):
                    hits.add(i)
                i += 1
        return [
            (tuple(float(c) for c in self._points[i]), self._values[i])
            for i in sorted(hits)
        ]

    @staticmethod
    def _box_corners(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        d = lo.size
        corners = np.empty((1 << d, d))
        for mask in range(1 << d):
            for dim in range(d):
                corners[mask, dim] = hi[dim] if (mask >> dim) & 1 else lo[dim]
        return corners

    def __len__(self) -> int:
        return int(self._keys.size)
