"""The "AI+R"-tree — Al-Mamun et al., 2022: an instance-optimized R-tree.

The AI+R-tree keeps a classical R-tree but trains ML models on the query
workload to predict, for each query, the small set of leaf nodes that
actually contain its answers — skipping the (potentially large) set of
internal-node traversals and overlapping-leaf visits.  Queries the model
cannot serve fall back to the plain R-tree, so answers are always exact.

Substitution note (documented in DESIGN.md): the paper trains multi-label
classifiers over query features; with hundreds of leaves, the natural
nonparametric equivalent is the grid-bucketed candidate-leaf map built
here from the training workload — it is exactly the lookup structure the
paper's classifier approximates, and it preserves the hit/fallback
behaviour the paper evaluates.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.rtree import RTreeIndex, _RNode
from repro.core.interfaces import MutableMultiDimIndex

__all__ = ["AIRTreeIndex"]


class AIRTreeIndex(MutableMultiDimIndex):
    """R-tree + learned query-to-leaf router.

    Args:
        grid: resolution of the query-feature grid (per dimension).
        max_candidates: leaf candidates stored per grid bucket.
        max_entries: R-tree node capacity.
    """

    name = "ai+r-tree"

    def __init__(self, grid: int = 32, max_candidates: int = 4,
                 max_entries: int = 32) -> None:
        super().__init__()
        if grid < 1:
            raise ValueError("grid must be >= 1")
        self.grid = grid
        self.max_candidates = max_candidates
        self._rtree = RTreeIndex(max_entries=max_entries)
        self._router: dict[tuple[int, ...], list[_RNode]] = {}
        self._lo = np.zeros(1)
        self._hi = np.ones(1)
        self._trained = False

    # -- delegation to the R-tree substrate -----------------------------------
    def build(self, points: np.ndarray, values: Sequence[object] | None = None) -> "AIRTreeIndex":
        pts, vals = self._prepare_points(points, values)
        self._rtree.build(pts, vals)
        self.dims = self._rtree.dims
        self._extent = getattr(self._rtree, "_extent", 1.0)
        self._built = True
        self._router = {}
        self._trained = False
        if pts.shape[0]:
            self._lo = pts.min(axis=0)
            self._hi = pts.max(axis=0)
        self.stats.size_bytes = self._rtree.stats.size_bytes
        return self

    def _bucket_of(self, point: np.ndarray) -> tuple[int, ...]:
        span = self._hi - self._lo
        span[span == 0] = 1.0
        frac = np.clip((point - self._lo) / span, 0.0, 1.0)
        return tuple(int(i) for i in np.minimum((frac * self.grid).astype(int), self.grid - 1))

    def _leaf_containing(self, q: np.ndarray) -> _RNode | None:
        """The R-tree leaf whose MBR contains and entries include q."""
        stack = [self._rtree._root]
        while stack:
            node = stack.pop()
            if node.mbr_lo is None:
                continue
            if np.any(q < node.mbr_lo) or np.any(q > node.mbr_hi):
                continue
            if node.leaf:
                for p, _ in node.entries:
                    if np.array_equal(p, q):
                        return node
            else:
                stack.extend(node.entries)
        return None

    def train(self, queries: np.ndarray) -> "AIRTreeIndex":
        """Learn the query -> candidate-leaves router from sample points.

        Args:
            queries: ``(m, d)`` array of training point queries (typically
                drawn from the expected workload).
        """
        self._require_built()
        self._router = {}
        for row in np.asarray(queries, dtype=np.float64):
            leaf = self._leaf_containing(row)
            if leaf is None:
                continue
            bucket = self._bucket_of(row)
            candidates = self._router.setdefault(bucket, [])
            if leaf not in candidates:
                candidates.append(leaf)
                if len(candidates) > self.max_candidates:
                    candidates.pop(0)
        self._trained = True
        self.stats.extra["router_buckets"] = len(self._router)
        return self

    # -- queries --------------------------------------------------------------
    def point_query(self, point: Sequence[float]) -> object | None:
        """Router-predicted leaf probe with R-tree fallback.

        Fanout-bounded: a router bucket holds the few leaves whose MBRs
        intersect that grid cell, and each leaf holds at most
        ``max_entries`` points.
        """
        self._require_built()
        q = np.asarray(point, dtype=np.float64)
        if self._trained:
            candidates = self._router.get(self._bucket_of(q))
            if candidates:
                for leaf in candidates:
                    self.stats.nodes_visited += 1
                    self.stats.model_predictions += 1
                    if leaf.mbr_lo is None:
                        continue
                    if np.any(q < leaf.mbr_lo) or np.any(q > leaf.mbr_hi):
                        continue
                    for p, v in leaf.entries:
                        self.stats.keys_scanned += 1
                        if np.array_equal(p, q):
                            self.stats.extra["router_hits"] = self.stats.extra.get("router_hits", 0) + 1
                            return v
        # Fallback: exact R-tree search.
        self.stats.extra["fallbacks"] = self.stats.extra.get("fallbacks", 0) + 1
        result = self._rtree.point_query(q)
        self._merge_substrate_stats()
        return result

    def range_query(self, low: Sequence[float], high: Sequence[float]) -> list[tuple[tuple[float, ...], object]]:
        self._require_built()
        result = self._rtree.range_query(low, high)
        self._merge_substrate_stats()
        return result

    def knn_query(self, point: Sequence[float], k: int) -> list[tuple[tuple[float, ...], object]]:
        self._require_built()
        result = self._rtree.knn_query(point, k)
        self._merge_substrate_stats()
        return result

    def _merge_substrate_stats(self) -> None:
        sub = self._rtree.stats
        self.stats.nodes_visited += sub.nodes_visited
        self.stats.keys_scanned += sub.keys_scanned
        self.stats.comparisons += sub.comparisons
        sub.reset_counters()

    # -- updates (router entries for split leaves go stale; queries still
    #    fall back to the exact R-tree, so answers stay correct) -------------
    def insert(self, point: Sequence[float], value: object | None = None) -> None:
        self._require_built()
        self._rtree.insert(point, value)

    def delete(self, point: Sequence[float]) -> bool:
        self._require_built()
        return self._rtree.delete(point)

    def __len__(self) -> int:
        return len(self._rtree)
