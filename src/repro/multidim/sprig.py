"""SPRIG — Zhang et al., 2021: a spatial interpolation-function index.

SPRIG samples the data to build a spatial interpolation function over a
grid and answers queries by interpolating a predicted location, then
correcting with an error-bounded local search.  Reproduced as:

* per-dimension boundary samples (data quantiles — the interpolation
  sample);
* cell location by *interpolation search* over the boundary sample (an
  arithmetic guess repaired by a short scan, never a full binary
  search);
* per-cell point storage sorted by the last dimension, searched with a
  final bounded search.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.interfaces import MultiDimIndex

__all__ = ["SPRIGIndex"]


class SPRIGIndex(MultiDimIndex):
    """Spatial interpolation grid.

    Args:
        cells_per_dim: grid resolution (boundary sample size per dim).
    """

    name = "sprig"

    def __init__(self, cells_per_dim: int = 16) -> None:
        super().__init__()
        if cells_per_dim < 2:
            raise ValueError("cells_per_dim must be >= 2")
        self.cells_per_dim = cells_per_dim
        self._boundaries: list[np.ndarray] = []
        self._cells: dict[tuple[int, ...], tuple[np.ndarray, np.ndarray, list[object]]] = {}
        self._size = 0

    def build(self, points: np.ndarray, values: Sequence[object] | None = None) -> "SPRIGIndex":
        pts, vals = self._prepare_points(points, values)
        self.dims = int(pts.shape[1]) if pts.size else 0
        self._size = int(pts.shape[0])
        self._built = True
        self._cells = {}
        if pts.shape[0] == 0:
            return self
        self._extent = float(np.max(pts.max(axis=0) - pts.min(axis=0))) or 1.0
        # Interpolation sample: equi-depth boundaries per dimension.
        probs = np.linspace(0.0, 1.0, self.cells_per_dim + 1)
        self._boundaries = [np.quantile(pts[:, d], probs) for d in range(self.dims)]

        cell_ids = np.column_stack([
            np.clip(np.searchsorted(self._boundaries[d][1:-1], pts[:, d], side="right"),
                    0, self.cells_per_dim - 1)
            for d in range(self.dims)
        ])
        sort_dim = self.dims - 1
        order = np.lexsort((pts[:, sort_dim],) + tuple(cell_ids.T[::-1]))
        sorted_ids = cell_ids[order]
        sorted_pts = pts[order]
        sorted_vals = [vals[i] for i in order]
        start = 0
        n = pts.shape[0]
        while start < n:
            end = start + 1
            while end < n and np.array_equal(sorted_ids[end], sorted_ids[start]):
                end += 1
            cid = tuple(int(c) for c in sorted_ids[start])
            cell_pts = sorted_pts[start:end]
            self._cells[cid] = (cell_pts[:, sort_dim].copy(), cell_pts, sorted_vals[start:end])
            start = end
        self.stats.size_bytes = (
            sum(b.size * 8 for b in self._boundaries) + len(self._cells) * 48 + n * 8
        )
        self.stats.extra["cells"] = len(self._cells)
        return self

    # -- interpolation search over the boundary sample --------------------------
    def _cell_coord(self, d: int, x: float) -> int:
        """Locate x's cell along dimension d by interpolation search.

        Config-bounded repair scan: the correction walk moves within the
        ``cells_per_dim`` quantile boundaries, never over the data.
        """
        bounds = self._boundaries[d]
        lo = float(bounds[0])
        hi = float(bounds[-1])
        cells = self.cells_per_dim
        if x <= lo:
            return 0
        if x >= hi:
            return cells - 1
        span = hi - lo
        guess = int((x - lo) / span * cells) if span > 0 else 0
        guess = min(max(guess, 0), cells - 1)
        # Repair scan against the (non-uniform) quantile boundaries.
        while guess > 0 and x < bounds[guess]:
            guess -= 1
            self.stats.corrections += 1
        while guess < cells - 1 and x >= bounds[guess + 1]:
            guess += 1
            self.stats.corrections += 1
        return guess

    def _cell_of(self, p: np.ndarray) -> tuple[int, ...]:
        return tuple(self._cell_coord(d, float(p[d])) for d in range(self.dims))

    # -- queries ------------------------------------------------------------------
    def point_query(self, point: Sequence[float]) -> object | None:
        """Learned cell probe, then a tie-bounded scan: the walk only
        crosses the run of points sharing the query's sort key."""
        self._require_built()
        if not self._cells:
            return None
        q = np.asarray(point, dtype=np.float64)
        self.stats.model_predictions += 1
        bucket = self._cells.get(self._cell_of(q))
        self.stats.nodes_visited += 1
        if bucket is None:
            return None
        sort_keys, cell_pts, cell_vals = bucket
        i = int(np.searchsorted(sort_keys, q[-1], side="left"))
        while i < sort_keys.size and sort_keys[i] == q[-1]:
            self.stats.keys_scanned += 1
            if np.array_equal(cell_pts[i], q):
                return cell_vals[i]
            i += 1
        return None

    def range_query(self, low: Sequence[float], high: Sequence[float]) -> list[tuple[tuple[float, ...], object]]:
        self._require_built()
        if not self._cells:
            return []
        lo = np.asarray(low, dtype=np.float64)
        hi = np.asarray(high, dtype=np.float64)
        if np.any(hi < lo):
            return []
        lo_cell = self._cell_of(lo)
        hi_cell = self._cell_of(hi)
        import itertools

        out: list[tuple[tuple[float, ...], object]] = []
        sort_dim = self.dims - 1
        for cid in itertools.product(*(range(a, b + 1) for a, b in zip(lo_cell, hi_cell))):
            bucket = self._cells.get(cid)
            self.stats.nodes_visited += 1
            if bucket is None:
                continue
            sort_keys, cell_pts, cell_vals = bucket
            s_lo = int(np.searchsorted(sort_keys, lo[sort_dim], side="left"))
            s_hi = int(np.searchsorted(sort_keys, hi[sort_dim], side="right"))
            for i in range(s_lo, s_hi):
                p = cell_pts[i]
                self.stats.keys_scanned += 1
                if np.all(p >= lo) and np.all(p <= hi):
                    out.append((tuple(float(c) for c in p), cell_vals[i]))
        return out

    def __len__(self) -> int:
        return self._size
