"""LISA — Li et al., 2020: a learned index structure for spatial data.

LISA's pipeline, reproduced here:

1. **Grid mapping function** ``M``: the space is cut into grid cells via
   per-dimension equi-depth boundaries; a point maps to the scalar
   ``cell_rank + fractional offset inside the cell``, a monotone
   lexicographic measure of the space.
2. **Shard prediction**: the sorted mapped values are partitioned into
   shards of bounded size (LISA trains a monotone piecewise-linear shard
   function; rank partitioning of the sorted mapped values is its exact
   fixed point).
3. **Per-shard storage** with local search and delta-style inserts —
   LISA is the survey's representative *mutable pure / projected /
   delta-buffer* multi-dimensional index.

Range queries enumerate the grid cells intersecting the box, convert
contiguous cell-rank runs into mapped-value intervals, and scan only the
shards those intervals touch.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Sequence

import numpy as np

from repro.core.interfaces import MutableMultiDimIndex, as_object_array

__all__ = ["LISAIndex"]


class _Shard:
    """One shard: parallel sorted lists over the mapped value."""

    __slots__ = ("mapped", "points", "values", "_arrays")

    def __init__(self) -> None:
        self.mapped: list[float] = []
        self.points: list[np.ndarray] = []
        self.values: list[object] = []
        #: Cached (mapped, points, values) ndarray views for the batch
        #: path; dropped on every mutation.
        self._arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._arrays is None:
            self._arrays = (
                np.asarray(self.mapped, dtype=np.float64),
                np.vstack(self.points),
                as_object_array(self.values),
            )
        return self._arrays

    def invalidate(self) -> None:
        self._arrays = None

    def __len__(self) -> int:
        return len(self.mapped)


class LISAIndex(MutableMultiDimIndex):
    """LISA: grid mapping + learned shards.

    Args:
        cells_per_dim: grid resolution of the mapping function.
        shard_size: target points per shard.
    """

    name = "lisa"

    def __init__(self, cells_per_dim: int = 16, shard_size: int = 256) -> None:
        super().__init__()
        if cells_per_dim < 1:
            raise ValueError("cells_per_dim must be >= 1")
        if shard_size < 8:
            raise ValueError("shard_size must be >= 8")
        self.cells_per_dim = cells_per_dim
        self.shard_size = shard_size
        self._boundaries: list[np.ndarray] = []
        self._lo = np.zeros(1)
        self._hi = np.ones(1)
        self._shards: list[_Shard] = []
        self._shard_starts: list[float] = []
        self._size = 0

    # -- the mapping function M ------------------------------------------------
    def _cell_coords(self, p: np.ndarray) -> tuple[int, ...]:
        return tuple(
            int(np.searchsorted(self._boundaries[d], p[d], side="right"))
            for d in range(self.dims)
        )

    def _cell_rank(self, coords: tuple[int, ...]) -> int:
        rank = 0
        for d in range(self.dims):
            rank = rank * self.cells_per_dim + min(coords[d], self.cells_per_dim - 1)
        return rank

    def _mapped(self, p: np.ndarray) -> float:
        coords = self._cell_coords(p)
        rank = self._cell_rank(coords)
        # Fractional offset inside the cell along the last dimension,
        # giving a total order within each cell.
        d = self.dims - 1
        c = min(coords[d], self.cells_per_dim - 1)
        lo = self._boundaries[d][c - 1] if c > 0 else self._lo[d]
        hi = self._boundaries[d][c] if c < self._boundaries[d].size else self._hi[d]
        span = float(hi - lo) or 1.0
        frac = float(np.clip((p[d] - lo) / span, 0.0, 0.999999))
        return rank + frac

    def _mapped_batch(self, pts: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`_mapped` over an ``(m, d)`` point array.

        Performs the identical float64 operations in the identical order,
        so every mapped value is bit-equal to the scalar path (the batch
        queries compare mapped values with the same tolerances).
        """
        m = pts.shape[0]
        coords = np.empty((m, self.dims), dtype=np.int64)
        for d in range(self.dims):
            coords[:, d] = np.searchsorted(self._boundaries[d], pts[:, d], side="right")
        rank = np.zeros(m, dtype=np.int64)
        for d in range(self.dims):
            rank = rank * self.cells_per_dim + np.minimum(coords[:, d], self.cells_per_dim - 1)
        d = self.dims - 1
        bounds = self._boundaries[d]
        c = np.minimum(coords[:, d], self.cells_per_dim - 1)
        if bounds.size == 0:  # cells_per_dim == 1: one cell spanning [lo, hi]
            lo = np.full(m, self._lo[d])
            hi = np.full(m, self._hi[d])
        else:
            lo = np.where(c > 0, bounds[np.clip(c - 1, 0, bounds.size - 1)], self._lo[d])
            hi = np.where(c < bounds.size, bounds[np.clip(c, 0, bounds.size - 1)], self._hi[d])
        span = hi - lo
        span[span == 0] = 1.0
        frac = np.clip((pts[:, d] - lo) / span, 0.0, 0.999999)
        return rank + frac

    # -- construction -----------------------------------------------------------
    def build(self, points: np.ndarray, values: Sequence[object] | None = None) -> "LISAIndex":
        pts, vals = self._prepare_points(points, values)
        self.dims = int(pts.shape[1]) if pts.size else 0
        self._size = int(pts.shape[0])
        self._built = True
        self._shards = []
        self._shard_starts = []
        if pts.shape[0] == 0:
            return self
        self._lo = pts.min(axis=0)
        self._hi = pts.max(axis=0)
        self._extent = float(np.max(self._hi - self._lo)) or 1.0
        probs = np.linspace(0.0, 1.0, self.cells_per_dim + 1)[1:-1]
        self._boundaries = [np.quantile(pts[:, d], probs) for d in range(self.dims)]

        mapped = np.array([self._mapped(pts[i]) for i in range(pts.shape[0])])
        order = np.argsort(mapped, kind="mergesort")
        for start in range(0, order.size, self.shard_size):
            chunk = order[start:start + self.shard_size]
            shard = _Shard()
            shard.mapped = [float(mapped[i]) for i in chunk]
            shard.points = [pts[i].copy() for i in chunk]
            shard.values = [vals[i] for i in chunk]
            shard.arrays()  # warm the batch-path cache
            self._shards.append(shard)
            self._shard_starts.append(shard.mapped[0])
        self._refresh_size()
        return self

    def _refresh_size(self) -> None:
        self.stats.size_bytes = (
            sum(b.size * 8 for b in self._boundaries)
            + sum(len(s) * (8 + 8 * max(self.dims, 1)) + 32 for s in self._shards)
        )
        self.stats.extra["shards"] = len(self._shards)

    def _shard_for(self, m: float) -> int:
        idx = bisect.bisect_right(self._shard_starts, m) - 1
        self.stats.comparisons += max(1, len(self._shard_starts).bit_length())
        return max(idx, 0)

    # -- queries -------------------------------------------------------------------
    def point_query(self, point: Sequence[float]) -> object | None:
        """Mapped-value shard routing plus a duplicate-bounded scan of
        the equal-mapped-value run inside one shard."""
        self._require_built()
        if not self._shards:
            return None
        q = np.asarray(point, dtype=np.float64)
        m = self._mapped(q)
        shard = self._shards[self._shard_for(m)]
        self.stats.nodes_visited += 1
        i = bisect.bisect_left(shard.mapped, m - 1e-9)
        while i < len(shard.mapped) and shard.mapped[i] <= m + 1e-9:
            self.stats.keys_scanned += 1
            if np.array_equal(shard.points[i], q):
                return shard.values[i]
            i += 1
        return None

    def point_query_batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorized batch point queries (element-wise equal to scalar).

        Maps the whole batch with :meth:`_mapped_batch`, routes every
        query to its shard with one ``searchsorted`` over the shard
        starts, then resolves each shard group with a masked equality
        kernel over the shard's stacked arrays — the same candidate
        window (``mapped`` within ``+-1e-9``) and the same first-match
        scan order as the scalar path.
        """
        self._require_built()
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must have shape (m, d)")
        m = pts.shape[0]
        out = np.full(m, None, dtype=object)
        if m == 0 or not self._shards:
            return out
        mapped = self._mapped_batch(pts)
        starts = np.asarray(self._shard_starts)
        sidx = np.maximum(np.searchsorted(starts, mapped, side="right") - 1, 0)
        self.stats.comparisons += m * max(1, len(self._shard_starts).bit_length())
        self.stats.nodes_visited += m
        order = np.argsort(sidx, kind="stable")
        ss = sidx[order]
        bounds = np.concatenate(([0], np.nonzero(np.diff(ss))[0] + 1, [m]))
        for s, e in zip(bounds[:-1], bounds[1:]):
            gidx = order[s:e]
            shard = self._shards[int(sidx[gidx[0]])]
            if not shard.mapped:
                continue
            shard_mapped, shard_pts, shard_vals = shard.arrays()
            qm = mapped[gidx]
            w_lo = np.searchsorted(shard_mapped, qm - 1e-9, side="left")
            w_hi = np.searchsorted(shard_mapped, qm + 1e-9, side="right")
            has = w_lo < w_hi
            cand = np.minimum(w_lo, shard_mapped.size - 1)
            first = has & np.all(shard_pts[cand] == pts[gidx], axis=1)
            self.stats.keys_scanned += int(has.sum())
            out[gidx[first]] = shard_vals[cand[first]]
            # Mapped-value ties: continue the scalar candidate scan.
            for t in np.nonzero(has & ~first)[0]:
                j = int(w_lo[t]) + 1
                while j < int(w_hi[t]):
                    self.stats.keys_scanned += 1
                    if np.array_equal(shard_pts[j], pts[gidx[t]]):
                        out[gidx[t]] = shard_vals[j]
                        break
                    j += 1
        return out

    def range_query(self, low: Sequence[float], high: Sequence[float]) -> list[tuple[tuple[float, ...], object]]:
        self._require_built()
        if not self._shards:
            return []
        lo = np.asarray(low, dtype=np.float64)
        hi = np.asarray(high, dtype=np.float64)
        if np.any(hi < lo):
            return []
        # No clamping to the build-time bounding box: inserted points may
        # live outside it, and the quantile cell mapping handles
        # out-of-range coordinates by saturating to the edge cells.
        lo_coords = self._cell_coords(lo)
        hi_coords = self._cell_coords(hi)
        # Contiguous runs: the last dimension's cell interval is contiguous
        # in rank space for each fixed prefix of the other dimensions.
        prefix_ranges = [
            range(lo_coords[d], min(hi_coords[d], self.cells_per_dim - 1) + 1)
            for d in range(self.dims - 1)
        ]
        d_last = self.dims - 1
        last_lo = lo_coords[d_last]
        last_hi = min(hi_coords[d_last], self.cells_per_dim - 1)
        out: list[tuple[tuple[float, ...], object]] = []
        for prefix in itertools.product(*prefix_ranges):
            start_rank = self._cell_rank(prefix + (last_lo,))
            end_rank = self._cell_rank(prefix + (last_hi,))
            self._scan_mapped_interval(float(start_rank), float(end_rank + 1), lo, hi, out)
        return out

    def _scan_mapped_interval(self, m_lo: float, m_hi: float, lo: np.ndarray,
                              hi: np.ndarray, out: list) -> None:
        si = self._shard_for(m_lo)
        for shard_idx in range(si, len(self._shards)):
            shard = self._shards[shard_idx]
            if not shard.mapped or shard.mapped[0] >= m_hi:
                break
            self.stats.nodes_visited += 1
            i = bisect.bisect_left(shard.mapped, m_lo)
            while i < len(shard.mapped) and shard.mapped[i] < m_hi:
                p = shard.points[i]
                self.stats.keys_scanned += 1
                if np.all(p >= lo) and np.all(p <= hi):
                    out.append((tuple(float(c) for c in p), shard.values[i]))
                i += 1

    # -- updates -------------------------------------------------------------------
    def insert(self, point: Sequence[float], value: object | None = None) -> None:
        """Shard-routed sorted insert; the equal-mapped-value replace scan
        is duplicate-bounded like :meth:`point_query`."""
        self._require_built()
        p = np.asarray(point, dtype=np.float64)
        if not self._shards:
            self.dims = int(p.size)
            self._lo = p - 0.5
            self._hi = p + 0.5
            self._extent = 1.0
            probs = np.linspace(0.0, 1.0, self.cells_per_dim + 1)[1:-1]
            self._boundaries = [
                np.full(probs.size, float(p[d])) for d in range(self.dims)
            ]
            shard = _Shard()
            self._shards = [shard]
            self._shard_starts = [0.0]
        m = self._mapped(p)
        shard_idx = self._shard_for(m)
        shard = self._shards[shard_idx]
        i = bisect.bisect_left(shard.mapped, m - 1e-9)
        while i < len(shard.mapped) and shard.mapped[i] <= m + 1e-9:
            if np.array_equal(shard.points[i], p):
                shard.values[i] = value
                shard.invalidate()
                return
            i += 1
        i = bisect.bisect_left(shard.mapped, m)
        shard.mapped.insert(i, m)
        shard.points.insert(i, p.copy())
        shard.values.insert(i, value)
        shard.invalidate()
        self._size += 1
        if len(shard) > 2 * self.shard_size:
            self._split_shard(shard_idx)
        self._refresh_size()

    def _split_shard(self, shard_idx: int) -> None:
        shard = self._shards[shard_idx]
        mid = len(shard) // 2
        right = _Shard()
        right.mapped = shard.mapped[mid:]
        right.points = shard.points[mid:]
        right.values = shard.values[mid:]
        shard.mapped = shard.mapped[:mid]
        shard.points = shard.points[:mid]
        shard.values = shard.values[:mid]
        shard.invalidate()
        self._shards.insert(shard_idx + 1, right)
        self._shard_starts = [s.mapped[0] if s.mapped else 0.0 for s in self._shards]
        self.stats.extra["splits"] = self.stats.extra.get("splits", 0) + 1

    def delete(self, point: Sequence[float]) -> bool:
        self._require_built()
        if not self._shards:
            return False
        p = np.asarray(point, dtype=np.float64)
        m = self._mapped(p)
        shard = self._shards[self._shard_for(m)]
        i = bisect.bisect_left(shard.mapped, m - 1e-9)
        while i < len(shard.mapped) and shard.mapped[i] <= m + 1e-9:
            if np.array_equal(shard.points[i], p):
                del shard.mapped[i]
                del shard.points[i]
                del shard.values[i]
                shard.invalidate()
                self._size -= 1
                return True
            i += 1
        return False

    @property
    def num_shards(self) -> int:
        """Current shard count."""
        return len(self._shards)

    def __len__(self) -> int:
        return self._size
