"""Per-dimension learned index (the survey's Approach 3).

One learned one-dimensional index per dimension, with no projection
function: each dimension's values are sorted and indexed by PGM
segments.  A query is answered through the most *selective* dimension —
the one whose learned index brackets the fewest candidates — and the
candidates are filtered against the full predicate.  This is the
"LearnedKD" family (e.g. Yongxin et al., 2020), which trades the strong
pruning of true multi-dimensional structures for trivially reusable 1-d
machinery.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.interfaces import MultiDimIndex
from repro.models.pla import Segment, segment_stream
from repro.onedim._search import bounded_binary_search

__all__ = ["LearnedKDIndex"]


class _DimIndex:
    """Learned 1-d index over one dimension's sorted values."""

    __slots__ = ("sorted_vals", "row_ids", "segments", "segment_keys", "epsilon")

    def __init__(self, column: np.ndarray, epsilon: int) -> None:
        order = np.argsort(column, kind="mergesort")
        self.sorted_vals = column[order]
        self.row_ids = order
        self.epsilon = epsilon
        self.segments: list[Segment] = segment_stream(self.sorted_vals, float(epsilon))
        self.segment_keys = np.array([seg.key for seg in self.segments])

    def locate(self, value: float, stats) -> int:
        stats.model_predictions += 1
        seg_idx = int(np.searchsorted(self.segment_keys, value, side="right")) - 1
        seg_idx = min(max(seg_idx, 0), len(self.segments) - 1)
        seg = self.segments[seg_idx]
        predicted = int(np.clip(round(seg.predict(value)), seg.first, seg.last - 1))
        return bounded_binary_search(self.sorted_vals, value, predicted, self.epsilon + 1, stats)

    @property
    def size_bytes(self) -> int:
        return sum(seg.size_bytes for seg in self.segments) + self.row_ids.size * 16


class LearnedKDIndex(MultiDimIndex):
    """One learned 1-d index per dimension; queries pick the best one.

    Args:
        epsilon: PGM error bound for every per-dimension index.
    """

    name = "learned-kd"

    def __init__(self, epsilon: int = 32) -> None:
        super().__init__()
        if epsilon < 1:
            raise ValueError("epsilon must be >= 1")
        self.epsilon = epsilon
        self._points = np.empty((0, 2))
        self._values: list[object] = []
        self._dim_indexes: list[_DimIndex] = []

    def build(self, points: np.ndarray, values: Sequence[object] | None = None) -> "LearnedKDIndex":
        pts, vals = self._prepare_points(points, values)
        self.dims = int(pts.shape[1]) if pts.size else 0
        self._points = pts
        self._values = vals
        self._built = True
        self._dim_indexes = []
        if pts.shape[0] == 0:
            return self
        self._extent = float(np.max(pts.max(axis=0) - pts.min(axis=0))) or 1.0
        for d in range(self.dims):
            self._dim_indexes.append(_DimIndex(pts[:, d].copy(), self.epsilon))
        self.stats.size_bytes = sum(di.size_bytes for di in self._dim_indexes)
        self.stats.extra["segments_per_dim"] = [len(di.segments) for di in self._dim_indexes]
        return self

    def point_query(self, point: Sequence[float]) -> object | None:
        """Model-guided locate on dim 0, then a duplicate-bounded scan of
        the equal-coordinate run."""
        self._require_built()
        if self._points.shape[0] == 0:
            return None
        q = np.asarray(point, dtype=np.float64)
        di = self._dim_indexes[0]
        pos = di.locate(float(q[0]), self.stats)
        while pos < di.sorted_vals.size and di.sorted_vals[pos] == q[0]:
            row = int(di.row_ids[pos])
            self.stats.keys_scanned += 1
            if np.array_equal(self._points[row], q):
                return self._values[row]
            pos += 1
        return None

    def range_query(self, low: Sequence[float], high: Sequence[float]) -> list[tuple[tuple[float, ...], object]]:
        self._require_built()
        if self._points.shape[0] == 0:
            return []
        lo = np.asarray(low, dtype=np.float64)
        hi = np.asarray(high, dtype=np.float64)
        if np.any(hi < lo):
            return []
        # Pick the most selective dimension by bracketing each one.
        best_dim = 0
        best_span: tuple[int, int] | None = None
        for d, di in enumerate(self._dim_indexes):
            first = di.locate(float(lo[d]), self.stats)
            last = int(np.searchsorted(di.sorted_vals, hi[d], side="right"))
            if best_span is None or (last - first) < (best_span[1] - best_span[0]):
                best_span = (first, last)
                best_dim = d
        di = self._dim_indexes[best_dim]
        first, last = best_span
        out: list[tuple[tuple[float, ...], object]] = []
        for pos in range(first, last):
            row = int(di.row_ids[pos])
            p = self._points[row]
            self.stats.keys_scanned += 1
            if np.all(p >= lo) and np.all(p <= hi):
                out.append((tuple(float(c) for c in p), self._values[row]))
        return out

    def __len__(self) -> int:
        return int(self._points.shape[0])
