"""Tsunami — Ding et al., 2020: correlation- and skew-aware Flood.

Flood's single uniform grid degrades when dimensions are correlated (the
data collapses toward a diagonal, so most grid cells are empty while a
few are overfull) or when the query workload is skewed.  Tsunami fixes
both by first partitioning the space into *regions* (its Grid Tree /
Augmented Grid), then giving every region its own independently tuned
grid.

This reproduction partitions with a small median-split tree over the
dimensions with the highest data spread (which captures the correlated
diagonal), then builds one :class:`~repro.multidim.flood.FloodIndex` per
region.  Benchmark E10 shows the recovery over plain Flood on correlated
data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.interfaces import MultiDimIndex
from repro.multidim.flood import FloodIndex

__all__ = ["TsunamiIndex"]


@dataclass
class _Region:
    """One region: its box and its private Flood grid."""

    lo: np.ndarray
    hi: np.ndarray
    grid: FloodIndex


class TsunamiIndex(MultiDimIndex):
    """Region-partitioned Flood.

    Args:
        region_depth: number of median splits (``2**region_depth``
            regions).
        columns_per_dim: per-region Flood grid resolution.
    """

    name = "tsunami"

    def __init__(self, region_depth: int = 3, columns_per_dim: int = 8) -> None:
        super().__init__()
        if region_depth < 0:
            raise ValueError("region_depth must be >= 0")
        self.region_depth = region_depth
        self.columns_per_dim = columns_per_dim
        self._regions: list[_Region] = []
        self._size = 0

    def build(self, points: np.ndarray, values: Sequence[object] | None = None) -> "TsunamiIndex":
        pts, vals = self._prepare_points(points, values)
        self.dims = int(pts.shape[1]) if pts.size else 0
        self._size = int(pts.shape[0])
        self._built = True
        self._regions = []
        if pts.shape[0] == 0:
            return self
        self._extent = float(np.max(pts.max(axis=0) - pts.min(axis=0))) or 1.0
        self._partition(pts, vals, self.region_depth)
        self.stats.size_bytes = sum(r.grid.stats.size_bytes + 32 for r in self._regions)
        self.stats.extra["regions"] = len(self._regions)
        return self

    def _partition(self, pts: np.ndarray, vals: list[object], depth: int) -> None:
        if depth == 0 or pts.shape[0] <= 64:
            grid = FloodIndex(columns_per_dim=self.columns_per_dim).build(pts, vals)
            self._regions.append(_Region(pts.min(axis=0), pts.max(axis=0), grid))
            return
        # Split on the dimension with the largest spread (captures the
        # correlated diagonal by cutting across it repeatedly).
        spreads = pts.max(axis=0) - pts.min(axis=0)
        dim = int(np.argmax(spreads))
        median = float(np.median(pts[:, dim]))
        mask = pts[:, dim] <= median
        if mask.all() or not mask.any():
            grid = FloodIndex(columns_per_dim=self.columns_per_dim).build(pts, vals)
            self._regions.append(_Region(pts.min(axis=0), pts.max(axis=0), grid))
            return
        idx_l = np.nonzero(mask)[0]
        idx_r = np.nonzero(~mask)[0]
        self._partition(pts[idx_l], [vals[i] for i in idx_l], depth - 1)
        self._partition(pts[idx_r], [vals[i] for i in idx_r], depth - 1)

    def tune(self, workload: list[tuple[np.ndarray, np.ndarray]],
             candidates: Sequence[int] = (4, 8, 16, 32)) -> "TsunamiIndex":
        """Tune every region's grid on the sub-workload intersecting it."""
        self._require_built()
        for region in self._regions:
            sub = [
                (lo, hi) for lo, hi in workload
                if not (np.any(np.asarray(hi) < region.lo) or np.any(np.asarray(lo) > region.hi))
            ]
            if sub:
                region.grid.tune(sub, candidates=candidates)
        self.stats.extra["tuned"] = True
        return self

    # -- queries -------------------------------------------------------------
    def _absorb_region_stats(self, region: _Region) -> None:
        """Fold a region grid's per-query counters into this index's."""
        sub = region.grid.stats
        self.stats.keys_scanned += sub.keys_scanned
        self.stats.nodes_visited += sub.nodes_visited
        self.stats.comparisons += sub.comparisons
        sub.reset_counters()

    def point_query(self, point: Sequence[float]) -> object | None:
        """Route to the containing region, then query its Flood grid.

        Config-bounded region list: ``_partition`` recurses at most
        ``region_depth`` times, so there are at most 2**region_depth
        regions regardless of n.
        """
        self._require_built()
        q = np.asarray(point, dtype=np.float64)
        for region in self._regions:
            if np.all(q >= region.lo) and np.all(q <= region.hi):
                self.stats.nodes_visited += 1
                result = region.grid.point_query(q)
                self._absorb_region_stats(region)
                if result is not None:
                    return result
        return None

    def range_query(self, low: Sequence[float], high: Sequence[float]) -> list[tuple[tuple[float, ...], object]]:
        self._require_built()
        lo = np.asarray(low, dtype=np.float64)
        hi = np.asarray(high, dtype=np.float64)
        if np.any(hi < lo):
            return []
        out: list[tuple[tuple[float, ...], object]] = []
        for region in self._regions:
            if np.any(hi < region.lo) or np.any(lo > region.hi):
                continue
            self.stats.nodes_visited += 1
            out.extend(region.grid.range_query(lo, hi))
            self._absorb_region_stats(region)
        return out

    @property
    def num_regions(self) -> int:
        """Number of region grids."""
        return len(self._regions)

    def __len__(self) -> int:
        return self._size
