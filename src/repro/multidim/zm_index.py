"""ZM-index — Wang et al., 2019: learned index over Z-order codes.

The canonical *projected space* learned multi-dimensional index
(Approach 2 of the survey): points are projected onto the Z-order curve,
the codes are sorted, and a learned one-dimensional index (here: PGM
segments) maps codes to positions.  Range queries scan the code interval
of the query box and skip the curve's excursions with BIGMIN.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.interfaces import MultiDimIndex, as_object_array
from repro.core.numeric import exact_float64
from repro.curves.capacity import require_code_budget
from repro.curves.zorder import bigmin, interleave, quantize, zencode_array
from repro.models.pla import Segment, segment_stream
from repro.onedim._search import bounded_binary_search, bounded_search_batch, lower_bound

__all__ = ["ZMIndex"]


class ZMIndex(MultiDimIndex):
    """Z-order projection + learned model over the code sequence.

    Args:
        bits: bits per dimension for the Z-order quantisation (total code
            width is ``bits * d``; keep ``bits * d <= 62``).
        epsilon: error bound of the learned code -> position model.
    """

    name = "zm-index"

    def __init__(self, bits: int = 16, epsilon: int = 32) -> None:
        super().__init__()
        if not 1 <= bits <= 31:
            raise ValueError("bits must be in [1, 31]")
        if epsilon < 1:
            raise ValueError("epsilon must be >= 1")
        self.bits = bits
        self.epsilon = epsilon
        self._points = np.empty((0, 2))
        self._values: list[object] = []
        self._codes = np.empty(0, dtype=np.int64)
        self._qcoords = np.empty((0, 2), dtype=np.int64)
        self._lo = np.zeros(2)
        self._hi = np.ones(2)
        self._segments: list[Segment] = []
        self._segment_keys = np.empty(0, dtype=np.int64)
        self._seg_slopes = np.empty(0)
        self._seg_anchors = np.empty(0)
        self._seg_firsts = np.empty(0, dtype=np.int64)
        self._seg_lasts = np.empty(0, dtype=np.int64)
        self._values_arr = np.empty(0, dtype=object)

    def build(self, points: np.ndarray, values: Sequence[object] | None = None) -> "ZMIndex":
        pts, vals = self._prepare_points(points, values)
        self.dims = int(pts.shape[1]) if pts.size else 0
        self._built = True
        if pts.shape[0] == 0:
            self._points = pts
            self._values = []
            return self
        require_code_budget(self.dims, self.bits)
        self._lo = pts.min(axis=0)
        self._hi = pts.max(axis=0)
        self._extent = float(np.max(self._hi - self._lo)) or 1.0
        codes = zencode_array(pts, self._lo, self._hi, self.bits).astype(np.int64)
        order = np.argsort(codes, kind="mergesort")
        self._codes = codes[order]
        self._points = pts[order]
        self._values = [vals[i] for i in order]
        self._qcoords = quantize(self._points, self._lo, self._hi, self.bits)

        self._values_arr = as_object_array(self._values)

        # Learned 1-d model over the sorted codes (plus column views of
        # the segment parameters for the vectorized batch path).  Codes
        # can be up to 62 bits wide; exact_float64 rejects any build
        # whose codes would alias under the model's float64 arithmetic.
        self._segments = segment_stream(
            exact_float64(self._codes, what="zm-index code keys"), float(self.epsilon)
        )
        self._seg_slopes = np.array([seg.slope for seg in self._segments])
        self._seg_anchors = np.array([seg.anchor_pos for seg in self._segments])
        self._seg_firsts = np.array([seg.first for seg in self._segments], dtype=np.int64)
        self._seg_lasts = np.array([seg.last for seg in self._segments], dtype=np.int64)
        # Segment routing keys stay int64 (each anchor is the code at the
        # segment's first position) so searchsorted compares codes to
        # codes without a dtype mix.
        self._segment_keys = self._codes[self._seg_firsts]
        self.stats.size_bytes = (
            sum(seg.size_bytes for seg in self._segments)
            + 8 * int(self._codes.size)  # the code column
        )
        self.stats.extra["segments"] = len(self._segments)
        return self

    # -- learned locate ------------------------------------------------------
    def _locate_code(self, code: int) -> int:
        """Lower-bound position of ``code`` via the learned model."""
        n = self._codes.size
        self.stats.model_predictions += 1
        seg_idx = int(np.searchsorted(self._segment_keys, code, side="right")) - 1
        seg_idx = min(max(seg_idx, 0), len(self._segments) - 1)
        seg = self._segments[seg_idx]
        predicted = int(np.clip(round(seg.predict(float(code))), seg.first, seg.last - 1))
        return bounded_binary_search(self._codes, code, predicted, self.epsilon + 1, self.stats)

    def _encode_point(self, point: np.ndarray) -> int:
        q = quantize(point[None, :], self._lo, self._hi, self.bits)[0]
        return interleave(q, self.bits)

    # -- queries -------------------------------------------------------------------
    def point_query(self, point: Sequence[float]) -> object | None:
        """Z-order locate, then a duplicate-bounded scan of the points
        sharing the query cell's code."""
        self._require_built()
        if self._codes.size == 0:
            return None
        q = np.asarray(point, dtype=np.float64)
        if np.any(q < self._lo) or np.any(q > self._hi):
            return None
        code = self._encode_point(q)
        pos = self._locate_code(code)
        # Several points can share a cell (code): scan the run.
        while pos < self._codes.size and self._codes[pos] == code:
            self.stats.keys_scanned += 1
            if np.array_equal(self._points[pos], q):
                return self._values[pos]
            pos += 1
        return None

    def point_query_batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorized batch point queries (element-wise equal to scalar).

        One ``zencode_array`` call projects the whole batch onto the
        curve, one segment-routing ``searchsorted`` plus an
        epsilon-bounded :func:`bounded_search_batch` locates every code,
        and a vectorized row comparison resolves the (dominant) case of a
        single point per cell; only queries landing in a multi-point cell
        fall back to the scalar run scan.
        """
        self._require_built()
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must have shape (m, d)")
        m = pts.shape[0]
        out = np.full(m, None, dtype=object)
        n = self._codes.size
        if m == 0 or n == 0:
            return out
        in_dom = np.all(pts >= self._lo, axis=1) & np.all(pts <= self._hi, axis=1)
        codes = zencode_array(pts, self._lo, self._hi, self.bits).astype(np.int64)
        seg_idx = np.clip(
            np.searchsorted(self._segment_keys, codes, side="right") - 1,
            0, len(self._segments) - 1,
        )
        raw = self._seg_slopes[seg_idx] * (codes - self._segment_keys[seg_idx]) \
            + self._seg_anchors[seg_idx]
        predicted = np.clip(
            np.rint(raw), self._seg_firsts[seg_idx], self._seg_lasts[seg_idx] - 1
        ).astype(np.int64)
        self.stats.model_predictions += m
        pos = bounded_search_batch(self._codes, codes, predicted,
                                   self.epsilon + 1, self.stats)
        cand = np.minimum(pos, n - 1)
        code_hit = in_dom & (pos < n) & (self._codes[cand] == codes)
        first_match = code_hit & np.all(self._points[cand] == pts, axis=1)
        hit_idx = np.nonzero(first_match)[0]
        self.stats.keys_scanned += int(code_hit.sum())
        out[hit_idx] = self._values_arr[cand[hit_idx]]
        # Cells holding several points: scan the rest of the code run
        # exactly like the scalar path.
        for i in np.nonzero(code_hit & ~first_match)[0]:
            j = int(pos[i]) + 1
            code = codes[i]
            while j < n and self._codes[j] == code:
                self.stats.keys_scanned += 1
                if np.array_equal(self._points[j], pts[i]):
                    out[i] = self._values[j]
                    break
                j += 1
        return out

    def range_query(self, low: Sequence[float], high: Sequence[float]) -> list[tuple[tuple[float, ...], object]]:
        self._require_built()
        if self._codes.size == 0:
            return []
        lo = np.asarray(low, dtype=np.float64)
        hi = np.asarray(high, dtype=np.float64)
        if np.any(hi < lo):
            return []
        clo = np.maximum(lo, self._lo)
        chi = np.minimum(hi, self._hi)
        if np.any(chi < clo):
            return []
        lo_q = tuple(int(c) for c in quantize(clo[None, :], self._lo, self._hi, self.bits)[0])
        hi_q = tuple(int(c) for c in quantize(chi[None, :], self._lo, self._hi, self.bits)[0])
        z_lo = self._encode_coords(lo_q)
        z_hi = self._encode_coords(hi_q)

        out: list[tuple[tuple[float, ...], object]] = []
        n = self._codes.size
        i = self._locate_code(z_lo)
        while i < n and self._codes[i] <= z_hi:
            qc = self._qcoords[i]
            inside_q = all(lo_q[d] <= int(qc[d]) <= hi_q[d] for d in range(self.dims))
            self.stats.keys_scanned += 1
            if inside_q:
                p = self._points[i]
                if np.all(p >= lo) and np.all(p <= hi):
                    out.append((tuple(float(c) for c in p), self._values[i]))
                i += 1
                continue
            # Off-box excursion of the curve: jump with BIGMIN.
            nxt = bigmin(int(self._codes[i]), lo_q, hi_q, self.dims, self.bits)
            self.stats.nodes_visited += 1
            if nxt is None:
                break
            i = lower_bound(self._codes, nxt, i + 1, n, self.stats)
        return out

    def _encode_coords(self, coords: tuple[int, ...]) -> int:
        return interleave(coords, self.bits)

    def __len__(self) -> int:
        return int(self._codes.size)
