"""Learned multi-dimensional indexes (Part 2 of the tutorial)."""

from repro.multidim.air_tree import AIRTreeIndex
from repro.multidim.flood import FloodIndex
from repro.multidim.learned_kd import LearnedKDIndex
from repro.multidim.lisa import LISAIndex
from repro.multidim.ml_index import MLIndex
from repro.multidim.qdtree import QdTreeIndex
from repro.multidim.rsmi import RSMIIndex
from repro.multidim.spatial_lbf import SpatialLearnedBloomFilter
from repro.multidim.sprig import SPRIGIndex
from repro.multidim.tsunami import TsunamiIndex
from repro.multidim.zm_index import ZMIndex

__all__ = [
    "AIRTreeIndex",
    "FloodIndex",
    "LearnedKDIndex",
    "LISAIndex",
    "MLIndex",
    "QdTreeIndex",
    "RSMIIndex",
    "SpatialLearnedBloomFilter",
    "SPRIGIndex",
    "TsunamiIndex",
    "ZMIndex",
]
