"""Qd-tree — Yang et al., 2020: learning data layouts for analytics.

The query-data tree partitions data into blocks by recursively choosing
axis-aligned cut predicates that minimise the number of blocks a sample
query workload must touch.  The paper trains the partitioner greedily
and with deep RL; the greedy variant is reproduced here (the paper's RL
gains over greedy are modest and the greedy policy is the reference
baseline in the paper itself).

Every leaf is a block of points; queries route to intersecting blocks
and scan them.  Skipped blocks are exactly the paper's headline metric
(blocks touched per query), exposed in ``stats.extra``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.interfaces import MultiDimIndex

__all__ = ["QdTreeIndex"]


class _QdNode:
    __slots__ = ("dim", "cut", "left", "right", "points", "values", "lo", "hi")

    def __init__(self) -> None:
        self.dim = -1
        self.cut = 0.0
        self.left: _QdNode | None = None
        self.right: _QdNode | None = None
        self.points: np.ndarray | None = None
        self.values: list[object] | None = None
        self.lo: np.ndarray | None = None
        self.hi: np.ndarray | None = None


class QdTreeIndex(MultiDimIndex):
    """Workload-driven partitioning tree (greedy Qd-tree).

    Args:
        min_block: minimum points per block (the paper's block size).
        workload: sample ``(low, high)`` query boxes used to score cuts;
            if ``None``, median cuts are used (workload-oblivious
            fallback, the ablation in E7/E8).
        max_cuts_per_dim: candidate quantile cuts evaluated per dimension.
    """

    name = "qd-tree"

    def __init__(self, min_block: int = 256,
                 workload: list[tuple[np.ndarray, np.ndarray]] | None = None,
                 max_cuts_per_dim: int = 8) -> None:
        super().__init__()
        if min_block < 1:
            raise ValueError("min_block must be >= 1")
        self.min_block = min_block
        self.workload = workload
        self.max_cuts_per_dim = max_cuts_per_dim
        self._root: _QdNode | None = None
        self._size = 0
        self._block_count = 0

    def build(self, points: np.ndarray, values: Sequence[object] | None = None) -> "QdTreeIndex":
        pts, vals = self._prepare_points(points, values)
        self.dims = int(pts.shape[1]) if pts.size else 0
        self._size = int(pts.shape[0])
        self._built = True
        self._block_count = 0
        if pts.shape[0] == 0:
            self._root = None
            return self
        self._extent = float(np.max(pts.max(axis=0) - pts.min(axis=0))) or 1.0
        workload = self.workload or []
        self._root = self._build_node(pts, vals, workload)
        self.stats.size_bytes = self._block_count * 64 + self._size * 8 * self.dims
        self.stats.extra["blocks"] = self._block_count
        return self

    def _build_node(self, pts: np.ndarray, vals: list[object],
                    workload: list[tuple[np.ndarray, np.ndarray]]) -> _QdNode:
        node = _QdNode()
        node.lo = pts.min(axis=0)
        node.hi = pts.max(axis=0)
        if pts.shape[0] <= 2 * self.min_block:
            node.points = pts
            node.values = vals
            self._block_count += 1
            return node
        dim, cut = self._choose_cut(pts, workload)
        if dim < 0:
            node.points = pts
            node.values = vals
            self._block_count += 1
            return node
        node.dim = dim
        node.cut = cut
        mask = pts[:, dim] <= cut
        idx_l = np.nonzero(mask)[0]
        idx_r = np.nonzero(~mask)[0]
        left_w = [q for q in workload if q[0][dim] <= cut]
        right_w = [q for q in workload if q[1][dim] > cut]
        node.left = self._build_node(pts[idx_l], [vals[i] for i in idx_l], left_w)
        node.right = self._build_node(pts[idx_r], [vals[i] for i in idx_r], right_w)
        return node

    def _choose_cut(self, pts: np.ndarray,
                    workload: list[tuple[np.ndarray, np.ndarray]]) -> tuple[int, float]:
        """Greedy cut selection: minimise expected rows scanned.

        For each candidate (dim, quantile) cut, the score is the expected
        number of rows a workload query must scan after the cut, assuming
        each side is one block.  Without a workload, fall back to the
        median of the widest dimension.
        """
        n = pts.shape[0]
        if not workload:
            spreads = pts.max(axis=0) - pts.min(axis=0)
            dim = int(np.argmax(spreads))
            cut = float(np.median(pts[:, dim]))
            if pts[:, dim].min() == pts[:, dim].max():
                return -1, 0.0
            return dim, cut
        best_score = None
        best = (-1, 0.0)
        quantiles = np.linspace(0.0, 1.0, self.max_cuts_per_dim + 2)[1:-1]
        for dim in range(self.dims):
            col = pts[:, dim]
            if col.min() == col.max():
                continue
            for q in quantiles:
                cut = float(np.quantile(col, q))
                left_n = int((col <= cut).sum())
                right_n = n - left_n
                if left_n == 0 or right_n == 0:
                    continue
                score = 0.0
                for lo, hi in workload:
                    touches_left = lo[dim] <= cut
                    touches_right = hi[dim] > cut
                    score += (left_n if touches_left else 0) + (right_n if touches_right else 0)
                if best_score is None or score < best_score:
                    best_score = score
                    best = (dim, cut)
        return best

    # -- queries -----------------------------------------------------------------
    def point_query(self, point: Sequence[float]) -> object | None:
        """Cut-tree descent to a block, then a capacity-bounded scan
        (blocks are split until they hold at most ``min_block`` points
        or no cut improves the workload score)."""
        self._require_built()
        if self._root is None:
            return None
        q = np.asarray(point, dtype=np.float64)
        node = self._root
        while node.points is None:
            self.stats.nodes_visited += 1
            node = node.left if q[node.dim] <= node.cut else node.right
        self.stats.nodes_visited += 1
        for i in range(node.points.shape[0]):
            self.stats.keys_scanned += 1
            if np.array_equal(node.points[i], q):
                return node.values[i]
        return None

    def range_query(self, low: Sequence[float], high: Sequence[float]) -> list[tuple[tuple[float, ...], object]]:
        self._require_built()
        if self._root is None:
            return []
        lo = np.asarray(low, dtype=np.float64)
        hi = np.asarray(high, dtype=np.float64)
        if np.any(hi < lo):
            return []
        out: list[tuple[tuple[float, ...], object]] = []
        blocks_touched = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.nodes_visited += 1
            if node.lo is not None and (np.any(hi < node.lo) or np.any(lo > node.hi)):
                continue
            if node.points is not None:
                blocks_touched += 1
                pts = node.points
                mask = np.all((pts >= lo) & (pts <= hi), axis=1)
                self.stats.keys_scanned += int(pts.shape[0])
                for i in np.nonzero(mask)[0]:
                    out.append((tuple(float(c) for c in pts[i]), node.values[i]))
                continue
            if lo[node.dim] <= node.cut and node.left is not None:
                stack.append(node.left)
            if hi[node.dim] > node.cut and node.right is not None:
                stack.append(node.right)
        self.stats.extra["last_blocks_touched"] = blocks_touched
        return out

    @property
    def num_blocks(self) -> int:
        """Number of leaf blocks."""
        return self._block_count

    def __len__(self) -> int:
        return self._size
