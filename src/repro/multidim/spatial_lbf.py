"""Spatial learned Bloom filters (LPBF / PA-LBF family, 2022-2023).

Spatial membership filters project points onto the Z-order curve and
partition the code space by curve *prefix*; each prefix region gets its
own learned Bloom filter trained on that region's codes.  Prefixes with
no keys answer "no" immediately, which is where the spatial variants
beat a single flat filter on clustered data.

Inserts (PA-LBF is adaptive) go straight into the region's backup filter,
preserving the no-false-negative guarantee without retraining.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.bloom import BloomFilter
from repro.core.interfaces import MembershipFilter
from repro.core.numeric import exact_float64
from repro.curves.capacity import require_code_budget
from repro.curves.zorder import zencode_array
from repro.onedim.learned_bloom import LearnedBloomFilter

__all__ = ["SpatialLearnedBloomFilter"]


class SpatialLearnedBloomFilter(MembershipFilter):
    """Prefix-partitioned learned Bloom filter over Z-order codes.

    A :class:`MembershipFilter` whose "keys" are d-dimensional points;
    subclassing keeps it inside the uniform filter contract (build +
    might_contain, no false negatives) that the filter benchmarks and
    the contract linter enforce.

    Args:
        bits_budget: total bit budget across all region filters.
        prefix_bits: number of leading code bits defining a region
            (``2**prefix_bits`` potential regions; only non-empty ones
            materialise).
        bits: Z-order quantisation bits per dimension.
    """

    name = "spatial-lbf"

    def __init__(self, bits_budget: int = 65536, prefix_bits: int = 4,
                 bits: int = 16) -> None:
        if prefix_bits < 1:
            raise ValueError("prefix_bits must be >= 1")
        super().__init__()
        self.bits_budget = bits_budget
        self.prefix_bits = prefix_bits
        self.bits = bits
        self.dims = 0
        self._lo = np.zeros(1)
        self._hi = np.ones(1)
        self._total_bits = 0
        self._regions: dict[int, LearnedBloomFilter | BloomFilter] = {}
        self._count = 0
        # Points inserted outside the built bounding box cannot be encoded
        # faithfully (quantisation clamps them); they are tracked exactly.
        self._outside: set[tuple[float, ...]] = set()

    def _codes_of(self, points: np.ndarray) -> np.ndarray:
        # Region filters hash float64 keys; exact_float64 rejects code
        # geometries whose Morton codes would alias above 2^53 (which
        # would silently create false positives *and* false negatives).
        codes = zencode_array(points, self._lo, self._hi, self.bits)
        return exact_float64(codes, what="spatial-lbf codes")

    def _prefix_of(self, code: float) -> int:
        total_bits = self.bits * self.dims
        return int(code) >> max(total_bits - self.prefix_bits, 0)

    def build(self, points: np.ndarray) -> "SpatialLearnedBloomFilter":
        """Construct region filters over the given point set."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        self.dims = int(pts.shape[1])
        require_code_budget(self.dims, self.bits)
        self._lo = pts.min(axis=0)
        self._hi = pts.max(axis=0)
        self._count = int(pts.shape[0])
        codes = self._codes_of(pts)
        prefixes = np.array([self._prefix_of(c) for c in codes])

        self._regions = {}
        unique, counts = np.unique(prefixes, return_counts=True)
        for prefix, count in zip(unique, counts):
            region_codes = codes[prefixes == prefix]
            budget = max(256, int(self.bits_budget * count / pts.shape[0]))
            if count >= 64:
                flt: LearnedBloomFilter | BloomFilter = LearnedBloomFilter(bits_budget=budget)
            else:
                # Too few keys to train on: plain Bloom filter region.
                flt = BloomFilter(bits=budget)
            flt.build(region_codes)
            self._regions[int(prefix)] = flt
        self._total_bits = sum(
            f.stats.size_bytes * 8 if isinstance(f, LearnedBloomFilter) else f.bits
            for f in self._regions.values()
        )
        self.stats.size_bytes = (self._total_bits + 7) // 8
        self.stats.extra["regions"] = len(self._regions)
        return self

    def might_contain(self, point: Sequence[float]) -> bool:
        """Approximate membership of an exact point (no false negatives
        for built/inserted points whose coordinates are within the built
        bounding box resolution)."""
        q = np.asarray(point, dtype=np.float64)
        if np.any(q < self._lo) or np.any(q > self._hi):
            # Outside the built box: only explicitly tracked inserts match.
            return tuple(float(c) for c in q) in self._outside
        code = float(self._codes_of(q[None, :])[0])
        region = self._regions.get(self._prefix_of(code))
        self.stats.model_predictions += 1
        if region is None:
            return False
        return region.might_contain(code)

    def insert(self, point: Sequence[float]) -> None:
        """Adaptive insert: add the code to the region's backup filter."""
        q1 = np.asarray(point, dtype=np.float64)
        if np.any(q1 < self._lo) or np.any(q1 > self._hi):
            self._outside.add(tuple(float(c) for c in q1))
            self._count += 1
            return
        q = q1[None, :]
        code = float(self._codes_of(q)[0])
        prefix = self._prefix_of(code)
        region = self._regions.get(prefix)
        if region is None:
            region = BloomFilter(bits=max(256, self.bits_budget // (1 << self.prefix_bits)))
            region.build([code])
            self._regions[prefix] = region
        elif isinstance(region, LearnedBloomFilter):
            region._backup.add(code)
        else:
            region.add(code)
        self._count += 1

    def false_positive_rate(self, negatives: np.ndarray) -> float:
        """Empirical FPR over non-member points."""
        total = 0
        hits = 0
        for row in np.asarray(negatives, dtype=np.float64):
            total += 1
            if self.might_contain(row):
                hits += 1
        return hits / total if total else 0.0

    def __len__(self) -> int:
        return self._count
