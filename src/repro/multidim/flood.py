"""Flood — Nathan et al., 2020: learning a multi-dimensional grid layout.

Flood lays the data out in a grid over ``d - 1`` dimensions and sorts by
the remaining *sort dimension* within each cell.  Its learning has two
parts, both reproduced here:

* **Flattening**: per-dimension column boundaries come from the empirical
  CDF (equi-depth quantiles), so skewed dimensions still spread evenly
  over columns.
* **Layout tuning**: the per-dimension column counts (and choice of sort
  dimension) are selected against a sample query workload with a simple
  cost model (cells visited + points scanned) — see :meth:`FloodIndex.tune`.

An untuned uniform grid (``tune=False``, fixed columns) serves as the
ablation in benchmark E10.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.core.interfaces import MultiDimIndex, as_object_array

__all__ = ["FloodIndex"]


class FloodIndex(MultiDimIndex):
    """Learned grid index with per-cell sorted runs.

    Args:
        columns_per_dim: initial column count for every grid dimension
            (all dims except the sort dimension).
        sort_dim: index of the in-cell sort dimension (default: last).
    """

    name = "flood"

    def __init__(self, columns_per_dim: int = 16, sort_dim: int | None = None) -> None:
        super().__init__()
        if columns_per_dim < 1:
            raise ValueError("columns_per_dim must be >= 1")
        self.columns_per_dim = columns_per_dim
        self.sort_dim = sort_dim
        self._grid_dims: list[int] = []
        self._columns: list[int] = []
        self._boundaries: list[np.ndarray] = []
        self._cells: dict[tuple[int, ...], tuple[np.ndarray, np.ndarray, list[object]]] = {}
        self._points = np.empty((0, 2))
        self._values: list[object] = []

    # -- construction -------------------------------------------------------
    def build(self, points: np.ndarray, values: Sequence[object] | None = None) -> "FloodIndex":
        pts, vals = self._prepare_points(points, values)
        self.dims = int(pts.shape[1]) if pts.size else 0
        self._points = pts
        self._values = vals
        self._built = True
        if pts.shape[0] == 0:
            self._cells = {}
            return self
        self._extent = float(np.max(pts.max(axis=0) - pts.min(axis=0))) or 1.0
        if self.sort_dim is None:
            self.sort_dim = self.dims - 1
        self._grid_dims = [d for d in range(self.dims) if d != self.sort_dim]
        self._columns = [self.columns_per_dim] * len(self._grid_dims)
        self._layout()
        return self

    def _layout(self) -> None:
        """(Re)build cells from the current column configuration."""
        pts = self._points
        self._boundaries = []
        for d, cols in zip(self._grid_dims, self._columns):
            # Flattening: equi-depth column boundaries from the CDF.
            probs = np.linspace(0.0, 1.0, cols + 1)[1:-1]
            self._boundaries.append(np.quantile(pts[:, d], probs))
        cell_ids = self._cell_ids(pts)
        order = np.lexsort((pts[:, self.sort_dim],) + tuple(cell_ids[:, ::-1].T))
        self._cells = {}
        sorted_ids = cell_ids[order]
        sorted_pts = pts[order]
        sorted_vals = [self._values[i] for i in order]
        start = 0
        n = pts.shape[0]
        while start < n:
            end = start + 1
            while end < n and np.array_equal(sorted_ids[end], sorted_ids[start]):
                end += 1
            cid = tuple(int(c) for c in sorted_ids[start])
            cell_pts = sorted_pts[start:end]
            self._cells[cid] = (
                cell_pts[:, self.sort_dim].copy(),
                cell_pts,
                as_object_array(sorted_vals[start:end]),
            )
            start = end
        self.stats.size_bytes = (
            sum(b.size * 8 for b in self._boundaries)
            + len(self._cells) * 48
            + self._points.shape[0] * 8  # sort-key column copies
        )
        self.stats.extra["cells"] = len(self._cells)
        self.stats.extra["columns"] = list(self._columns)

    def _cell_ids(self, pts: np.ndarray) -> np.ndarray:
        ids = np.zeros((pts.shape[0], len(self._grid_dims)), dtype=np.int64)
        for j, (d, bounds) in enumerate(zip(self._grid_dims, self._boundaries)):
            ids[:, j] = np.searchsorted(bounds, pts[:, d], side="right")
        return ids

    def _cell_of(self, point: np.ndarray) -> tuple[int, ...]:
        return tuple(
            int(np.searchsorted(bounds, point[d], side="right"))
            for d, bounds in zip(self._grid_dims, self._boundaries)
        )

    # -- workload-driven tuning -----------------------------------------------
    def tune(self, workload: list[tuple[np.ndarray, np.ndarray]],
             candidates: Sequence[int] = (4, 8, 16, 32, 64)) -> "FloodIndex":
        """Choose per-dimension column counts against a query workload.

        Args:
            workload: sample ``(low, high)`` boxes.
            candidates: column counts to consider per grid dimension.

        Greedy coordinate descent over the cost model: for each grid
        dimension in turn, pick the candidate count minimising the
        estimated query cost, holding the others fixed.
        """
        self._require_built()
        if not workload or self._points.shape[0] == 0:
            return self
        for j in range(len(self._grid_dims)):
            best_cost = None
            best_cols = self._columns[j]
            for cols in candidates:
                self._columns[j] = cols
                self._layout()
                cost = self._workload_cost(workload)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_cols = cols
            self._columns[j] = best_cols
            self._layout()
        self.stats.extra["tuned"] = True
        return self

    def _workload_cost(self, workload: list[tuple[np.ndarray, np.ndarray]]) -> float:
        """Cost model: cells visited + points scanned per query."""
        cell_cost = 20.0  # fixed overhead per visited cell
        total = 0.0
        for lo, hi in workload:
            cells, scanned = self._query_cost(np.asarray(lo, dtype=np.float64),
                                              np.asarray(hi, dtype=np.float64))
            total += cell_cost * cells + scanned
        return total

    def _query_cost(self, lo: np.ndarray, hi: np.ndarray) -> tuple[int, int]:
        lo_cell = self._cell_of(lo)
        hi_cell = self._cell_of(hi)
        cells = 0
        scanned = 0
        for cid in itertools.product(*(range(a, b + 1) for a, b in zip(lo_cell, hi_cell))):
            bucket = self._cells.get(cid)
            cells += 1
            if bucket is None:
                continue
            sort_keys = bucket[0]
            s_lo = int(np.searchsorted(sort_keys, lo[self.sort_dim], side="left"))
            s_hi = int(np.searchsorted(sort_keys, hi[self.sort_dim], side="right"))
            scanned += max(s_hi - s_lo, 0)
        return cells, scanned

    # -- queries ----------------------------------------------------------------
    def point_query(self, point: Sequence[float]) -> object | None:
        """Cell lookup, bisection on the sort key, duplicate-bounded run
        scan over points sharing that sort-key value."""
        self._require_built()
        if not self._cells:
            return None
        q = np.asarray(point, dtype=np.float64)
        bucket = self._cells.get(self._cell_of(q))
        self.stats.nodes_visited += 1
        if bucket is None:
            return None
        sort_keys, cell_pts, cell_vals = bucket
        i = int(np.searchsorted(sort_keys, q[self.sort_dim], side="left"))
        while i < sort_keys.size and sort_keys[i] == q[self.sort_dim]:
            self.stats.keys_scanned += 1
            if np.array_equal(cell_pts[i], q):
                return cell_vals[i]
            i += 1
        return None

    def point_query_batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorized batch point queries (element-wise equal to scalar).

        Routes the whole batch through the (already vectorized)
        ``_cell_ids``, groups queries per cell with one stable argsort,
        and answers each group with two ``searchsorted`` calls plus a
        vectorized row comparison; only sort-key ties longer than one
        entry fall back to the scalar run scan.
        """
        self._require_built()
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must have shape (m, d)")
        m = pts.shape[0]
        out = np.full(m, None, dtype=object)
        if m == 0 or not self._cells:
            return out
        ids = self._cell_ids(pts)
        flat = np.zeros(m, dtype=np.int64)
        for j, cols in enumerate(self._columns):
            flat = flat * cols + ids[:, j]
        order = np.argsort(flat, kind="stable")
        sf = flat[order]
        starts = np.concatenate(([0], np.nonzero(np.diff(sf))[0] + 1, [m]))
        self.stats.nodes_visited += m
        for s, e in zip(starts[:-1], starts[1:]):
            gidx = order[s:e]
            bucket = self._cells.get(tuple(int(c) for c in ids[gidx[0]]))
            if bucket is None:
                continue
            sort_keys, cell_pts, cell_vals = bucket
            qs = pts[gidx]
            s_vals = qs[:, self.sort_dim]
            lo = np.searchsorted(sort_keys, s_vals, side="left")
            hi = np.searchsorted(sort_keys, s_vals, side="right")
            has = lo < hi
            cand = np.minimum(lo, sort_keys.size - 1)
            first = has & np.all(cell_pts[cand] == qs, axis=1)
            self.stats.keys_scanned += int(has.sum())
            out[gidx[first]] = cell_vals[cand[first]]
            # Ties on the sort key: continue the scalar run scan.
            for t in np.nonzero(has & ~first)[0]:
                j = int(lo[t]) + 1
                while j < int(hi[t]):
                    self.stats.keys_scanned += 1
                    if np.array_equal(cell_pts[j], qs[t]):
                        out[gidx[t]] = cell_vals[j]
                        break
                    j += 1
        return out

    def range_query_batch(self, lows: np.ndarray, highs: np.ndarray) -> list[list[tuple[tuple[float, ...], object]]]:
        """Vectorized batch range queries (element-wise equal to scalar).

        Cell corners for every box are routed with one ``searchsorted``
        per grid dimension; each visited cell is then filtered with a
        single numpy mask over its contiguous sort-key slice instead of a
        per-point Python loop.
        """
        self._require_built()
        lo_arr = np.asarray(lows, dtype=np.float64)
        hi_arr = np.asarray(highs, dtype=np.float64)
        if lo_arr.ndim != 2 or hi_arr.shape != lo_arr.shape:
            raise ValueError("lows/highs must both have shape (m, d)")
        m = lo_arr.shape[0]
        results: list[list[tuple[tuple[float, ...], object]]] = [[] for _ in range(m)]
        if m == 0 or not self._cells:
            return results
        g = len(self._grid_dims)
        lo_ids = np.zeros((m, g), dtype=np.int64)
        hi_ids = np.zeros((m, g), dtype=np.int64)
        for j, (d, bounds) in enumerate(zip(self._grid_dims, self._boundaries)):
            lo_ids[:, j] = np.searchsorted(bounds, lo_arr[:, d], side="right")
            hi_ids[:, j] = np.searchsorted(bounds, hi_arr[:, d], side="right")
        empty = np.any(hi_arr < lo_arr, axis=1)
        for i in range(m):
            if empty[i]:
                continue
            lo, hi = lo_arr[i], hi_arr[i]
            out_i = results[i]
            for cid in itertools.product(*(range(a, b + 1) for a, b in zip(lo_ids[i], hi_ids[i]))):
                bucket = self._cells.get(cid)
                self.stats.nodes_visited += 1
                if bucket is None:
                    continue
                sort_keys, cell_pts, cell_vals = bucket
                s_lo = int(np.searchsorted(sort_keys, lo[self.sort_dim], side="left"))
                s_hi = int(np.searchsorted(sort_keys, hi[self.sort_dim], side="right"))
                if s_lo >= s_hi:
                    continue
                self.stats.keys_scanned += s_hi - s_lo
                seg = cell_pts[s_lo:s_hi]
                mask = np.all(seg >= lo, axis=1) & np.all(seg <= hi, axis=1)
                for j in np.nonzero(mask)[0]:
                    out_i.append((tuple(float(c) for c in seg[j]), cell_vals[s_lo + j]))
        return results

    def range_query(self, low: Sequence[float], high: Sequence[float]) -> list[tuple[tuple[float, ...], object]]:
        self._require_built()
        if not self._cells:
            return []
        lo = np.asarray(low, dtype=np.float64)
        hi = np.asarray(high, dtype=np.float64)
        if np.any(hi < lo):
            return []
        lo_cell = self._cell_of(lo)
        hi_cell = self._cell_of(hi)
        out: list[tuple[tuple[float, ...], object]] = []
        for cid in itertools.product(*(range(a, b + 1) for a, b in zip(lo_cell, hi_cell))):
            bucket = self._cells.get(cid)
            self.stats.nodes_visited += 1
            if bucket is None:
                continue
            sort_keys, cell_pts, cell_vals = bucket
            s_lo = int(np.searchsorted(sort_keys, lo[self.sort_dim], side="left"))
            s_hi = int(np.searchsorted(sort_keys, hi[self.sort_dim], side="right"))
            for i in range(s_lo, s_hi):
                p = cell_pts[i]
                self.stats.keys_scanned += 1
                if np.all(p >= lo) and np.all(p <= hi):
                    out.append((tuple(float(c) for c in p), cell_vals[i]))
        return out

    def __len__(self) -> int:
        return int(self._points.shape[0])
