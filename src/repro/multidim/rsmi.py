"""RSMI-style recursive spatial model index (Qi et al., 2020).

RSMI's two ideas, both reproduced:

* **Rank space**: instead of raw coordinates, each dimension is mapped
  through its empirical CDF (equi-depth quantile cells), which immunises
  the curve ordering against skew — exactly the transformation RSMI
  applies before its models.
* **Space-filling-curve models**: points are ordered by the Hilbert code
  of their rank-space cells, and a learned model (PLA over codes) routes
  queries to fixed-size blocks; inserts go to the blocks, which split
  when overfull (the *mutable pure / projected* branch).

Range queries enumerate the rank-space cells intersecting the box,
group their Hilbert codes into contiguous runs, and scan only the blocks
those runs touch.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Sequence

import numpy as np

from repro.core.interfaces import MutableMultiDimIndex
from repro.curves.hilbert import hilbert_encode
from repro.models.pla import Segment, segment_stream

__all__ = ["RSMIIndex"]


class _Block:
    """One leaf block: parallel code/point/value lists sorted by code."""

    __slots__ = ("codes", "points", "values")

    def __init__(self) -> None:
        self.codes: list[int] = []
        self.points: list[np.ndarray] = []
        self.values: list[object] = []

    def __len__(self) -> int:
        return len(self.codes)


class RSMIIndex(MutableMultiDimIndex):
    """Rank-space Hilbert projection + learned block routing.

    Args:
        bits: rank-space resolution per dimension (cells = 2**bits;
            keep small — range queries enumerate intersecting cells).
        block_size: target points per leaf block.
        epsilon: error bound of the learned code -> position model.
    """

    name = "rsmi"

    def __init__(self, bits: int = 6, block_size: int = 256, epsilon: int = 32) -> None:
        super().__init__()
        if not 1 <= bits <= 10:
            raise ValueError("bits must be in [1, 10]")
        if block_size < 8:
            raise ValueError("block_size must be >= 8")
        self.bits = bits
        self.block_size = block_size
        self.epsilon = epsilon
        self._boundaries: list[np.ndarray] = []
        self._blocks: list[_Block] = []
        self._block_starts: list[int] = []
        self._segments: list[Segment] = []
        self._segment_keys = np.empty(0)
        self._size = 0

    # -- rank space ---------------------------------------------------------
    def _rank_coords(self, p: np.ndarray) -> tuple[int, ...]:
        cells = 1 << self.bits
        out = []
        for d in range(self.dims):
            c = int(np.searchsorted(self._boundaries[d], p[d], side="right"))
            out.append(min(max(c, 0), cells - 1))
        return tuple(out)

    def _code_of(self, p: np.ndarray) -> int:
        return hilbert_encode(self._rank_coords(p), self.bits)

    # -- construction ----------------------------------------------------------
    def build(self, points: np.ndarray, values: Sequence[object] | None = None) -> "RSMIIndex":
        pts, vals = self._prepare_points(points, values)
        self.dims = int(pts.shape[1]) if pts.size else 0
        self._size = int(pts.shape[0])
        self._built = True
        self._blocks = []
        self._block_starts = []
        if pts.shape[0] == 0:
            return self
        self._extent = float(np.max(pts.max(axis=0) - pts.min(axis=0))) or 1.0
        cells = 1 << self.bits
        probs = np.linspace(0.0, 1.0, cells + 1)[1:-1]
        self._boundaries = [np.quantile(pts[:, d], probs) for d in range(self.dims)]

        codes = np.array([self._code_of(pts[i]) for i in range(pts.shape[0])], dtype=np.int64)
        order = np.argsort(codes, kind="mergesort")
        for start in range(0, order.size, self.block_size):
            chunk = order[start:start + self.block_size]
            block = _Block()
            block.codes = [int(codes[i]) for i in chunk]
            block.points = [pts[i].copy() for i in chunk]
            block.values = [vals[i] for i in chunk]
            self._blocks.append(block)
            self._block_starts.append(block.codes[0])

        # Learned routing model over the sorted code sequence.
        self._segments = segment_stream(codes[order].astype(np.float64), float(self.epsilon))
        self._segment_keys = np.array([seg.key for seg in self._segments])
        self.stats.size_bytes = (
            sum(b.size * 8 for b in self._boundaries)
            + sum(seg.size_bytes for seg in self._segments)
            + sum(len(b) * (8 + 8 * self.dims) + 24 for b in self._blocks)
        )
        self.stats.extra["blocks"] = len(self._blocks)
        self.stats.extra["segments"] = len(self._segments)
        return self

    def _block_for(self, code: int) -> int:
        """Learned block hint plus an error-bounded repair scan against
        the block-start directory (steps counted as corrections)."""
        if self._segments:
            self.stats.model_predictions += 1
            seg_idx = int(np.searchsorted(self._segment_keys, code, side="right")) - 1
            seg_idx = min(max(seg_idx, 0), len(self._segments) - 1)
            hint = int(self._segments[seg_idx].predict(float(code))) // self.block_size
        else:
            hint = 0
        idx = min(max(hint, 0), len(self._blocks) - 1)
        while idx > 0 and self._block_starts[idx] > code:
            idx -= 1
            self.stats.comparisons += 1
        while idx + 1 < len(self._blocks) and self._block_starts[idx + 1] <= code:
            idx += 1
            self.stats.comparisons += 1
        return idx

    # -- queries ------------------------------------------------------------------
    def point_query(self, point: Sequence[float]) -> object | None:
        """Learned block route plus a duplicate-bounded scan: the walk
        covers only blocks overlapped by the equal-code run."""
        self._require_built()
        if not self._blocks:
            return None
        q = np.asarray(point, dtype=np.float64)
        code = self._code_of(q)
        bi = self._block_for(code)
        # A code run may span adjacent blocks in either direction.
        while bi > 0 and self._blocks[bi - 1].codes and self._blocks[bi - 1].codes[-1] >= code:
            bi -= 1
        for idx in range(bi, len(self._blocks)):
            block = self._blocks[idx]
            if block.codes and block.codes[0] > code:
                break
            self.stats.nodes_visited += 1
            i = bisect.bisect_left(block.codes, code)
            while i < len(block.codes) and block.codes[i] == code:
                self.stats.keys_scanned += 1
                if np.array_equal(block.points[i], q):
                    return block.values[i]
                i += 1
        return None

    def range_query(self, low: Sequence[float], high: Sequence[float]) -> list[tuple[tuple[float, ...], object]]:
        self._require_built()
        if not self._blocks:
            return []
        lo = np.asarray(low, dtype=np.float64)
        hi = np.asarray(high, dtype=np.float64)
        if np.any(hi < lo):
            return []
        lo_rank = self._rank_coords(lo)
        hi_rank = self._rank_coords(hi)
        # Hilbert codes of every intersecting rank cell, as contiguous runs.
        cell_codes = sorted(
            hilbert_encode(cell, self.bits)
            for cell in itertools.product(
                *(range(a, b + 1) for a, b in zip(lo_rank, hi_rank))
            )
        )
        out: list[tuple[tuple[float, ...], object]] = []
        run_start = 0
        for i in range(1, len(cell_codes) + 1):
            if i == len(cell_codes) or cell_codes[i] != cell_codes[i - 1] + 1:
                self._scan_code_run(cell_codes[run_start], cell_codes[i - 1], lo, hi, out)
                run_start = i
        return out

    def _scan_code_run(self, code_lo: int, code_hi: int, lo: np.ndarray,
                       hi: np.ndarray, out: list) -> None:
        bi = self._block_for(code_lo)
        while bi > 0 and self._blocks[bi - 1].codes and self._blocks[bi - 1].codes[-1] >= code_lo:
            bi -= 1
        for idx in range(bi, len(self._blocks)):
            block = self._blocks[idx]
            if block.codes and block.codes[0] > code_hi:
                break
            self.stats.nodes_visited += 1
            i = bisect.bisect_left(block.codes, code_lo)
            while i < len(block.codes) and block.codes[i] <= code_hi:
                p = block.points[i]
                self.stats.keys_scanned += 1
                if np.all(p >= lo) and np.all(p <= hi):
                    out.append((tuple(float(c) for c in p), block.values[i]))
                i += 1

    # -- updates --------------------------------------------------------------------
    def insert(self, point: Sequence[float], value: object | None = None) -> None:
        """Learned block route, duplicate-bounded replace scan, and a
        capacity-bounded block insert (blocks split at 2x block_size)."""
        self._require_built()
        p = np.asarray(point, dtype=np.float64)
        if not self._blocks:
            self.dims = int(p.size)
            self._extent = 1.0
            cells = 1 << self.bits
            probs = np.linspace(0.0, 1.0, cells + 1)[1:-1]
            self._boundaries = [np.full(probs.size, float(p[d])) for d in range(self.dims)]
            self._blocks = [_Block()]
            self._block_starts = [0]
        code = self._code_of(p)
        bi = self._block_for(code)
        block = self._blocks[bi]
        i = bisect.bisect_left(block.codes, code)
        j = i
        while j < len(block.codes) and block.codes[j] == code:
            if np.array_equal(block.points[j], p):
                block.values[j] = value
                return
            j += 1
        block.codes.insert(i, code)
        block.points.insert(i, p.copy())
        block.values.insert(i, value)
        self._block_starts[bi] = block.codes[0]
        self._size += 1
        if len(block) > 2 * self.block_size:
            self._split_block(bi)

    def _split_block(self, bi: int) -> None:
        block = self._blocks[bi]
        mid = len(block) // 2
        right = _Block()
        right.codes = block.codes[mid:]
        right.points = block.points[mid:]
        right.values = block.values[mid:]
        block.codes = block.codes[:mid]
        block.points = block.points[:mid]
        block.values = block.values[:mid]
        self._blocks.insert(bi + 1, right)
        self._block_starts = [b.codes[0] if b.codes else 0 for b in self._blocks]
        self.stats.extra["splits"] = self.stats.extra.get("splits", 0) + 1

    def delete(self, point: Sequence[float]) -> bool:
        self._require_built()
        if not self._blocks:
            return False
        p = np.asarray(point, dtype=np.float64)
        code = self._code_of(p)
        bi = self._block_for(code)
        while bi > 0 and self._blocks[bi - 1].codes and self._blocks[bi - 1].codes[-1] >= code:
            bi -= 1
        for idx in range(bi, len(self._blocks)):
            block = self._blocks[idx]
            if block.codes and block.codes[0] > code:
                break
            i = bisect.bisect_left(block.codes, code)
            while i < len(block.codes) and block.codes[i] == code:
                if np.array_equal(block.points[i], p):
                    del block.codes[i]
                    del block.points[i]
                    del block.values[i]
                    if block.codes:
                        self._block_starts[idx] = block.codes[0]
                    self._size -= 1
                    return True
                i += 1
        return False

    @property
    def num_blocks(self) -> int:
        """Current number of leaf blocks."""
        return len(self._blocks)

    def __len__(self) -> int:
        return self._size
