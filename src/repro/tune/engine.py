"""The tuner: an observe→decide→actuate loop over a live index server.

:class:`Tuner` wires the layers together: the server's observer hook
feeds a :class:`~repro.tune.signals.WorkloadObserver`, each
:meth:`Tuner.step` closes a :class:`~repro.tune.signals.StatsWindow`,
scores drift, asks every policy for proposals, and hands them to the
:class:`~repro.tune.actuators.Actuator` — which applies them through
the store's locked, generation-bumping re-partition methods.

Disabled by default.  With ``TuneConfig.enabled`` False (the default)
the constructor installs no observer hook and :meth:`step` /
:meth:`start` are no-ops, so an idle tuner adds literally zero work to
the serving path — the parity test pins this.

Locking: the tuner's own lock guards only its step gate and thread
bookkeeping; it is never held across store, stats, observer, or audit
calls, so the control plane adds no edges to the static lock graph —
the concurrency analyzer's pinned sanctioned-edge set stays exact.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.lockorder import make_lock
from repro.serve.server import IndexServer
from repro.tune.actuators import Actuator
from repro.tune.audit import AuditLog, AuditRecord
from repro.tune.policies import (
    DriftRebuildPolicy,
    GridRetunePolicy,
    HotShardRebalancePolicy,
    Policy,
)
from repro.tune.signals import (
    DriftDetector,
    SignalBundle,
    StatsWindow,
    WorkloadObserver,
)

__all__ = ["TuneConfig", "Tuner", "default_policies"]


@dataclass(frozen=True)
class TuneConfig:
    """All tuner knobs in one frozen, serializable bag.

    ``enabled`` defaults to False: constructing a :class:`Tuner` with
    the default config is a guaranteed no-op on the serving path.
    """

    enabled: bool = False
    interval_s: float = 0.25          # background step period
    alpha: float = 0.5                # EWMA decay for windowed trends
    observer_capacity: int = 4096     # workload ring size
    audit_capacity: int = 1024
    # Drift detector (fed the observed *written* keys).
    drift_bins: int = 16
    drift_threshold: float = 0.35
    drift_hold: int = 2
    drift_min_samples: int = 64
    # Hot-shard rebalance policy.
    imbalance: float = 2.0
    min_requests: int = 256
    min_sample: int = 64
    max_sample: int = 4096
    # Drift rebuild policy.
    p99_rebuild_us: float | None = None
    min_writes: int = 64
    min_shard_writes: int = 1024
    quiescence: float = 0.5
    deep_factor: float = 3.0
    # Grid retune policy (multi-d only).
    retune_min_boxes: int = 32
    # Actuator rails.
    cooldown_steps: int = 2
    dry_run: bool = False
    seed: int = 0


def default_policies(config: TuneConfig) -> tuple[Policy, ...]:
    """The shipped policy set, parameterized by one config."""
    return (
        HotShardRebalancePolicy(
            imbalance=config.imbalance,
            min_requests=config.min_requests,
            min_sample=config.min_sample,
            max_sample=config.max_sample,
            seed=config.seed,
        ),
        GridRetunePolicy(
            min_boxes=config.retune_min_boxes,
            seed=config.seed,
        ),
        DriftRebuildPolicy(
            p99_us=config.p99_rebuild_us,
            min_writes=config.min_writes,
            min_shard_writes=config.min_shard_writes,
            quiescence=config.quiescence,
            deep_factor=config.deep_factor,
        ),
    )


class Tuner:
    """Self-tuning control plane for one :class:`IndexServer`.

    Args:
        server: the live server to observe and reshape.
        config: knobs; the default config is disabled (total no-op).
        policies: overrides :func:`default_policies` when given.
        reference: build-time keys for the drift detector.  When None,
            a 1-d store's keys are extracted with one full range scan at
            attach time; multi-d stores get drift only when a reference
            (points project to their first coordinate) is supplied.

    Use either :meth:`step` synchronously (benchmark drivers call it at
    phase boundaries, making runs deterministic) or :meth:`start` for a
    background daemon loop.  Both routes serialize through an internal
    gate, so a slow manual step and the background loop never interleave
    actuations.
    """

    def __init__(self, server: IndexServer, config: TuneConfig | None = None,
                 policies: Sequence[Policy] | None = None,
                 reference: np.ndarray | None = None) -> None:
        self._server = server
        self._config = config if config is not None else TuneConfig()
        self._audit = AuditLog(capacity=self._config.audit_capacity)
        self._lock = make_lock("Tuner._lock")
        self._stepping = False
        self._step_seq = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._closed = False
        if not self._config.enabled:
            # Disabled tuner: no observer hook, no window, no policies.
            # The serving path stays byte-for-byte identical to an
            # un-tuned server (pinned by the parity test).
            self._observer = None
            self._window = None
            self._drift = None
            self._policies: tuple[Policy, ...] = ()
            self._actuator = None
            return
        store = server.store
        self._observer = WorkloadObserver(
            capacity=self._config.observer_capacity,
            dims=store.dims if store.multi_dim else 0,
        )
        self._window = StatsWindow(server.server_stats, alpha=self._config.alpha)
        self._drift = self._make_drift(reference)
        # Writes routed to each shard since its last rebuild — the
        # rebuild policy's "enough delta to be worth a re-fit" signal.
        self._write_pressure = [0] * store.num_shards
        self._policies = (tuple(policies) if policies is not None
                          else default_policies(self._config))
        self._actuator = Actuator(
            store, self._audit,
            dry_run=self._config.dry_run,
            cooldown_steps=self._config.cooldown_steps,
        )
        # The observer object itself is the hook: it is callable (per
        # request) and exposes observe_many for the windowed fast path.
        server.attach_observer(self._observer, tuner=self)

    def _make_drift(self, reference: np.ndarray | None) -> DriftDetector | None:
        """Build the drift detector from the build-time key distribution."""
        store = self._server.store
        if reference is None:
            if store.multi_dim:
                return None  # no cheap full-point extraction; caller supplies
            reference = np.asarray(
                [key for key, _value in store.range_query_1d(-np.inf, np.inf)],
                dtype=np.float64,
            )
        ref = np.asarray(reference, dtype=np.float64)
        if ref.ndim == 2:  # points: drift watches the first coordinate
            ref = ref[:, 0]
        if ref.size < 2:
            return None
        return DriftDetector(
            ref,
            bins=self._config.drift_bins,
            threshold=self._config.drift_threshold,
            hold=self._config.drift_hold,
            min_samples=self._config.drift_min_samples,
        )

    # -- the loop ----------------------------------------------------------
    def step(self) -> list[AuditRecord]:
        """One observe→decide→actuate tick; returns this step's records.

        Reentrancy-safe: concurrent callers (background loop + a manual
        benchmark call) serialize through the step gate — the loser
        returns ``[]`` immediately rather than blocking.  The gate lock
        is held only around the flag flips, never across store or stats
        calls.
        """
        if not self._config.enabled or self._closed:
            return []
        with self._lock:
            if self._stepping:
                return []
            self._stepping = True
            step_seq = self._step_seq
            self._step_seq += 1
        try:
            return self._run_step(step_seq)
        finally:
            with self._lock:
                self._stepping = False

    def _run_step(self, step_seq: int) -> list[AuditRecord]:
        """The body of one step (gate already held by :meth:`step`)."""
        assert self._window is not None and self._observer is not None
        assert self._actuator is not None
        window = self._window.advance()
        observed = self._observer.drain()
        if self._drift is not None:
            drift_score = self._drift.update(observed.write_keys)
            drift_fired = self._drift.fired
        else:
            drift_score, drift_fired = 0.0, False
        store = self._server.store
        if not store.multi_dim and observed.write_keys.size:
            # Attribute this window's writes to the *current* boundaries
            # and fold them into the per-shard pressure counters.  (1-d
            # only: multi-d bounds are Morton codes, which scalar key
            # projections cannot be ranked against.)
            counts = np.bincount(
                np.searchsorted(store.bounds, observed.write_keys,
                                side="right"),
                minlength=store.num_shards,
            )
            for shard in range(store.num_shards):
                self._write_pressure[shard] += int(counts[shard])
        signals = SignalBundle(
            window=window,
            observed=observed,
            drift_score=drift_score,
            drift_fired=drift_fired,
            shard_sizes=tuple(store.shard_sizes()),
            write_pressure=tuple(self._write_pressure),
            num_shards=store.num_shards,
            multi_dim=store.multi_dim,
        )
        actions = []
        for policy in self._policies:
            actions.extend(policy.propose(signals))
        records = self._actuator.apply(step_seq, actions)
        for record in records:
            if record.outcome != "applied":
                continue
            if record.kind == "rebalance":
                # A rebalance freshly rebuilt every shard from the
                # re-split items: all delta state is gone.
                self._write_pressure = [0] * store.num_shards
            elif record.kind == "rebuild":
                for shard in record.shards:
                    self._write_pressure[shard] = 0
        if self._drift is not None and any(
            record.kind == "rebuild" and record.outcome == "applied"
            for record in records
        ):
            # The rebuild absorbed the drifted keys into fresh models;
            # restart the hold streak so only *new* sustained drift
            # (vs the unchanged build-time reference) re-fires.
            self._drift.reset()
        return records

    def start(self) -> "Tuner":
        """Start the background control loop (daemon thread); idempotent."""
        if not self._config.enabled:
            return self
        with self._lock:
            if self._closed or self._thread is not None:
                return self
            thread = threading.Thread(
                target=self._loop, name="repro-tuner", daemon=True,
            )
            self._thread = thread
        thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self._config.interval_s):
            self.step()

    def close(self) -> None:
        """Stop the loop and detach from the server; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
            self._thread = None
        self._stop.set()
        if thread is not None:
            thread.join(timeout=10.0)
        if self._config.enabled:
            self._server.attach_observer(None, tuner=None)

    # -- introspection -----------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._config.enabled

    @property
    def audit(self) -> AuditLog:
        """The decision log (every action, applied or not, lands here)."""
        return self._audit

    @property
    def config(self) -> TuneConfig:
        return self._config
