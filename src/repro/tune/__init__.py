"""repro.tune — self-tuning control plane for the serving layer.

The survey's closing argument is that learned indexes should *keep*
learning: the structures are fitted to a data and query distribution,
so when the observed workload walks away from the build-time
assumptions (skew concentrates on one shard, query boxes change shape,
written keys drift), the index should reshape itself.  This package is
that loop for :class:`repro.serve.server.IndexServer`:

* **observe** — :mod:`repro.tune.signals`: exact windowed/decayed
  server-stat summaries, bounded rings of observed keys/points/boxes,
  and a total-variation drift detector against the build distribution.
* **decide** — :mod:`repro.tune.policies`: seeded-deterministic
  policies proposing typed actions (hot-shard rebalance, grid retune,
  drift rebuild) from one immutable signal bundle.
* **actuate** — :mod:`repro.tune.actuators`: every action goes through
  the store's locked, generation-bumping re-partition methods (never
  direct shard mutation — rule RPR206), with dry-run and cooldown
  rails; :mod:`repro.tune.audit` records every decision either way.

:class:`repro.tune.engine.Tuner` wires it together and is disabled by
default — a default-config tuner is a guaranteed serving-path no-op.
"""

from repro.tune.actuators import Actuator
from repro.tune.audit import AuditLog, AuditRecord
from repro.tune.engine import TuneConfig, Tuner, default_policies
from repro.tune.policies import (
    Action,
    DriftRebuildPolicy,
    GridRetunePolicy,
    HotShardRebalancePolicy,
    Policy,
)
from repro.tune.signals import (
    DriftDetector,
    ObservedWindow,
    SignalBundle,
    StatsWindow,
    WindowSummary,
    WorkloadObserver,
)

__all__ = [
    "Action",
    "Actuator",
    "AuditLog",
    "AuditRecord",
    "DriftDetector",
    "DriftRebuildPolicy",
    "GridRetunePolicy",
    "HotShardRebalancePolicy",
    "ObservedWindow",
    "Policy",
    "SignalBundle",
    "StatsWindow",
    "TuneConfig",
    "Tuner",
    "WindowSummary",
    "WorkloadObserver",
    "default_policies",
]
