"""Signal layer: windowed stats, workload observation, drift detection.

The serving stack already records everything a control plane needs —
``ServerStats`` keeps cumulative counters and latency buckets, and every
submitted request passes through one observer hook — but policies want
*windows*, not lifetime totals.  This module turns the raw feeds into
three signals:

* :class:`StatsWindow` — exact per-window deltas of two consecutive
  :meth:`~repro.serve.stats.ServerStats.tuning_snapshot` copies
  (histogram bucket subtraction included, so a window has its own p99),
  plus exponentially decayed (EWMA) trends for hysteresis.
* :class:`WorkloadObserver` — bounded, lock-protected rings of the
  observed keys / points / query boxes, appended on the client threads
  by the server's observer hook.  Rings hold the most recent
  ``capacity`` observations, which is exactly the "recent workload
  shape" the boundary and grid policies resample from.
* :class:`DriftDetector` — total-variation distance between an observed
  key stream and the *build-time* key distribution, binned at the build
  distribution's own equi-depth quantiles (so the no-drift score is ~0
  by construction); fires only after ``hold`` consecutive windows over
  the threshold, which keeps one noisy window from triggering a
  rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.lockorder import make_lock
from repro.serve.requests import Op, Request
from repro.serve.stats import LatencyHistogram, ServerStats

__all__ = [
    "WindowSummary",
    "StatsWindow",
    "ObservedWindow",
    "WorkloadObserver",
    "DriftDetector",
    "SignalBundle",
]

#: Ops whose scalar key (or dim-0 coordinate) feeds the key rings.
_READ_KEY_OPS = frozenset({Op.LOOKUP, Op.CONTAINS, Op.POINT_QUERY, Op.KNN})
_WRITE_OPS = frozenset({Op.INSERT, Op.DELETE})


@dataclass(frozen=True)
class WindowSummary:
    """Exact counter deltas for one observation window, plus EWMA trends."""

    seq: int
    requests: int
    responses: int
    shed: int
    writes: int
    cache_hits: int
    cache_misses: int
    batches: int
    batched_requests: int
    per_shard_requests: tuple[int, ...]
    per_shard_batches: tuple[int, ...]
    latency: dict[str, float]
    ewma_requests: float
    ewma_writes: float
    ewma_p99_us: float
    ewma_per_shard: tuple[float, ...]


class StatsWindow:
    """Exact windowed + exponentially decayed views over ``ServerStats``.

    ``ServerStats`` counters are cumulative; :meth:`advance` subtracts
    the previous :meth:`~repro.serve.stats.ServerStats.tuning_snapshot`
    from the current one, so every window field is an exact delta (the
    snapshot itself is taken under the stats lock, one acquisition for
    all counters).  The window latency histogram is reconstructed from
    the subtracted raw bucket counts — window p50/p95/p99 are real, not
    an average of averages.  ``max_us`` is the lifetime maximum (maxima
    do not subtract), documented as an upper bound for the window.

    Single-caller by design: only the tuner's step loop advances a
    window; concurrent recorder threads are handled by the stats lock.
    """

    def __init__(self, stats: ServerStats, alpha: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self._stats = stats
        self._alpha = float(alpha)
        self._prev = stats.tuning_snapshot()
        self._seq = 0
        self._ewma_requests = 0.0
        self._ewma_writes = 0.0
        self._ewma_p99_us = 0.0
        self._ewma_per_shard = [0.0] * stats.num_shards

    def _decay(self, ewma: float, value: float) -> float:
        if self._seq == 1:  # seed the EWMA with the first window
            return value
        return self._alpha * value + (1.0 - self._alpha) * ewma

    def advance(self) -> WindowSummary:
        """Close the current window and return its exact summary."""
        cur = self._stats.tuning_snapshot()
        prev, self._prev = self._prev, cur
        self._seq += 1

        hist = LatencyHistogram()
        hist.counts = [
            int(c) - int(p)
            for c, p in zip(cur["latency_counts"], prev["latency_counts"])  # type: ignore[index]
        ]
        hist.total = int(cur["latency_total"]) - int(prev["latency_total"])  # type: ignore[call-overload]
        hist.sum_seconds = (
            float(cur["latency_sum_seconds"]) - float(prev["latency_sum_seconds"])  # type: ignore[arg-type]
        )
        hist.max_seconds = float(cur["latency_max_seconds"])  # type: ignore[arg-type]
        latency = hist.snapshot()

        def delta(name: str) -> int:
            return int(cur[name]) - int(prev[name])  # type: ignore[call-overload]

        per_shard = tuple(
            int(c) - int(p)
            for c, p in zip(cur["per_shard_requests"], prev["per_shard_requests"])  # type: ignore[index]
        )
        per_shard_batches = tuple(
            int(c) - int(p)
            for c, p in zip(cur["per_shard_batches"], prev["per_shard_batches"])  # type: ignore[index]
        )
        requests = delta("requests")
        writes = delta("writes")
        self._ewma_requests = self._decay(self._ewma_requests, float(requests))
        self._ewma_writes = self._decay(self._ewma_writes, float(writes))
        self._ewma_p99_us = self._decay(self._ewma_p99_us, latency["p99_us"])
        self._ewma_per_shard = [
            self._decay(e, float(v))
            for e, v in zip(self._ewma_per_shard, per_shard)
        ]
        return WindowSummary(
            seq=self._seq,
            requests=requests,
            responses=delta("responses"),
            shed=delta("shed"),
            writes=writes,
            cache_hits=delta("cache_hits"),
            cache_misses=delta("cache_misses"),
            batches=delta("batches"),
            batched_requests=delta("batched_requests"),
            per_shard_requests=per_shard,
            per_shard_batches=per_shard_batches,
            latency=latency,
            ewma_requests=self._ewma_requests,
            ewma_writes=self._ewma_writes,
            ewma_p99_us=self._ewma_p99_us,
            ewma_per_shard=tuple(self._ewma_per_shard),
        )


@dataclass(frozen=True)
class ObservedWindow:
    """One drained view of the workload rings + per-window observations.

    The rings (``keys``/``points``/boxes) are *recency* windows — they
    keep the last ``capacity`` observations across drains, which is the
    sample re-partitioning policies want.  ``write_keys`` is strictly
    *this window's* written keys (cleared on every drain, capped at
    ``capacity``): the drift detector and per-shard write attribution
    need each window scored independently, not a sliding mixture.
    """

    keys: np.ndarray          # scalar key projections of recent keyed reads+writes
    write_keys: np.ndarray    # scalar key projections of THIS window's writes
    points: np.ndarray        # full points of recent multi-d point ops (n, dims)
    box_lo: np.ndarray        # recent range-query box corners (n, dims)
    box_hi: np.ndarray
    reads: int                # window op counts since the previous drain
    writes: int
    ranges: int


class _Ring:
    """Fixed-capacity overwrite ring of float rows (no locking of its own)."""

    def __init__(self, capacity: int, width: int) -> None:
        self._data = np.empty((capacity, width), dtype=np.float64)
        self._next = 0
        self._filled = 0

    def push(self, row: object) -> None:
        self._data[self._next] = row
        self._next = (self._next + 1) % self._data.shape[0]
        if self._filled < self._data.shape[0]:
            self._filled += 1

    def extend(self, rows: np.ndarray) -> None:
        """Bulk-push ``rows`` (n, width) with wraparound slice writes."""
        cap = self._data.shape[0]
        n = rows.shape[0]
        if n >= cap:
            self._data[:] = rows[-cap:]
            self._next = 0
            self._filled = cap
            return
        end = self._next + n
        if end <= cap:
            self._data[self._next:end] = rows
        else:
            first = cap - self._next
            self._data[self._next:] = rows[:first]
            self._data[:end - cap] = rows[first:]
        self._next = end % cap
        self._filled = min(cap, self._filled + n)

    def copy(self) -> np.ndarray:
        return self._data[: self._filled].copy()


class WorkloadObserver:
    """Bounded, lock-protected recorder of the observed request shapes.

    :meth:`observe` is the server's per-request hook — it appends the
    request's key / point / box into preallocated overwrite rings under
    one internal lock (a few array writes per request; the rings never
    grow).  :meth:`drain` copies the ring contents and resets the
    per-window op counts, while the rings themselves keep holding the
    most recent ``capacity`` observations — a sliding recency window,
    which is what the re-partitioning policies resample boundaries from.
    """

    def __init__(self, capacity: int = 4096, dims: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.dims = dims
        self._lock = make_lock("WorkloadObserver._lock")
        self._keys = _Ring(capacity, 1)
        self._write_keys: list[float] = []
        self._points = _Ring(capacity, max(dims, 1))
        self._box_lo = _Ring(capacity, max(dims, 1))
        self._box_hi = _Ring(capacity, max(dims, 1))
        self._reads = 0
        self._writes = 0
        self._ranges = 0

    def _scalar_of(self, request: Request) -> float | None:
        if request.key is not None:
            return float(request.key)
        if request.point is not None:
            return float(request.point[0])
        return None

    def _observe_locked(self, request: Request) -> None:
        """Record one request; the caller holds the observer lock."""
        op = request.op
        if op in _READ_KEY_OPS or op in _WRITE_OPS:
            scalar = self._scalar_of(request)
            if scalar is not None:
                self._keys.push(scalar)
                if op in _WRITE_OPS and len(self._write_keys) < self.capacity:
                    self._write_keys.append(scalar)
            if request.point is not None and self.dims:
                self._points.push(request.point)
            if op in _WRITE_OPS:
                self._writes += 1
            else:
                self._reads += 1
        elif op in (Op.RANGE_1D, Op.RANGE_QUERY):
            if op is Op.RANGE_1D:
                self._box_lo.push(float(request.low))  # type: ignore[arg-type]
                self._box_hi.push(float(request.high))  # type: ignore[arg-type]
            else:
                self._box_lo.push(request.low)
                self._box_hi.push(request.high)
            self._ranges += 1

    def observe(self, request: Request) -> None:
        """Record one request (called on the submitting client thread)."""
        with self._lock:
            self._observe_locked(request)

    def observe_many(self, requests: Sequence[Request]) -> None:
        """Record a whole submission window in one bulk insertion.

        The server's windowed submission paths use this batch hook: the
        per-request field extraction runs lock-free into local lists,
        then one lock acquisition slides everything into the rings with
        vectorized wraparound writes — concurrent client threads contend
        once per window, not once per request, and the per-request cost
        drops to a couple of list appends.
        """
        read_ops = _READ_KEY_OPS
        write_ops = _WRITE_OPS
        scalars: list[float] = []       # keyed reads+writes, arrival order
        write_keys: list[float] = []
        points: list[object] = []
        boxes: list[Request] = []
        reads = writes = 0
        want_points = bool(self.dims)
        for request in requests:
            op = request.op
            if op in read_ops or op in write_ops:
                key = request.key
                point = request.point
                if key is not None:
                    scalar = float(key)
                elif point is not None:
                    scalar = float(point[0])
                else:
                    scalar = None
                if op in write_ops:
                    if scalar is not None:
                        scalars.append(scalar)
                        write_keys.append(scalar)
                    writes += 1
                else:
                    if scalar is not None:
                        scalars.append(scalar)
                    reads += 1
                if want_points and point is not None:
                    points.append(point)
            elif op is Op.RANGE_1D or op is Op.RANGE_QUERY:
                boxes.append(request)
        with self._lock:
            if scalars:
                self._keys.extend(
                    np.asarray(scalars, dtype=np.float64).reshape(-1, 1)
                )
            if write_keys:
                room = self.capacity - len(self._write_keys)
                if room > 0:
                    self._write_keys.extend(write_keys[:room])
            if points:
                self._points.extend(
                    np.asarray(points, dtype=np.float64).reshape(len(points), -1)
                )
            for request in boxes:
                if request.op is Op.RANGE_1D:
                    self._box_lo.push(float(request.low))  # type: ignore[arg-type]
                    self._box_hi.push(float(request.high))  # type: ignore[arg-type]
                else:
                    self._box_lo.push(request.low)
                    self._box_hi.push(request.high)
                self._ranges += 1
            self._reads += reads
            self._writes += writes

    __call__ = observe

    def drain(self) -> ObservedWindow:
        """Copy the rings and reset the window op counts (locked)."""
        with self._lock:
            window = ObservedWindow(
                keys=self._keys.copy().reshape(-1),
                write_keys=np.asarray(self._write_keys, dtype=np.float64),
                points=self._points.copy(),
                box_lo=self._box_lo.copy(),
                box_hi=self._box_hi.copy(),
                reads=self._reads,
                writes=self._writes,
                ranges=self._ranges,
            )
            self._write_keys = []
            self._reads = 0
            self._writes = 0
            self._ranges = 0
        return window


class DriftDetector:
    """Total-variation drift of observed keys vs the build distribution.

    The reference histogram uses *equi-depth* bin edges over the
    build-time keys, so the reference mass is uniform (``1/bins`` per
    bin) by construction and the drift score is simply the total
    variation distance ``0.5 * sum |observed_frac - 1/bins|``: ~0 when
    the observed stream matches the build distribution, approaching 1
    when all observed mass lands where the build had (almost) none.

    Hysteresis: :attr:`fired` only after ``hold`` consecutive
    :meth:`update` calls scored at or above ``threshold``; a window with
    fewer than ``min_samples`` observations is no evidence either way
    (score 0.0, streak untouched).  Single-caller by design (the tuner
    step loop); multi-d stores project points to their first coordinate
    before feeding the detector.
    """

    def __init__(self, reference: np.ndarray, bins: int = 16,
                 threshold: float = 0.35, hold: int = 2,
                 min_samples: int = 64) -> None:
        ref = np.asarray(reference, dtype=np.float64).reshape(-1)
        if ref.size < 2:
            raise ValueError("drift reference needs at least 2 keys")
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if hold < 1:
            raise ValueError("hold must be >= 1")
        self.bins = max(2, min(int(bins), ref.size))
        self.threshold = float(threshold)
        self.hold = int(hold)
        self.min_samples = int(min_samples)
        ordered = np.sort(ref)
        self._edges = np.asarray([
            ordered[(b * ordered.size) // self.bins]
            for b in range(1, self.bins)
        ])
        self._streak = 0
        self._last = 0.0

    def update(self, observed: np.ndarray) -> float:
        """Score one window of observed keys; advances the hold streak."""
        obs = np.asarray(observed, dtype=np.float64).reshape(-1)
        if obs.size < self.min_samples:
            return 0.0
        bin_ids = np.searchsorted(self._edges, obs, side="right")
        counts = np.bincount(bin_ids, minlength=self.bins)
        frac = counts / obs.size
        score = float(0.5 * np.abs(frac - 1.0 / self.bins).sum())
        if score >= self.threshold:
            self._streak += 1
        else:
            self._streak = 0
        self._last = score
        return score

    @property
    def score(self) -> float:
        """The most recent window's drift score."""
        return self._last

    @property
    def fired(self) -> bool:
        """True once ``hold`` consecutive windows crossed the threshold."""
        return self._streak >= self.hold

    def reset(self) -> None:
        """Clear the hold streak (called after a rebuild is applied)."""
        self._streak = 0


@dataclass(frozen=True)
class SignalBundle:
    """Everything a policy may look at for one tuning step.

    ``write_pressure`` attributes observed write keys to the *current*
    shard boundaries (the tuner routes them through the store's public
    bounds) and accumulates them across windows until a rebuild or
    rebalance absorbs that shard's delta state — so rebuild policies
    can target the shards that have actually degraded, and only once
    enough delta has piled up to be worth a linear-time re-fit.
    """

    window: WindowSummary
    observed: ObservedWindow
    drift_score: float
    drift_fired: bool
    shard_sizes: tuple[int, ...]
    write_pressure: tuple[int, ...]
    num_shards: int
    multi_dim: bool
