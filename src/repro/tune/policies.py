"""Policy engine: deterministic maps from observed signals to actions.

Each policy is a pure decision function — it looks at one
:class:`~repro.tune.signals.SignalBundle` and proposes zero or more
:class:`Action` values; it never touches the store itself (the actuator
owns application, rule RPR206 enforces the separation).  Policies are
seeded-deterministic: the only randomness is boundary-sample
subsampling, driven by ``np.random.default_rng(seed + window.seq)`` so
the same workload replay proposes the same actions.

Shipped policies mirror the adaptation levers the survey's systems use:

* :class:`HotShardRebalancePolicy` — skew (zipfian hot spots) shows up
  as per-shard request imbalance; re-fit the quantile / Morton-prefix
  boundaries to a sample of the *observed* keys, the same move RMI-style
  partitioning makes at build time, now driven by traffic.
* :class:`GridRetunePolicy` — Flood's core insight is that the grid
  layout should follow the *query* distribution; re-run per-dimension
  tuning with the recently observed query boxes.
* :class:`DriftRebuildPolicy` — when the written keys drift off the
  build-time distribution (or the window p99 crosses an SLO), learned
  error bounds degrade and delta buffers deepen; rebuild collapses the
  levels and re-fits the models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tune.signals import SignalBundle

__all__ = [
    "Action",
    "Policy",
    "HotShardRebalancePolicy",
    "GridRetunePolicy",
    "DriftRebuildPolicy",
]


@dataclass(frozen=True)
class Action:
    """One proposed index change, carrying its own triggering evidence.

    ``signal`` is a typed (name, value) tuple so the audit log can show
    exactly which measurements justified the action; ``sample`` carries
    rebalance boundary-sample keys/points and ``workload`` carries
    retune query boxes — payload the actuator forwards to the store.
    """

    kind: str  # "rebalance" | "retune" | "rebuild"
    policy: str
    shards: tuple[int, ...]
    reason: str
    signal: tuple[tuple[str, float], ...]
    sample: np.ndarray | None = field(default=None, compare=False)
    workload: tuple | None = field(default=None, compare=False)


class Policy:
    """Base policy: a deterministic ``SignalBundle -> [Action]`` map."""

    name = "policy"

    def propose(self, signals: SignalBundle) -> list[Action]:
        raise NotImplementedError


class HotShardRebalancePolicy(Policy):
    """Re-fit shard boundaries when window traffic concentrates on one shard.

    Fires when the hottest shard's window request count reaches
    ``imbalance`` times the fair (uniform) share, with floors on window
    volume and observed-sample size so quiet or barely-observed windows
    never trigger a re-partition.  The proposed action carries a
    seeded-deterministic subsample of the observed keys (1-d) or points
    (multi-d) for the store to fit fresh equi-depth boundaries against.
    """

    name = "hot-shard-rebalance"

    def __init__(self, imbalance: float = 2.0, min_requests: int = 256,
                 min_sample: int = 64, max_sample: int = 4096,
                 seed: int = 0) -> None:
        if imbalance < 1.0:
            raise ValueError("imbalance must be >= 1.0")
        self.imbalance = float(imbalance)
        self.min_requests = int(min_requests)
        self.min_sample = int(min_sample)
        self.max_sample = int(max_sample)
        self.seed = int(seed)

    def propose(self, signals: SignalBundle) -> list[Action]:
        if signals.num_shards < 2:
            return []
        window = signals.window
        total = sum(window.per_shard_requests)
        if total < self.min_requests:
            return []
        hottest = int(np.argmax(window.per_shard_requests))
        peak = window.per_shard_requests[hottest]
        fair = total / signals.num_shards
        ratio = peak / fair if fair > 0 else 0.0
        if ratio < self.imbalance:
            return []
        sample = signals.observed.points if signals.multi_dim else signals.observed.keys
        if sample.shape[0] < self.min_sample:
            return []
        if sample.shape[0] > self.max_sample:
            rng = np.random.default_rng(self.seed + window.seq)
            rows = rng.choice(sample.shape[0], size=self.max_sample, replace=False)
            sample = sample[np.sort(rows)]
        return [Action(
            kind="rebalance",
            policy=self.name,
            shards=tuple(range(signals.num_shards)),
            reason=(
                f"shard {hottest} took {peak}/{total} window requests "
                f"({ratio:.2f}x fair share >= {self.imbalance:.2f}x)"
            ),
            signal=(
                ("hot_shard", float(hottest)),
                ("peak_requests", float(peak)),
                ("window_requests", float(total)),
                ("imbalance", round(ratio, 3)),
            ),
            sample=sample,
        )]


class GridRetunePolicy(Policy):
    """Re-tune multi-d grid layouts from the observed query boxes.

    Multi-dimensional only: proposes a per-shard ``retune`` carrying a
    seeded-deterministic subsample of the recently observed range boxes.
    Shards whose index exposes no ``tune`` hook simply report as
    untuned in the actuator detail — proposing is cheap, the store
    decides applicability.
    """

    name = "grid-retune"

    def __init__(self, min_boxes: int = 32, max_boxes: int = 512,
                 seed: int = 0) -> None:
        self.min_boxes = int(min_boxes)
        self.max_boxes = int(max_boxes)
        self.seed = int(seed)

    def propose(self, signals: SignalBundle) -> list[Action]:
        if not signals.multi_dim:
            return []
        lo, hi = signals.observed.box_lo, signals.observed.box_hi
        if lo.shape[0] < self.min_boxes:
            return []
        if lo.shape[0] > self.max_boxes:
            rng = np.random.default_rng(self.seed + signals.window.seq)
            rows = np.sort(rng.choice(lo.shape[0], size=self.max_boxes,
                                      replace=False))
            lo, hi = lo[rows], hi[rows]
        widths = np.maximum(hi - lo, 1e-12)
        aspect = float(np.mean(widths.max(axis=1) / widths.min(axis=1)))
        workload = tuple((lo[i].copy(), hi[i].copy()) for i in range(lo.shape[0]))
        return [Action(
            kind="retune",
            policy=self.name,
            shards=tuple(range(signals.num_shards)),
            reason=(
                f"{lo.shape[0]} observed query boxes, "
                f"mean aspect ratio {aspect:.1f}"
            ),
            signal=(
                ("observed_boxes", float(lo.shape[0])),
                ("mean_aspect", round(aspect, 3)),
                ("window_ranges", float(signals.observed.ranges)),
            ),
            workload=workload,
        )]


class DriftRebuildPolicy(Policy):
    """Rebuild shards when write-key drift fires or the window p99 breaks SLO.

    The drift detector (fed the *written* keys) says the data under the
    learned models no longer looks like the data they were fitted on;
    the optional p99 threshold catches the same decay from the latency
    side (deepening delta levels make every probe more expensive).

    A re-fit costs linear time in shard size, so the proposal targets
    only shards whose accumulated *write pressure* (writes routed to
    them since their last rebuild) has reached ``min_shard_writes`` —
    enough delta that collapsing it pays for the re-fit.  Timing is the
    other half of the economics: a rebuild in the middle of an ingest
    burst is invalidated by the very next write window, so a pressured
    shard is proposed when the burst *subsides* — this window's write
    count fell below ``quiescence`` of the EWMA write trend — or when
    its pressure has run ``deep_factor`` past the floor (too deep to
    keep waiting under a continuous write stream).  A drift trigger with
    no shard over the pressure floor proposes nothing; a pure p99
    trigger with no attribution falls back to all shards.  Rebuild also
    rides the actuator's cooldown.
    """

    name = "drift-rebuild"

    def __init__(self, p99_us: float | None = None, min_writes: int = 64,
                 min_shard_writes: int = 1024, quiescence: float = 0.5,
                 deep_factor: float = 3.0) -> None:
        self.p99_us = None if p99_us is None else float(p99_us)
        self.min_writes = int(min_writes)
        self.min_shard_writes = int(min_shard_writes)
        self.quiescence = float(quiescence)
        self.deep_factor = float(deep_factor)

    def propose(self, signals: SignalBundle) -> list[Action]:
        window = signals.window
        pressured = tuple(
            s for s, pressure in enumerate(signals.write_pressure)
            if pressure >= self.min_shard_writes
        )
        deep = tuple(
            s for s, pressure in enumerate(signals.write_pressure)
            if pressure >= self.deep_factor * self.min_shard_writes
        )
        triggers = []
        shards: tuple[int, ...] = ()
        if (signals.drift_fired and pressured
                and window.ewma_writes >= self.min_writes):
            subsided = (window.writes
                        <= self.quiescence * window.ewma_writes)
            if subsided:
                triggers.append(
                    f"write-key drift {signals.drift_score:.2f} held and "
                    f"burst subsided ({window.writes} window writes vs "
                    f"{window.ewma_writes:.0f} trend)"
                )
                shards = pressured
            elif deep:
                triggers.append(
                    f"write-key drift {signals.drift_score:.2f} held and "
                    f"pressure ran {self.deep_factor:.0f}x past the floor"
                )
                shards = deep
        p99 = window.latency["p99_us"]
        if (self.p99_us is not None and window.responses > 0
                and p99 > self.p99_us):
            triggers.append(f"window p99 {p99:.0f}us > {self.p99_us:.0f}us")
            if not shards:
                shards = pressured or tuple(range(signals.num_shards))
        if not triggers or not shards:
            return []
        return [Action(
            kind="rebuild",
            policy=self.name,
            shards=shards,
            reason="; ".join(triggers) + f"; pressured shards {list(shards)}",
            signal=(
                ("drift_score", round(signals.drift_score, 4)),
                ("drift_fired", float(signals.drift_fired)),
                ("window_writes", float(window.writes)),
                ("ewma_writes", round(window.ewma_writes, 1)),
                ("window_p99_us", round(p99, 1)),
                ("max_pressure", float(max(signals.write_pressure, default=0))),
            ),
        )]
