"""Typed audit log: every tuning decision, applied or not, is recorded.

A control plane that silently reshapes the serving index is impossible
to operate; the audit log is the flight recorder.  Each record carries
the proposing policy, the action, the signal values that triggered it,
and the outcome — ``applied``, ``dry-run``, ``cooldown``, ``subsumed``, or
``error`` — so an operator can replay exactly why the index changed
shape (and why it sometimes deliberately did not).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.lockorder import make_lock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.tune.policies import Action

__all__ = ["AuditRecord", "AuditLog"]


@dataclass(frozen=True)
class AuditRecord:
    """One tuning decision: who proposed what, on what evidence, and result."""

    seq: int
    step: int
    policy: str
    kind: str
    shards: tuple[int, ...]
    reason: str
    signal: tuple[tuple[str, float], ...]
    outcome: str  # "applied" | "dry-run" | "cooldown" | "subsumed" | "error"
    detail: str = ""

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly view for benchmark artifacts."""
        return {
            "seq": self.seq,
            "step": self.step,
            "policy": self.policy,
            "kind": self.kind,
            "shards": list(self.shards),
            "reason": self.reason,
            "signal": {name: value for name, value in self.signal},
            "outcome": self.outcome,
            "detail": self.detail,
        }


class AuditLog:
    """Bounded, lock-protected, append-only log of tuning decisions.

    Appends come from the tuner's step loop; reads may come from any
    thread (tests, benchmark artifact writers), so both sides take the
    internal lock.  The deque bound keeps a long-running tuner from
    growing without limit — old decisions age out, the recent history
    an operator actually inspects stays.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._lock = make_lock("AuditLog._lock")
        self._records: deque[AuditRecord] = deque(maxlen=capacity)
        self._seq = 0

    def append(self, step: int, action: "Action", outcome: str,
               detail: str = "") -> AuditRecord:
        """Record one decision and return the stamped record."""
        with self._lock:
            self._seq += 1
            record = AuditRecord(
                seq=self._seq,
                step=step,
                policy=action.policy,
                kind=action.kind,
                shards=action.shards,
                reason=action.reason,
                signal=action.signal,
                outcome=outcome,
                detail=detail,
            )
            self._records.append(record)
            return record

    def records(self) -> list[AuditRecord]:
        """Locked copy of the retained records, oldest first."""
        with self._lock:
            return list(self._records)

    def snapshot(self) -> list[dict[str, object]]:
        """JSON-friendly copy (for ``BENCH_tune.json`` and friends)."""
        return [record.to_dict() for record in self.records()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
