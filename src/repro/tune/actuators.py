"""Actuator layer: the only component that touches the serving index.

Every action routes through the store's locked re-partitioning methods
(``rebalance`` / ``retune_shard`` / ``rebuild_shard``) — never through
direct shard or generation mutation (rule RPR206) — so the existing
generation machinery does the heavy lifting: result-cache entries keyed
on the old generations become unreachable, and process-backend workers
republish their shared-memory snapshots on the next touch.

Safety rails live here rather than in the policies: ``dry_run`` records
what *would* have happened without applying anything, and a per-kind
cooldown (hysteresis) stops a persistent signal from thrashing the
index with back-to-back re-partitions.  Every decision — applied,
dry-run, cooled down, or failed — lands in the audit log.
"""

from __future__ import annotations

from typing import Sequence

from repro.serve.sharding import ShardedStore
from repro.tune.audit import AuditLog, AuditRecord
from repro.tune.policies import Action

__all__ = ["Actuator"]


class Actuator:
    """Applies proposed actions to a store with dry-run, cooldown, audit.

    Single-caller by design: only the tuner's (serialized) step loop
    invokes :meth:`apply`, so the cooldown bookkeeping needs no lock of
    its own and the actuator never holds any lock across the store
    calls — the store's re-partitioning methods do their own locking.
    """

    def __init__(self, store: ShardedStore, audit: AuditLog, *,
                 dry_run: bool = False, cooldown_steps: int = 2) -> None:
        if cooldown_steps < 0:
            raise ValueError("cooldown_steps must be >= 0")
        self._store = store
        self._audit = audit
        self._dry_run = bool(dry_run)
        self._cooldown = int(cooldown_steps)
        self._last_applied: dict[str, int] = {}

    def apply(self, step: int, actions: Sequence[Action]) -> list[AuditRecord]:
        """Run the rails on each action in order; return the audit records."""
        records: list[AuditRecord] = []
        applied_kinds: set[str] = set()
        for action in actions:
            if action.kind == "rebuild" and "rebalance" in applied_kinds:
                # A rebalance already re-split *and* freshly rebuilt every
                # shard this step; a follow-up rebuild would pay the full
                # cost again for nothing.
                records.append(self._audit.append(
                    step, action, "subsumed",
                    detail="rebalance this step already rebuilt every shard",
                ))
                continue
            last = self._last_applied.get(action.kind)
            if last is not None and step - last < self._cooldown:
                records.append(self._audit.append(
                    step, action, "cooldown",
                    detail=(f"applied at step {last}, "
                            f"cooling down for {self._cooldown} steps"),
                ))
                continue
            if self._dry_run:
                records.append(self._audit.append(step, action, "dry-run"))
                continue
            try:
                detail = self._dispatch(action)
            except Exception as exc:  # noqa: BLE001 - audit and continue
                records.append(self._audit.append(
                    step, action, "error",
                    detail=f"{type(exc).__name__}: {exc}",
                ))
                continue
            self._last_applied[action.kind] = step
            applied_kinds.add(action.kind)
            records.append(self._audit.append(step, action, "applied",
                                              detail=detail))
        return records

    def _dispatch(self, action: Action) -> str:
        """Route one action through the store's locked re-partition API."""
        store = self._store
        if action.kind == "rebalance":
            version = store.rebalance(sample=action.sample)
            return (f"bounds version {version}, "
                    f"shard sizes {store.shard_sizes()}")
        if action.kind == "rebuild":
            for shard in action.shards:
                store.rebuild_shard(shard)
            return f"rebuilt shards {list(action.shards)}"
        if action.kind == "retune":
            if action.workload is None:
                raise ValueError("retune action carries no workload boxes")
            tuned = [shard for shard in action.shards
                     if store.retune_shard(shard, list(action.workload))]
            return f"retuned shards {tuned}"
        raise ValueError(f"unknown action kind {action.kind!r}")
