"""Cumulative distribution function models.

The founding observation of the learned-index literature (RMI) is that a
sorted-array index *is* the data's CDF scaled by ``n``: the position of a
key equals ``n * F(key)``.  These helpers model the empirical CDF.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["EmpiricalCDF", "QuantileModel"]


@dataclass
class EmpiricalCDF:
    """The empirical CDF of a sample, evaluated by binary search."""

    keys: np.ndarray = field(default_factory=lambda: np.empty(0))

    @classmethod
    def fit(cls, keys: np.ndarray) -> "EmpiricalCDF":
        """Store a sorted copy of ``keys``."""
        arr = np.sort(np.asarray(keys, dtype=np.float64))
        return cls(keys=arr)

    def evaluate(self, x: float) -> float:
        """Fraction of sample values <= ``x``."""
        if self.keys.size == 0:
            return 0.0
        return float(np.searchsorted(self.keys, x, side="right")) / self.keys.size

    def evaluate_array(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`evaluate`."""
        if self.keys.size == 0:
            return np.zeros(np.asarray(xs).shape)
        ranks = np.searchsorted(self.keys, np.asarray(xs, dtype=np.float64), side="right")
        return ranks / self.keys.size

    def position(self, x: float) -> float:
        """Predicted array position of ``x`` (CDF scaled by n)."""
        return self.evaluate(x) * max(self.keys.size - 1, 0)


@dataclass
class QuantileModel:
    """A compressed CDF: ``q`` evenly spaced quantiles, linear in between.

    This is the model behind equi-depth bucketing: storage is ``O(q)``
    instead of ``O(n)``, and evaluation interpolates between quantiles.
    """

    quantiles: np.ndarray = field(default_factory=lambda: np.empty(0))

    @classmethod
    def fit(cls, keys: np.ndarray, num_quantiles: int = 64) -> "QuantileModel":
        """Fit ``num_quantiles + 1`` quantile points over ``keys``."""
        if num_quantiles < 1:
            raise ValueError("num_quantiles must be >= 1")
        arr = np.sort(np.asarray(keys, dtype=np.float64))
        if arr.size == 0:
            return cls()
        probs = np.linspace(0.0, 1.0, num_quantiles + 1)
        return cls(quantiles=np.quantile(arr, probs))

    def evaluate(self, x: float) -> float:
        """Approximate CDF value at ``x`` in [0, 1]."""
        q = self.quantiles
        if q.size == 0:
            return 0.0
        if x <= q[0]:
            return 0.0
        if x >= q[-1]:
            return 1.0
        idx = int(np.searchsorted(q, x, side="right")) - 1
        idx = min(idx, q.size - 2)
        left, right = float(q[idx]), float(q[idx + 1])
        frac = 0.0 if right == left else (x - left) / (right - left)
        return (idx + frac) / (q.size - 1)

    @property
    def size_bytes(self) -> int:
        return 8 * int(self.quantiles.size)
