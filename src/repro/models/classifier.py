"""Logistic-regression classifier (learned Bloom filter / AI+R-tree substrate).

Learned Bloom filters score keys with a classifier and route
high-confidence keys around the backup filter; the "AI+R"-tree classifies
queries to predict which R-tree leaves hold their answers.  A plain
logistic regression trained by full-batch gradient descent is enough for
both, and keeps training deterministic and fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LogisticClassifier", "ScalarFeaturizer", "featurize_scalar"]


@dataclass
class ScalarFeaturizer:
    """Deterministic nonlinear feature map for scalar keys.

    A raw scalar gives logistic regression only a single threshold; the
    map ``[x, x^2, sin kt, cos kt, ...]`` (t = key normalised over the
    *training* range) lets it carve the key space into several score
    regions, which is what the learned Bloom filter needs.

    The normalisation constants are fit once and reused, so a single-key
    query is featurised identically to the training batch.
    """

    lo: float = 0.0
    span: float = 1.0

    @classmethod
    def fit(cls, keys: np.ndarray) -> "ScalarFeaturizer":
        x = np.asarray(keys, dtype=np.float64).reshape(-1)
        if x.size == 0:
            return cls()
        lo = float(x.min())
        span = float(x.max() - lo) or 1.0
        return cls(lo=lo, span=span)

    def transform(self, keys: np.ndarray) -> np.ndarray:
        x = np.asarray(keys, dtype=np.float64).reshape(-1)
        t = (x - self.lo) / self.span * (2 * np.pi)
        return np.column_stack(
            [x, x * x, np.sin(t), np.cos(t), np.sin(3 * t), np.cos(3 * t)]
        )


def featurize_scalar(keys: np.ndarray) -> np.ndarray:
    """One-shot fit+transform (training-time convenience)."""
    return ScalarFeaturizer.fit(keys).transform(keys)


@dataclass
class LogisticClassifier:
    """Binary logistic regression with L2 regularisation.

    Features are standardised internally; training is deterministic
    full-batch gradient descent.
    """

    learning_rate: float = 0.5
    epochs: int = 200
    l2: float = 1e-4
    _weights: np.ndarray = field(default_factory=lambda: np.empty(0), repr=False)
    _bias: float = 0.0
    _mean: np.ndarray = field(default_factory=lambda: np.zeros(1), repr=False)
    _std: np.ndarray = field(default_factory=lambda: np.ones(1), repr=False)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticClassifier":
        """Train on ``features`` of shape (n, d) and 0/1 ``labels``."""
        x = np.asarray(features, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        y = np.asarray(labels, dtype=np.float64)
        n, d = x.shape
        if n == 0:
            raise ValueError("cannot fit on empty data")
        self._mean = x.mean(axis=0)
        self._std = x.std(axis=0)
        self._std[self._std == 0] = 1.0
        xn = (x - self._mean) / self._std
        self._weights = np.zeros(d)
        self._bias = float(np.log((y.mean() + 1e-9) / (1 - y.mean() + 1e-9)))
        lr = self.learning_rate
        for _ in range(self.epochs):
            logits = xn @ self._weights + self._bias
            probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))
            grad = (probs - y) / n
            self._weights -= lr * (xn.T @ grad + self.l2 * self._weights)
            self._bias -= lr * float(grad.sum())
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row."""
        x = np.asarray(features, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        xn = (x - self._mean) / self._std
        logits = xn @ self._weights + self._bias
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(features) >= threshold).astype(np.int64)

    @property
    def size_bytes(self) -> int:
        return 8 * int(self._weights.size) + 8
