"""ML model substrate shared by every learned index in the library."""

from repro.models.cdf import EmpiricalCDF, QuantileModel
from repro.models.classifier import LogisticClassifier, featurize_scalar
from repro.models.histogram import EquiDepthHistogram, EquiWidthHistogram
from repro.models.linear import EndpointLinearModel, LinearModel, fit_linear
from repro.models.nn import TinyMLP
from repro.models.pla import Segment, segment_greedy_splits, segment_stream, verify_epsilon
from repro.models.polynomial import PolynomialModel
from repro.models.spline import GreedySpline, SplineKnot, fit_greedy_spline

__all__ = [
    "EmpiricalCDF",
    "QuantileModel",
    "LogisticClassifier",
    "featurize_scalar",
    "EquiDepthHistogram",
    "EquiWidthHistogram",
    "EndpointLinearModel",
    "LinearModel",
    "fit_linear",
    "TinyMLP",
    "Segment",
    "segment_greedy_splits",
    "segment_stream",
    "verify_epsilon",
    "PolynomialModel",
    "GreedySpline",
    "SplineKnot",
    "fit_greedy_spline",
]
