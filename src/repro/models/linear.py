"""Linear models: the workhorse of learned indexes.

Almost every learned index in the survey uses linear models at its leaves
because they are cheap to train, tiny to store, and fast to evaluate.  Two
variants are provided:

* :class:`LinearModel` — least-squares fit (used by RMI, ALEX, Flood, ...).
* :class:`EndpointLinearModel` — line through the first and last point
  (used where single-pass construction matters).

Both track the maximum absolute prediction error over their training data
so indexes can bound their last-mile search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LinearModel", "EndpointLinearModel", "fit_linear"]


def fit_linear(xs: np.ndarray, ys: np.ndarray) -> tuple[float, float]:
    """Least-squares slope and intercept for ``ys ~ slope * xs + intercept``.

    Degenerate inputs (fewer than two distinct x values) fall back to a
    constant model at the mean y, which is the correct CDF model for a run
    of duplicate keys.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.size == 0:
        return 0.0, 0.0
    if xs.size == 1 or float(xs.max()) == float(xs.min()):
        return 0.0, float(ys.mean())
    x_mean = xs.mean()
    y_mean = ys.mean()
    denom = float(np.sum((xs - x_mean) ** 2))
    slope = float(np.sum((xs - x_mean) * (ys - y_mean)) / denom)
    intercept = float(y_mean - slope * x_mean)
    if not (np.isfinite(slope) and np.isfinite(intercept)):
        # Degenerate spacing (e.g. denormal-width key gaps overflow the
        # slope): fall back to the constant model.
        return 0.0, float(y_mean)
    return slope, intercept


@dataclass
class LinearModel:
    """A least-squares linear model ``y = slope * x + intercept``."""

    slope: float = 0.0
    intercept: float = 0.0
    max_error: float = 0.0

    @classmethod
    def fit(cls, xs: np.ndarray, ys: np.ndarray) -> "LinearModel":
        """Fit by least squares and record the max absolute error."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        slope, intercept = fit_linear(xs, ys)
        model = cls(slope=slope, intercept=intercept)
        if xs.size:
            model.max_error = float(np.max(np.abs(model.predict_array(xs) - ys)))
        return model

    def predict(self, x: float) -> float:
        """Predict a single position."""
        return self.slope * x + self.intercept

    def predict_array(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised prediction."""
        return self.slope * np.asarray(xs, dtype=np.float64) + self.intercept

    def predict_clamped(self, x: float, lo: int, hi: int) -> int:
        """Predict and clamp to the integer interval [lo, hi]."""
        pos = int(round(self.predict(x)))
        if pos < lo:
            return lo
        if pos > hi:
            return hi
        return pos

    @property
    def size_bytes(self) -> int:
        """Storage: two float64 parameters plus the error bound."""
        return 24


@dataclass
class EndpointLinearModel:
    """Line through the first and last training point (single pass)."""

    slope: float = 0.0
    intercept: float = 0.0
    max_error: float = 0.0

    @classmethod
    def fit(cls, xs: np.ndarray, ys: np.ndarray) -> "EndpointLinearModel":
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.size == 0:
            return cls()
        if xs.size == 1 or float(xs[-1]) == float(xs[0]):
            return cls(slope=0.0, intercept=float(ys.mean()))
        slope = float((ys[-1] - ys[0]) / (xs[-1] - xs[0]))
        intercept = float(ys[0] - slope * xs[0])
        model = cls(slope=slope, intercept=intercept)
        model.max_error = float(np.max(np.abs(slope * xs + intercept - ys)))
        return model

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept

    def predict_array(self, xs: np.ndarray) -> np.ndarray:
        return self.slope * np.asarray(xs, dtype=np.float64) + self.intercept

    @property
    def size_bytes(self) -> int:
        return 24
