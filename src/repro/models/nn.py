"""A tiny fully-connected neural network on numpy.

RMI's root model and the learned Bloom filter family use small neural
networks.  :class:`TinyMLP` is a one-hidden-layer ReLU network trained by
full-batch gradient descent — deliberately simple, deterministic, and
dependency-free, matching the survey's observation (§6.2) that learned
indexes should use the simplest model that fits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TinyMLP"]


@dataclass
class TinyMLP:
    """One-hidden-layer MLP: ``y = W2 @ relu(W1 @ x + b1) + b2``.

    Supports scalar regression (``loss='mse'``) and binary classification
    (``loss='logistic'``, sigmoid output).  Inputs are normalised to zero
    mean / unit variance internally.
    """

    hidden: int = 16
    loss: str = "mse"
    learning_rate: float = 0.05
    epochs: int = 300
    seed: int = 7
    _w1: np.ndarray = field(default_factory=lambda: np.empty(0), repr=False)
    _b1: np.ndarray = field(default_factory=lambda: np.empty(0), repr=False)
    _w2: np.ndarray = field(default_factory=lambda: np.empty(0), repr=False)
    _b2: float = 0.0
    _x_mean: np.ndarray = field(default_factory=lambda: np.zeros(1), repr=False)
    _x_std: np.ndarray = field(default_factory=lambda: np.ones(1), repr=False)
    _y_mean: float = 0.0
    _y_scale: float = 1.0

    def fit(self, xs: np.ndarray, ys: np.ndarray) -> "TinyMLP":
        """Train on ``xs`` of shape (n,) or (n, d) and targets ``ys``.

        For ``loss='logistic'``, ``ys`` must be 0/1 labels.
        """
        if self.loss not in ("mse", "logistic"):
            raise ValueError("loss must be 'mse' or 'logistic'")
        x = np.asarray(xs, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        y = np.asarray(ys, dtype=np.float64)
        n, d = x.shape
        if n == 0:
            raise ValueError("cannot fit on empty data")

        self._x_mean = x.mean(axis=0)
        self._x_std = x.std(axis=0)
        self._x_std[self._x_std == 0] = 1.0
        xn = (x - self._x_mean) / self._x_std
        if self.loss == "mse":
            self._y_mean = float(y.mean())
            self._y_scale = float(y.std()) or 1.0
            yt = (y - self._y_mean) / self._y_scale
        else:
            yt = y

        rng = np.random.default_rng(self.seed)
        h = self.hidden
        self._w1 = rng.normal(0.0, 1.0 / np.sqrt(d), size=(d, h))
        self._b1 = np.zeros(h)
        self._w2 = rng.normal(0.0, 1.0 / np.sqrt(h), size=h)
        self._b2 = 0.0

        lr = self.learning_rate
        for _ in range(self.epochs):
            z1 = xn @ self._w1 + self._b1
            a1 = np.maximum(z1, 0.0)
            out = a1 @ self._w2 + self._b2
            if self.loss == "logistic":
                pred = 1.0 / (1.0 + np.exp(-out))
                grad_out = (pred - yt) / n
            else:
                grad_out = 2.0 * (out - yt) / n
            grad_w2 = a1.T @ grad_out
            grad_b2 = float(grad_out.sum())
            grad_a1 = np.outer(grad_out, self._w2)
            grad_z1 = grad_a1 * (z1 > 0)
            grad_w1 = xn.T @ grad_z1
            grad_b1 = grad_z1.sum(axis=0)
            self._w2 -= lr * grad_w2
            self._b2 -= lr * grad_b2
            self._w1 -= lr * grad_w1
            self._b1 -= lr * grad_b1
        return self

    def _forward(self, x: np.ndarray) -> np.ndarray:
        xn = (x - self._x_mean) / self._x_std
        a1 = np.maximum(xn @ self._w1 + self._b1, 0.0)
        return a1 @ self._w2 + self._b2

    def predict(self, xs: np.ndarray) -> np.ndarray:
        """Regression predictions (de-normalised) for ``xs``."""
        x = np.asarray(xs, dtype=np.float64)
        squeeze = x.ndim == 1 and self._x_mean.size == 1
        if x.ndim == 1:
            x = x[:, None] if self._x_mean.size == 1 else x[None, :]
        out = self._forward(x)
        if self.loss == "mse":
            out = out * self._y_scale + self._y_mean
        return out if not squeeze or out.ndim == 0 else out

    def predict_proba(self, xs: np.ndarray) -> np.ndarray:
        """Classification probabilities (sigmoid of the raw output)."""
        x = np.asarray(xs, dtype=np.float64)
        if x.ndim == 1 and self._x_mean.size == 1:
            x = x[:, None]
        elif x.ndim == 1:
            x = x[None, :]
        return 1.0 / (1.0 + np.exp(-self._forward(x)))

    @property
    def size_bytes(self) -> int:
        """Parameter storage in bytes (float64)."""
        return 8 * int(self._w1.size + self._b1.size + self._w2.size + 1)
