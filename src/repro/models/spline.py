"""Greedy error-bounded spline fitting (the RadixSpline corridor algorithm).

A *spline* here is a monotone piecewise-linear function through a subset
of the data points (the knots).  The greedy corridor algorithm of
RadixSpline scans the sorted keys once, keeping the interval of slopes for
which the line from the previous knot stays within ``max_error`` of every
intermediate point's position; when the corridor collapses, the previous
point becomes a new knot.

Unlike the PLA of :mod:`repro.models.pla`, the spline is continuous: each
piece starts exactly where the previous piece ended, which is what lets
RadixSpline store only the knots (no per-segment intercepts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SplineKnot", "GreedySpline", "fit_greedy_spline"]


@dataclass(frozen=True)
class SplineKnot:
    """A spline knot: key and its exact position."""

    key: float
    position: float


@dataclass
class GreedySpline:
    """A monotone piecewise-linear spline over sorted keys.

    Attributes:
        knots: the spline knots in key order.  Interpolate between the two
            knots bracketing a query key to get its predicted position.
        max_error: the construction error bound; every training key's
            predicted position differs from its true position by at most
            this amount.
    """

    knots: list[SplineKnot]
    max_error: float

    def predict(self, key: float) -> float:
        """Predicted position of ``key`` by linear interpolation."""
        knots = self.knots
        if not knots:
            return 0.0
        if key <= knots[0].key:
            return knots[0].position
        if key >= knots[-1].key:
            return knots[-1].position
        lo, hi = 0, len(knots) - 1
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if knots[mid].key <= key:
                lo = mid
            else:
                hi = mid
        left, right = knots[lo], knots[hi]
        if right.key == left.key:
            return left.position
        t = (key - left.key) / (right.key - left.key)
        return left.position + t * (right.position - left.position)

    def segment_index(self, key: float) -> int:
        """Index of the spline segment containing ``key`` (for stats)."""
        knots = self.knots
        lo, hi = 0, max(len(knots) - 1, 0)
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if knots[mid].key <= key:
                lo = mid
            else:
                hi = mid
        return lo

    @property
    def size_bytes(self) -> int:
        """Storage: two float64 per knot."""
        return 16 * len(self.knots)


def fit_greedy_spline(keys: np.ndarray, max_error: float) -> GreedySpline:
    """Fit an error-bounded greedy spline over sorted ``keys``.

    Args:
        keys: sorted 1-d key array; duplicate keys are collapsed onto the
            position of their first occurrence for the corridor test.
        max_error: corridor half-width in positions (>= 1 recommended).

    Returns:
        A :class:`GreedySpline` whose prediction error on the training
        keys is at most ``max_error``.
    """
    keys = np.asarray(keys, dtype=np.float64)
    if max_error < 0:
        raise ValueError("max_error must be non-negative")
    n = keys.size
    if n == 0:
        return GreedySpline(knots=[], max_error=max_error)
    knots = [SplineKnot(float(keys[0]), 0.0)]
    if n == 1:
        return GreedySpline(knots=knots, max_error=max_error)

    base_key = float(keys[0])
    base_pos = 0.0
    slope_lo = -np.inf
    slope_hi = np.inf
    prev_key = base_key
    prev_pos = 0.0

    for i in range(1, n):
        key = float(keys[i])
        pos = float(i)
        dk = key - base_key
        if dk <= 0.0:
            # Duplicate of the base knot key.  The spline predicts one
            # value per key, so it fits iff the position is in-corridor.
            if abs(base_pos - pos) > max_error and prev_key > base_key:
                _emit_knot(knots, prev_key, prev_pos)
                base_key, base_pos = prev_key, prev_pos
                slope_lo, slope_hi = -np.inf, np.inf
            prev_key, prev_pos = key, pos
            continue
        exact_slope = (pos - base_pos) / dk
        if not np.isfinite(exact_slope) or exact_slope < slope_lo or exact_slope > slope_hi:
            # The line base -> current point leaves the cone: the previous
            # point becomes a knot (its exact line was verified in-cone,
            # so every intermediate point is within max_error of it).
            _emit_knot(knots, prev_key, prev_pos)
            base_key, base_pos = prev_key, prev_pos
            dk = key - base_key
            if dk <= 0.0:
                slope_lo, slope_hi = -np.inf, np.inf
            else:
                slope_lo = (pos - max_error - base_pos) / dk
                slope_hi = (pos + max_error - base_pos) / dk
        else:
            slope_lo = max(slope_lo, (pos - max_error - base_pos) / dk)
            slope_hi = min(slope_hi, (pos + max_error - base_pos) / dk)
        prev_key, prev_pos = key, pos

    last_key = float(keys[-1])
    if knots[-1].key < last_key:
        knots.append(SplineKnot(last_key, float(n - 1)))
    return GreedySpline(knots=knots, max_error=max_error)


def _emit_knot(knots: list[SplineKnot], key: float, position: float) -> None:
    """Append a knot, skipping degenerate duplicates of the last knot."""
    if knots and knots[-1].key >= key:
        return
    knots.append(SplineKnot(key, position))
