"""Error-bounded piecewise-linear approximation (PLA).

This is the substrate of the PGM-index and FITing-Tree families: partition
a sorted sequence of ``(key, position)`` pairs into the fewest segments
such that, within each segment, a linear model predicts every position to
within a user-chosen error ``epsilon``.

Two algorithms are provided:

* :func:`segment_stream` — single-pass *shrinking-cone* segmentation.  The
  segment is anchored at its first point; each new point narrows the
  feasible slope interval, and the segment closes when the interval
  becomes empty.  Every produced segment satisfies the epsilon guarantee
  by construction.  (This is the FITing-Tree algorithm and the standard
  practical PGM construction; the fully optimal O'Rourke variant saves at
  most a small constant factor of segments.)
* :func:`segment_greedy_splits` — fixed-size fallback used in tests as a
  trivially correct baseline.

Each :class:`Segment` stores the anchor key, slope, anchor position, and
the covered slice ``[first, last)`` of the sorted array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import sanitize as _sanitize

__all__ = ["Segment", "segment_stream", "segment_greedy_splits", "verify_epsilon"]


@dataclass(frozen=True)
class Segment:
    """One epsilon-bounded linear segment over a slice of sorted keys.

    The model is stored in *anchor form* — ``pos ~= slope * (k - key) +
    anchor_pos`` — which stays numerically stable even when ``slope`` is
    huge (tiny key gaps) and ``key`` is large, where the textbook
    ``slope * k + intercept`` form would overflow.

    Attributes:
        key: smallest key covered (the anchor of the model).
        slope: model slope in positions per key unit.
        anchor_pos: position predicted exactly at the anchor key.
        first: index of the first covered position (inclusive).
        last: index one past the last covered position (exclusive).
    """

    key: float
    slope: float
    anchor_pos: float
    first: int
    last: int

    def predict(self, key: float) -> float:
        """Predicted (float) position of ``key`` within the global array."""
        return self.slope * (key - self.key) + self.anchor_pos

    @property
    def intercept(self) -> float:
        """Equivalent global intercept (may overflow for extreme slopes)."""
        return self.anchor_pos - self.slope * self.key

    def __len__(self) -> int:
        return self.last - self.first

    @property
    def size_bytes(self) -> int:
        """Storage: key, slope, anchor position, and two 8-byte offsets."""
        return 40


def segment_stream(keys: np.ndarray, epsilon: float, positions: np.ndarray | None = None) -> list[Segment]:
    """Partition sorted ``keys`` into epsilon-bounded linear segments.

    Args:
        keys: sorted 1-d array of keys (duplicates allowed).
        epsilon: maximum absolute error of each segment's predictions, in
            positions.  Must be >= 0; ``epsilon = 0`` degenerates to one
            segment per distinct slope change and is permitted.
        positions: optional target positions; defaults to ``0..n-1``.

    Returns:
        A list of :class:`Segment` covering ``[0, n)`` without gaps.
        The epsilon bound is exact in real arithmetic; float rounding can
        exceed it by a few ulps, which is why every index built on these
        segments searches a window of ``epsilon + 1`` positions.

    The algorithm anchors each segment at its first point ``(k0, p0)`` and
    maintains the interval of slopes ``[lo, hi]`` for which the line
    through the anchor stays within ``epsilon`` of every point seen so
    far.  When a point empties the interval, the segment is emitted and a
    new one starts at that point.  Duplicate keys equal to the anchor are
    handled by checking their position error directly (slope is
    irrelevant for a zero key delta).
    """
    keys = np.asarray(keys, dtype=np.float64)
    if keys.ndim != 1:
        raise ValueError("keys must be one-dimensional")
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    n = keys.size
    if n == 0:
        return []
    default_positions = positions is None
    if positions is None:
        positions = np.arange(n, dtype=np.float64)
    else:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.shape != keys.shape:
            raise ValueError("positions must align with keys")

    segments: list[Segment] = []
    start = 0
    anchor_key = float(keys[0])
    anchor_pos = float(positions[0])
    slope_lo = -np.inf
    slope_hi = np.inf

    for i in range(1, n):
        key = float(keys[i])
        pos = float(positions[i])
        dk = key - anchor_key
        if dk <= 0.0:
            # Duplicate of the anchor key: any slope predicts anchor_pos
            # here, so the point fits iff |anchor_pos - pos| <= epsilon.
            if abs(anchor_pos - pos) <= epsilon:
                continue
            new_lo, new_hi = 1.0, -1.0  # force a break
        else:
            lo_candidate = (pos - epsilon - anchor_pos) / dk
            hi_candidate = (pos + epsilon - anchor_pos) / dk
            if not (np.isfinite(lo_candidate) and np.isfinite(hi_candidate)):
                # Denormal-width gap overflows the slope: force a break so
                # no segment carries a non-finite model.
                lo_candidate, hi_candidate = 1.0, -1.0
            new_lo = max(slope_lo, lo_candidate)
            new_hi = min(slope_hi, hi_candidate)
        if new_lo > new_hi:
            slope = _pick_slope(slope_lo, slope_hi)
            segments.append(Segment(
                key=anchor_key, slope=slope, anchor_pos=anchor_pos,
                first=start, last=i,
            ))
            start = i
            anchor_key = key
            anchor_pos = pos
            slope_lo = -np.inf
            slope_hi = np.inf
        else:
            slope_lo, slope_hi = new_lo, new_hi

    slope = _pick_slope(slope_lo, slope_hi)
    segments.append(Segment(
        key=anchor_key, slope=slope, anchor_pos=anchor_pos,
        first=start, last=n,
    ))
    if default_positions and _sanitize.enabled():
        # Dynamic cross-check of the construction guarantee: every index
        # built on these segments searches a window of epsilon + 1
        # positions, so that is the bound the sanitizer holds us to.
        worst = verify_epsilon(keys, segments, epsilon)
        _sanitize.check(
            worst <= epsilon + 1.0,
            f"segment_stream: epsilon bound violated (worst error {worst} "
            f"> epsilon + 1 = {epsilon + 1.0})",
        )
    return segments


def _pick_slope(lo: float, hi: float) -> float:
    """Pick a representative slope from the feasible interval."""
    if not np.isfinite(lo) and not np.isfinite(hi):
        return 0.0
    if not np.isfinite(lo):
        return hi
    if not np.isfinite(hi):
        return lo
    return (lo + hi) / 2.0


def segment_greedy_splits(keys: np.ndarray, segment_size: int) -> list[Segment]:
    """Baseline: fixed-size segments with endpoint-fit lines (no guarantee).

    Useful as a correctness oracle in tests and as the untuned ablation in
    the epsilon-trade-off benchmark.
    """
    keys = np.asarray(keys, dtype=np.float64)
    if segment_size <= 0:
        raise ValueError("segment_size must be positive")
    n = keys.size
    segments = []
    for start in range(0, n, segment_size):
        end = min(start + segment_size, n)
        k0, k1 = float(keys[start]), float(keys[end - 1])
        if end - start == 1 or k1 == k0:
            slope = 0.0
        else:
            slope = (end - 1 - start) / (k1 - k0)
        segments.append(Segment(key=k0, slope=slope, anchor_pos=float(start),
                                first=start, last=end))
    return segments


def verify_epsilon(keys: np.ndarray, segments: list[Segment], epsilon: float) -> float:
    """Return the max absolute error of ``segments`` over ``keys``.

    Raises:
        AssertionError: if segments do not tile ``[0, n)`` exactly.
    """
    keys = np.asarray(keys, dtype=np.float64)
    n = keys.size
    covered = 0
    worst = 0.0
    for seg in segments:
        assert seg.first == covered, "segments must tile the array"
        covered = seg.last
        if seg.last > seg.first:
            xs = keys[seg.first:seg.last]
            preds = seg.slope * (xs - seg.key) + seg.anchor_pos
            errs = np.abs(preds - np.arange(seg.first, seg.last))
            worst = max(worst, float(errs.max()))
    assert covered == n, "segments must cover all keys"
    return worst
