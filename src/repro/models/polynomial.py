"""Least-squares polynomial models (PolyFit-style).

PolyFit indexes range-aggregate queries with low-degree polynomial
approximations of the cumulative function.  We fit with a numerically
stable normalised Vandermonde least-squares solve and track the maximum
absolute training error so callers can bound their correction search.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PolynomialModel"]


@dataclass
class PolynomialModel:
    """Polynomial ``y = sum_i coeffs[i] * x_norm**i`` with x normalised.

    Normalising x to [-1, 1] over the training range keeps high-degree
    fits stable; the normalisation constants are stored with the model.
    """

    coeffs: np.ndarray = field(default_factory=lambda: np.zeros(1))
    x_center: float = 0.0
    x_half_range: float = 1.0
    max_error: float = 0.0

    @classmethod
    def fit(cls, xs: np.ndarray, ys: np.ndarray, degree: int = 2) -> "PolynomialModel":
        """Least-squares polynomial fit of the given degree."""
        if degree < 0:
            raise ValueError("degree must be non-negative")
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.size == 0:
            return cls()
        center = float((xs.max() + xs.min()) / 2.0)
        half = float((xs.max() - xs.min()) / 2.0) or 1.0
        xn = (xs - center) / half
        degree = min(degree, max(xs.size - 1, 0))
        vander = np.vander(xn, degree + 1, increasing=True)
        coeffs, *_ = np.linalg.lstsq(vander, ys, rcond=None)
        model = cls(coeffs=coeffs, x_center=center, x_half_range=half)
        model.max_error = float(np.max(np.abs(model.predict_array(xs) - ys)))
        return model

    def predict(self, x: float) -> float:
        """Evaluate the polynomial at ``x`` (Horner's rule)."""
        xn = (x - self.x_center) / self.x_half_range
        result = 0.0
        for coeff in self.coeffs[::-1]:
            result = result * xn + float(coeff)
        return result

    def predict_array(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised evaluation."""
        xn = (np.asarray(xs, dtype=np.float64) - self.x_center) / self.x_half_range
        result = np.zeros_like(xn)
        for coeff in self.coeffs[::-1]:
            result = result * xn + float(coeff)
        return result

    @property
    def degree(self) -> int:
        return int(self.coeffs.size - 1)

    @property
    def size_bytes(self) -> int:
        return 8 * int(self.coeffs.size) + 16
