"""Histogram models (the Hist-Tree substrate).

Hist-Tree observed that hierarchies of simple histograms can replace
trained models entirely.  Two classic variants are provided:

* :class:`EquiWidthHistogram` — fixed-width bins with cumulative counts;
  maps a key to the range of positions its bin covers in O(1).
* :class:`EquiDepthHistogram` — bins holding (approximately) equal numbers
  of keys; bin boundaries are data quantiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["EquiWidthHistogram", "EquiDepthHistogram"]


@dataclass
class EquiWidthHistogram:
    """Fixed-width bins over [lo, hi] with cumulative counts."""

    lo: float = 0.0
    hi: float = 1.0
    cumulative: np.ndarray = field(default_factory=lambda: np.zeros(1, dtype=np.int64))

    @classmethod
    def fit(cls, keys: np.ndarray, bins: int = 64) -> "EquiWidthHistogram":
        """Build over sorted or unsorted ``keys`` with ``bins`` buckets."""
        if bins < 1:
            raise ValueError("bins must be >= 1")
        arr = np.asarray(keys, dtype=np.float64)
        if arr.size == 0:
            return cls(lo=0.0, hi=1.0, cumulative=np.zeros(bins + 1, dtype=np.int64))
        lo = float(arr.min())
        hi = float(arr.max())
        if hi == lo:
            hi = lo + 1.0
        counts, _ = np.histogram(arr, bins=bins, range=(lo, hi))
        cumulative = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        return cls(lo=lo, hi=hi, cumulative=cumulative)

    @property
    def bins(self) -> int:
        return int(self.cumulative.size - 1)

    def bin_of(self, key: float) -> int:
        """Bucket id of ``key``, clamped to the histogram range."""
        width = (self.hi - self.lo) / self.bins
        idx = int((key - self.lo) / width)
        return min(max(idx, 0), self.bins - 1)

    def position_range(self, key: float) -> tuple[int, int]:
        """Half-open position range ``[first, last)`` of the key's bucket.

        Positions index the *sorted* key array the histogram was built on.
        """
        b = self.bin_of(key)
        return int(self.cumulative[b]), int(self.cumulative[b + 1])

    @property
    def size_bytes(self) -> int:
        return 8 * int(self.cumulative.size) + 16


@dataclass
class EquiDepthHistogram:
    """Quantile bins: every bucket holds ~n/bins keys."""

    boundaries: np.ndarray = field(default_factory=lambda: np.zeros(2))
    depth: int = 0
    total: int = 0

    @classmethod
    def fit(cls, keys: np.ndarray, bins: int = 64) -> "EquiDepthHistogram":
        if bins < 1:
            raise ValueError("bins must be >= 1")
        arr = np.sort(np.asarray(keys, dtype=np.float64))
        if arr.size == 0:
            return cls(boundaries=np.array([0.0, 1.0]), depth=0, total=0)
        probs = np.linspace(0.0, 1.0, bins + 1)
        boundaries = np.quantile(arr, probs)
        depth = int(np.ceil(arr.size / bins))
        return cls(boundaries=boundaries, depth=depth, total=int(arr.size))

    @property
    def bins(self) -> int:
        return int(self.boundaries.size - 1)

    def bin_of(self, key: float) -> int:
        """Bucket id of ``key`` (clamped)."""
        idx = int(np.searchsorted(self.boundaries, key, side="right")) - 1
        return min(max(idx, 0), self.bins - 1)

    def position_range(self, key: float) -> tuple[int, int]:
        """Approximate half-open position range of the key's bucket."""
        b = self.bin_of(key)
        first = min(b * self.depth, self.total)
        last = min((b + 1) * self.depth, self.total)
        return first, max(last, first)

    @property
    def size_bytes(self) -> int:
        return 8 * int(self.boundaries.size) + 16
