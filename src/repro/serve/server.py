"""`IndexServer`: sharding + coalescing + caching behind one facade.

The server wires the pieces of the serving layer together:

* a :class:`~repro.serve.sharding.ShardedStore` partitions the data and
  owns the per-shard locks and write generations,
* a :class:`~repro.serve.coalescer.Coalescer` queues concurrent scalar
  requests and drains them through the batch kernels,
* a :class:`~repro.serve.cache.ResultCache` answers repeated reads
  without touching a queue, keyed on (request, involved shards, shard
  generations) so any write to an involved shard invalidates the entry,
* a :class:`~repro.serve.stats.ServerStats` collects counters and
  latency histograms for the E19 artifact.

Clients either ``submit()`` requests asynchronously (futures resolving
to :class:`Response` / :class:`Overloaded`) or use the synchronous
convenience methods (``lookup``/``point_query``/...), which mirror the
index interfaces exactly — same arguments, same return values — so a
server can stand in for a bare index in parity tests.
"""

from __future__ import annotations

from concurrent.futures import Future
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.serve.cache import ResultCache
from repro.serve.coalescer import Coalescer
from repro.serve.mp import ProcessShardExecutor
from repro.serve.requests import READ_OPS, Op, Overloaded, Request, Response
from repro.serve.sharding import ShardedStore
from repro.serve.stats import ServerStats

__all__ = ["IndexServer"]

_MISS = object()


class IndexServer:
    """A sharded, coalescing, caching front-end over learned indexes.

    Args:
        factory: zero-argument index constructor handed to the store.
        num_shards: partition count (one worker thread per shard).
        max_batch: coalescing window size; ``1`` serves one-at-a-time.
        max_delay: coalescing window fill timeout in seconds.
        capacity: per-shard admission-control queue bound.
        cache_size: result-cache entries; ``0`` disables caching.
        cache_ttl: optional result-cache TTL in seconds.
        backend: ``"thread"`` (default) executes fused windows on the
            coalescer's dispatch threads; ``"process"`` ships them to
            one worker process per shard over shared-memory snapshots
            (:class:`~repro.serve.mp.ProcessShardExecutor`), escaping
            the GIL for the kernel work.  Writes always execute in this
            process either way.
    """

    def __init__(self, factory: Callable[[], object], num_shards: int = 4,
                 max_batch: int = 256, max_delay: float = 0.001,
                 capacity: int = 4096, cache_size: int = 0,
                 cache_ttl: float | None = None,
                 backend: str = "thread") -> None:
        if backend not in ("thread", "process"):
            raise ValueError(f"backend must be 'thread' or 'process', got {backend!r}")
        self.backend = backend
        self._store = ShardedStore(factory, num_shards=num_shards)
        self._stats = ServerStats(num_shards)
        self._cache = ResultCache(capacity=cache_size, ttl=cache_ttl)
        self._executor: ProcessShardExecutor | None = None
        self._coalescer = Coalescer(
            self._store, self._stats,
            max_batch=max_batch, max_delay=max_delay, capacity=capacity,
        )
        # Workload observer hook (repro.tune): called once per submitted
        # request on the client thread, with no server lock held.  None
        # (the default) keeps the serving hot path completely untouched.
        self._observer: Callable[[Request], None] | None = None
        self._observer_many: Callable[[Sequence[Request]], None] | None = None
        # Attached control plane (duck-typed: anything with close()).
        self._tuner: object | None = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    def build(self, data: np.ndarray, values: Sequence[object] | None = None) -> "IndexServer":
        """Build the sharded store and start the shard workers.

        Per-shard index builds run inside :meth:`ShardedStore.build`,
        which acquires each shard's lock around the underlying
        ``build`` call.
        """
        self._store.build(data, values)
        self._cache.clear()
        self._start_serving()
        return self

    def close(self) -> None:
        """Drain outstanding requests, stop shard workers, release segments.

        Idempotent end to end: an attached tuner stops first (no more
        actuations land on a draining store), then the coalescer closes
        (workers drain their queues and any leftovers are served
        synchronously — see :meth:`Coalescer.close`), and only then does
        the process executor shut down, so every queued request still
        had a live backend when it executed.
        """
        if not self._closed:
            tuner = self._tuner
            if tuner is not None:
                tuner.close()  # type: ignore[attr-defined]
            self._coalescer.close()
            if self._executor is not None:
                self._executor.close()
            self._closed = True

    # -- control-plane hooks (repro.tune) -----------------------------------
    def attach_observer(self, observer: Callable[[Request], None] | None,
                        tuner: object | None = None) -> None:
        """Install (or clear) the per-request workload observer hook.

        ``observer`` is invoked on the submitting client thread for
        every admitted request, before routing; it must be cheap and
        thread-safe (the tuner's observer appends to bounded
        lock-protected rings).  When the observer also exposes an
        ``observe_many(requests)`` method, the windowed submission paths
        use it — one observer-lock acquisition per window instead of per
        request, which matters with many client threads.  ``tuner``,
        when given, is retained so :meth:`close` can stop the attached
        control plane (duck-typed: any object with a ``close()``
        method).
        """
        self._observer = observer
        self._observer_many: Callable[[Sequence[Request]], None] | None = (
            getattr(observer, "observe_many", None)
        )
        self._tuner = tuner

    def _observe_many(self, requests: Sequence[Request]) -> None:
        """Feed a window of requests to the attached observer, if any."""
        observe_many = self._observer_many
        if observe_many is not None:
            observe_many(requests)
            return
        observer = self._observer
        if observer is not None:
            for request in requests:
                observer(request)

    def _start_serving(self) -> None:
        """Start the executor (process backend) and the coalescer threads."""
        if self.backend == "process":
            # Spawn workers before the coalescer threads exist so they
            # fork from a single-threaded parent.
            self._executor = ProcessShardExecutor(self._store, self._stats)
            self._executor.start()
            self._coalescer.executor = self._executor
        self._coalescer.start()

    # -- snapshot persistence (cold-start restore) -------------------------
    def save_snapshot(self, directory: str | Path) -> Path:
        """Persist every shard's built state + bounds + generations.

        Delegates to :meth:`ShardedStore.save_snapshot`: one index
        artifact directory per shard (each exported under its shard
        lock) plus ``store.json`` with the partitioner metadata and the
        generation each artifact reflects.  The server keeps serving
        while the snapshot is written; a shard that takes a write
        mid-snapshot is simply recorded at its pre-write generation.
        """
        return self._store.save_snapshot(directory)

    @classmethod
    def from_snapshot(cls, directory: str | Path,
                      factory: Callable[[], object] | None = None,
                      mmap_mode: str | None = "r",
                      max_batch: int = 256, max_delay: float = 0.001,
                      capacity: int = 4096, cache_size: int = 0,
                      cache_ttl: float | None = None,
                      backend: str = "thread") -> "IndexServer":
        """Restore a serving-ready server from :meth:`save_snapshot` output.

        Cold start without rebuilding: every shard is reconstructed from
        its artifact files (read-only memmap views under the default
        ``mmap_mode="r"``) and **no index ``build()`` runs**.  Restored
        generation counters resume where the snapshot left them, so
        result-cache keys stay on the same generation sequence across
        the restart.  ``factory`` is only needed if the store will ever
        be rebuilt in place; serving needs none.
        """
        store = ShardedStore.from_snapshot(
            directory, factory=factory, mmap_mode=mmap_mode
        )
        server = cls(
            store._factory, num_shards=store.num_shards,
            max_batch=max_batch, max_delay=max_delay, capacity=capacity,
            cache_size=cache_size, cache_ttl=cache_ttl, backend=backend,
        )
        server._store = store
        server._coalescer = Coalescer(
            store, server._stats,
            max_batch=max_batch, max_delay=max_delay, capacity=capacity,
        )
        server._start_serving()
        return server

    def __enter__(self) -> "IndexServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- asynchronous surface ---------------------------------------------
    def submit(self, request: Request) -> Future:
        """Route one request; returns a future resolving to a Response.

        Reads first consult the result cache under a key that includes
        every involved shard's current write generation — a hit skips
        the queue entirely; a miss enqueues with a completion callback
        that fills the cache (keyed on the generations observed *before*
        execution, so a concurrent write either bumps the generation
        first, making the filled entry unreachable, or commits after,
        making the cached value stale-free).
        """
        observer = self._observer
        if observer is not None:
            observer(request)
        if request.op in READ_OPS and self._cache.capacity > 0:
            shards = self._store.route(request)
            gens = tuple(self._store.generations[s] for s in shards)
            key = (request.cache_args(), shards, gens)
            hit = self._cache.get(key, _MISS)
            if hit is not _MISS:
                self._stats.record_cache(True)
                self._stats.record_done(0.0)
                fut: Future = Future()
                fut.set_result(Response(value=hit))
                return fut
            self._stats.record_cache(False)
            return self._coalescer.submit(
                request, callback=lambda value: self._cache.put(key, value)
            )
        return self._coalescer.submit(request)

    def submit_many(self, requests: Sequence[Request]) -> list[Future]:
        """Submit a pipelined window of requests, routing it in bulk.

        With the result cache disabled this goes through the coalescer's
        vectorized admission path (one routing pass, one lock take per
        shard); with caching enabled it degrades to per-request
        :meth:`submit` so every read still consults the cache.
        """
        if self._cache.capacity > 0:
            return [self.submit(request) for request in requests]
        self._observe_many(requests)
        return self._coalescer.submit_many(list(requests))

    def serve_window(self, requests: Sequence[Request]) -> list[object]:
        """Submit a window and block for its raw results (fastest path).

        Returns result values in submission order; shed requests appear
        as :class:`Overloaded` instances.  With the result cache enabled
        this degrades to the future-based path so reads stay cached.
        This is the coalesced-arm path of the closed-loop driver behind
        E19.
        """
        if self._cache.capacity > 0:
            out: list[object] = []
            for fut in [self.submit(request) for request in requests]:
                response = fut.result()
                out.append(response if isinstance(response, Overloaded) else response.value)
            return out
        self._observe_many(requests)
        return self._coalescer.submit_window(list(requests)).wait()

    # -- synchronous convenience surface -----------------------------------
    def _call(self, request: Request) -> object:
        response = self.submit(request).result()
        if isinstance(response, Overloaded):
            raise RuntimeError(
                f"server overloaded (queue depth {response.depth}); "
                "synchronous calls do not retry"
            )
        return response.value

    def lookup(self, key: float) -> object | None:
        """Scalar-parity 1-d lookup through the serving path."""
        return self._call(Request(op=Op.LOOKUP, key=float(key)))

    def contains(self, key: float) -> bool:
        """Scalar-parity 1-d membership test through the serving path."""
        return bool(self._call(Request(op=Op.CONTAINS, key=float(key))))

    def range_query_1d(self, low: float, high: float) -> list[tuple[float, object]]:
        """Scalar-parity 1-d range scan through the serving path."""
        return self._call(  # type: ignore[return-value]
            Request(op=Op.RANGE_1D, low=float(low), high=float(high))
        )

    def point_query(self, point: Sequence[float]) -> object | None:
        """Scalar-parity multi-d exact-point query through the serving path."""
        return self._call(Request(op=Op.POINT_QUERY, point=tuple(float(x) for x in point)))

    def range_query(self, low: Sequence[float], high: Sequence[float]) -> list:
        """Scalar-parity multi-d box query through the serving path."""
        return self._call(  # type: ignore[return-value]
            Request(op=Op.RANGE_QUERY,
                    low=tuple(float(x) for x in low),
                    high=tuple(float(x) for x in high))
        )

    def knn_query(self, point: Sequence[float], k: int) -> list:
        """Scalar-parity multi-d k-nearest-neighbour query."""
        return self._call(  # type: ignore[return-value]
            Request(op=Op.KNN, point=tuple(float(x) for x in point), k=int(k))
        )

    def insert(self, key_or_point: object, value: object = None) -> None:
        """Routed insert; the store bumps the shard generation under its lock,
        which invalidates every cached read involving that shard."""
        if self._store.multi_dim:
            req = Request(op=Op.INSERT,
                          point=tuple(float(x) for x in key_or_point),  # type: ignore[union-attr]
                          value=value)
        else:
            req = Request(op=Op.INSERT, key=float(key_or_point), value=value)  # type: ignore[arg-type]
        self._call(req)

    def delete(self, key_or_point: object) -> bool:
        """Routed delete; generation bump happens under the shard lock in
        the store, keeping cached reads for that shard unreachable."""
        if self._store.multi_dim:
            req = Request(op=Op.DELETE,
                          point=tuple(float(x) for x in key_or_point))  # type: ignore[union-attr]
        else:
            req = Request(op=Op.DELETE, key=float(key_or_point))  # type: ignore[arg-type]
        return bool(self._call(req))

    # -- introspection -----------------------------------------------------
    @property
    def store(self) -> ShardedStore:
        return self._store

    @property
    def multi_dim(self) -> bool:
        return self._store.multi_dim

    @property
    def server_stats(self) -> ServerStats:
        """The live counter recorder (the ``repro.tune`` signal source)."""
        return self._stats

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict[str, object]:
        """Combined serving + index + cache counter snapshot.

        With the process backend, worker-side query-cost deltas (drained
        over the worker pipes) merge into the index counters via
        :meth:`IndexStats.merge`, so the snapshot reflects work done in
        every process, not just this one.
        """
        index_stats = self._store.stats()
        if self._executor is not None and not self._closed:
            index_stats = index_stats.merge(self._executor.index_stats())
        out = self._stats.snapshot(index_stats=index_stats)
        out["cache"] = self._cache.snapshot()
        out["shard_sizes"] = self._store.shard_sizes()
        out["queue_depths"] = self._coalescer.queue_depths()
        out["backend"] = self.backend
        return out
