"""Typed request/response surface of the serving layer.

Every operation a client can ask of :class:`repro.serve.server.IndexServer`
is a :class:`Request`; every answer is a :class:`Response`.  Overload is a
*response*, not an exception: when admission control sheds a request the
client receives an :class:`Overloaded` instance carrying the queue depth
at shed time, so closed-loop drivers can count sheds and back off instead
of unwinding through exception handlers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "Op",
    "Request",
    "Response",
    "Overloaded",
    "WorkerError",
    "COALESCABLE_OPS",
    "READ_OPS",
    "WRITE_OPS",
]


class Op(enum.Enum):
    """The operations the serving layer understands.

    ``LOOKUP``/``CONTAINS``/``RANGE_1D`` target one-dimensional stores;
    ``POINT_QUERY``/``RANGE_QUERY``/``KNN`` target multi-dimensional
    ones; ``INSERT``/``DELETE`` require a mutable underlying index.
    """

    LOOKUP = "lookup"
    CONTAINS = "contains"
    RANGE_1D = "range_1d"
    POINT_QUERY = "point_query"
    RANGE_QUERY = "range_query"
    KNN = "knn"
    INSERT = "insert"
    DELETE = "delete"


#: Scalar point-shaped reads the coalescer may batch into ``*_batch`` kernels.
COALESCABLE_OPS = frozenset({Op.LOOKUP, Op.CONTAINS, Op.POINT_QUERY})

#: Operations that never mutate the store (cacheable).
READ_OPS = frozenset(
    {Op.LOOKUP, Op.CONTAINS, Op.RANGE_1D, Op.POINT_QUERY, Op.RANGE_QUERY, Op.KNN}
)

#: Operations that mutate the store (bump shard generations).
WRITE_OPS = frozenset({Op.INSERT, Op.DELETE})


@dataclass(frozen=True)
class Request:
    """One serving-layer operation.

    Exactly the fields relevant to ``op`` are set: ``key`` for 1-d ops,
    ``point`` for multi-d ops, ``low``/``high`` for ranges (floats in
    1-d, coordinate tuples in multi-d), ``k`` for kNN, ``value`` for
    inserts.  Requests are frozen so workload generators can share them
    across client threads.
    """

    op: Op
    key: float | None = None
    point: tuple[float, ...] | None = None
    low: object = None
    high: object = None
    k: int = 0
    value: object = None

    def cache_args(self) -> tuple[object, ...]:
        """Hashable argument tuple identifying this read for the cache."""
        return (self.op.value, self.key, self.point, _freeze(self.low),
                _freeze(self.high), self.k)


def _freeze(bound: object) -> object:
    """Make range bounds hashable (tuples stay, array-likes become tuples)."""
    if bound is None or isinstance(bound, (int, float, tuple)):
        return bound
    return tuple(float(x) for x in bound)  # type: ignore[union-attr]


@dataclass(frozen=True)
class Response:
    """A completed request: ``value`` holds the scalar-parity result."""

    value: object = None

    @property
    def ok(self) -> bool:
        return True


@dataclass(frozen=True)
class Overloaded(Response):
    """Load was shed: the request never entered a shard queue.

    ``depth`` records the shard queue depth observed at shed time so
    clients and the E19 driver can report how deep the backlog was.
    """

    depth: int = 0

    @property
    def ok(self) -> bool:
        return False


@dataclass(frozen=True)
class WorkerError(Response):
    """A shard worker process failed while holding this request.

    Mirrors :class:`Overloaded`: a worker crash (killed mid-window,
    pipe broken, reply timeout) surfaces as a typed *response* on every
    in-flight request of the affected window — never a hung client and
    never a bare ``BrokenPipeError`` — while the executor restarts the
    worker behind the scenes.  ``shard`` names the shard whose worker
    died; ``reason`` is a short operator-facing description.
    """

    shard: int = -1
    reason: str = "worker process failed"

    @property
    def ok(self) -> bool:
        return False
