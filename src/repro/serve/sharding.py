"""Sharded index store: range / space-filling-curve-prefix partitioning.

``ShardedStore`` partitions one logical key or point set across ``N``
independent index instances built by a user-supplied factory:

* **1-d stores** split the sorted key range at quantile boundaries, so a
  point lookup routes to exactly one shard via one ``searchsorted`` and
  a range query fans out to the contiguous run of shards overlapping
  ``[low, high]``.
* **multi-d stores** split the *Morton-code* order of the points at
  quantile boundaries (an SFC-prefix partition).  Point queries route by
  encoding the query point; range queries fan out only to shards whose
  code interval intersects ``[zencode(low), zencode(high)]`` — the
  classic UB-tree Z-interval bound (every point inside an axis-aligned
  box has a Morton code between the codes of the box corners).

Default values replicate the whole-index contract *globally*: a 1-d key
gets its rank in the global sorted order and a multi-d point gets its
row position in the build array, so sharded answers are exactly what one
unsharded index would return.

Thread safety: one ``RLock`` per shard.  Mutating calls (``build`` /
``insert`` / ``delete``) and every query that touches shard state
acquire the owning shard's lock; fan-out queries acquire the involved
shard locks one at a time (never nested), so workers draining different
shards cannot deadlock.  Writes bump the shard's generation counter
under the same lock, which is what the result cache keys invalidation
on.

Re-partitioning (the ``repro.tune`` actuator surface): ``rebalance``
swaps the shard boundaries while holding *every* shard lock in
increasing rank order, bumping *all* generations atomically, so no
cached result and no in-flight routed request can straddle two
partitions.  Because routing reads the bounds without a lock, every
query path re-validates its routing decision after taking the shard
lock — either by re-routing the key or by checking that
``bounds_version`` has not moved — and restarts when a rebalance won
the race.
"""

from __future__ import annotations

import json
from contextlib import ExitStack
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.core.artifact import (
    ArtifactError,
    environment_snapshot,
    load_index_artifact,
    write_artifact,
)
from repro.core.interfaces import IndexStats, MultiDimIndex, OneDimIndex
from repro.core.lockorder import make_rlock
from repro.core.state import IndexState
from repro.curves.capacity import require_code_budget
from repro.curves.zorder import zencode_array
from repro.serve.requests import Op, Request

__all__ = ["ShardedStore", "STORE_SNAPSHOT_FORMAT", "STORE_SNAPSHOT_VERSION"]

#: Discriminator + version of the store-level ``store.json`` snapshot
#: metadata (per-shard data lives in ordinary index artifacts).
STORE_SNAPSHOT_FORMAT = "repro-store-snapshot"
STORE_SNAPSHOT_VERSION = 1

_STORE_META = "store.json"

#: Single-key ops routed by one vectorized ``searchsorted`` in 1-d stores.
_KEYED_OPS = frozenset({Op.LOOKUP, Op.CONTAINS, Op.INSERT, Op.DELETE})

#: Single-point ops routed by one vectorized encode in multi-d stores.
_POINT_OPS = frozenset({Op.POINT_QUERY, Op.INSERT, Op.DELETE})


class ShardedStore:
    """``N`` index instances behind one uniform routed query surface.

    Args:
        factory: zero-argument constructor returning a fresh
            :class:`OneDimIndex` or :class:`MultiDimIndex`; the store
            infers which family it serves from the first instance.
        num_shards: number of partitions (>= 1).
        bits: per-dimension Morton quantisation bits for multi-d
            routing; ``None`` picks the finest lattice inside the 62-bit
            code budget (capped at 16 bits/dim).
    """

    def __init__(self, factory: Callable[[], object], num_shards: int = 4,
                 bits: int | None = None) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self._factory = factory
        self._bits = bits
        self.shards: list[object] = []
        self.generations = [0] * num_shards
        self._locks = [make_rlock("ShardedStore._locks", rank=s)
                       for s in range(num_shards)]
        self._bounds = np.empty(0)          # shard split keys / codes
        self._bounds_version = 0            # bumped by every rebalance
        self.multi_dim = False
        self.dims = 0
        self._lo = np.empty(0)
        self._hi = np.empty(0)
        self._built = False
        # Artifact provenance per shard: set by save_snapshot/from_snapshot
        # so the process backend can pack segments straight from the files
        # while the shard is still byte-identical to them (generation match).
        self._artifact_dirs: list[Path | None] = [None] * num_shards
        self._artifact_gens: list[int] = [-1] * num_shards

    # -- construction ------------------------------------------------------
    def build(self, data: np.ndarray, values: Sequence[object] | None = None) -> "ShardedStore":
        """Partition ``data`` and build one index per shard.

        Each per-shard ``build`` happens under that shard's lock; the
        partition masks preserve the original input order inside every
        shard, so stable per-shard sorting reproduces the duplicate-key
        ordering of a single unsharded build.
        """
        probe = self._factory()
        if isinstance(probe, MultiDimIndex):
            self.multi_dim = True
        elif not isinstance(probe, OneDimIndex):
            raise TypeError(
                f"factory must produce a OneDimIndex or MultiDimIndex, "
                f"got {type(probe).__name__}"
            )
        if self.multi_dim:
            pts = np.asarray(data, dtype=np.float64)
            if pts.ndim != 2:
                raise ValueError("multi-d data must have shape (n, d)")
            n, self.dims = pts.shape
            if n and n < self.num_shards:
                raise ValueError("need at least one point per shard")
            self._lo = pts.min(axis=0) if n else np.zeros(self.dims)
            self._hi = pts.max(axis=0) if n else np.ones(self.dims)
            if self._bits is None:
                self._bits = min(16, 62 // max(self.dims, 1))
            require_code_budget(self.dims, self._bits)
            route_keys = self._encode(pts) if n else np.empty(0, dtype=np.int64)
            if values is None:
                values = list(range(n))
        else:
            arr = np.asarray(data, dtype=np.float64)
            if arr.ndim != 1:
                raise ValueError("1-d data must be a flat key array")
            n = arr.size
            if n and n < self.num_shards:
                raise ValueError("need at least one key per shard")
            route_keys = arr
            if values is None:
                # Global ranks in sorted order (the OneDimIndex default),
                # aligned back to input positions.
                order = np.argsort(arr, kind="mergesort")
                ranks = np.empty(n, dtype=np.int64)
                ranks[order] = np.arange(n)
                values = [int(r) for r in ranks]
        if len(values) != n:
            raise ValueError("values must align with data")

        self._bounds = self._split_bounds(route_keys)
        sids = (
            np.searchsorted(self._bounds, route_keys, side="right")
            if n else np.empty(0, dtype=np.int64)
        )
        self.shards = []
        self._artifact_dirs = [None] * self.num_shards
        self._artifact_gens = [-1] * self.num_shards
        for s in range(self.num_shards):
            rows = np.flatnonzero(sids == s)
            part = data[rows] if n else (
                np.empty((0, self.dims)) if self.multi_dim else np.empty(0)
            )
            part_values = [values[int(i)] for i in rows]
            shard = self._factory()
            with self._locks[s]:
                shard.build(part, part_values)  # type: ignore[attr-defined]
            self.shards.append(shard)
        self._built = True
        return self

    def _split_bounds(self, route_keys: np.ndarray) -> np.ndarray:
        """Quantile split values: shard ``s`` owns keys in (b[s-1], b[s]]."""
        if self.num_shards == 1 or route_keys.size == 0:
            return route_keys[:0]
        ordered = np.sort(route_keys, kind="mergesort")
        cuts = [
            ordered[(s * ordered.size) // self.num_shards]
            for s in range(1, self.num_shards)
        ]
        return np.asarray(cuts)

    def _encode(self, pts: np.ndarray) -> np.ndarray:
        """Morton codes of ``pts`` on the build-time lattice."""
        assert self._bits is not None
        return zencode_array(pts, self._lo, self._hi, self._bits)

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("ShardedStore: call build() before serving")

    # -- routing -----------------------------------------------------------
    def route_key(self, key: float) -> int:
        """Shard id owning a 1-d key."""
        return int(np.searchsorted(self._bounds, key, side="right"))

    def route_point(self, point: Sequence[float]) -> int:
        """Shard id owning a multi-d point (by Morton code)."""
        pts = np.asarray(point, dtype=np.float64).reshape(1, -1)
        code = self._encode(pts)[0]
        return int(np.searchsorted(self._bounds, code, side="right"))

    def route(self, request: Request) -> tuple[int, ...]:
        """All shard ids a request touches (first one hosts its queue slot)."""
        self._require_built()
        op = request.op
        if op in (Op.LOOKUP, Op.CONTAINS):
            return (self.route_key(float(request.key)),)  # type: ignore[arg-type]
        if op is Op.POINT_QUERY:
            return (self.route_point(request.point),)  # type: ignore[arg-type]
        if op is Op.RANGE_1D:
            lo_s = self.route_key(float(request.low))  # type: ignore[arg-type]
            hi_s = self.route_key(float(request.high))  # type: ignore[arg-type]
            return tuple(range(lo_s, hi_s + 1))
        if op is Op.RANGE_QUERY:
            return self._range_shards(request.low, request.high)
        if op is Op.KNN:
            return tuple(range(self.num_shards))
        if op in (Op.INSERT, Op.DELETE):
            if self.multi_dim:
                return (self.route_point(request.point),)  # type: ignore[arg-type]
            return (self.route_key(float(request.key)),)  # type: ignore[arg-type]
        raise ValueError(f"unroutable op {op!r}")

    def route_home_batch(self, requests: Sequence[Request]) -> list[int]:
        """Home (queue-owning) shard for each request, routed in bulk.

        Point-shaped operations — the overwhelming share of serving
        traffic — are routed with one vectorized ``searchsorted`` (and,
        in multi-d, one ``zencode_array``) over the whole window instead
        of a numpy call per request; fan-out operations fall back to
        :meth:`route` individually.
        """
        self._require_built()
        out = [0] * len(requests)
        key_rows: list[int] = []
        keys: list[float] = []
        pt_rows: list[int] = []
        pts: list[tuple[float, ...]] = []
        for i, request in enumerate(requests):
            op = request.op
            if not self.multi_dim and op in _KEYED_OPS:
                key_rows.append(i)
                keys.append(float(request.key))  # type: ignore[arg-type]
            elif self.multi_dim and op in _POINT_OPS:
                pt_rows.append(i)
                pts.append(request.point)  # type: ignore[arg-type]
            else:
                shards = self.route(request)
                out[i] = shards[0] if shards else 0
        if key_rows:
            sids = np.searchsorted(
                self._bounds, np.asarray(keys, dtype=np.float64), side="right")
            for i, s in zip(key_rows, sids):
                out[i] = int(s)
        if pt_rows:
            codes = self._encode(np.asarray(pts, dtype=np.float64))
            sids = np.searchsorted(self._bounds, codes, side="right")
            for i, s in zip(pt_rows, sids):
                out[i] = int(s)
        return out

    def _range_shards(self, low: object, high: object) -> tuple[int, ...]:
        """Shards whose code interval intersects the box's Z-interval."""
        lo = np.asarray(low, dtype=np.float64).reshape(1, -1)
        hi = np.asarray(high, dtype=np.float64).reshape(1, -1)
        if np.any(hi < lo):
            return ()
        cmin = self._encode(lo)[0]
        cmax = self._encode(hi)[0]
        lo_s = int(np.searchsorted(self._bounds, cmin, side="right"))
        hi_s = int(np.searchsorted(self._bounds, cmax, side="right"))
        return tuple(range(lo_s, hi_s + 1))

    # -- scalar queries ----------------------------------------------------
    def lookup(self, key: float) -> object | None:
        """Routed lookup; re-routes under the shard lock when a concurrent
        rebalance moved the key between routing and locking."""
        self._require_built()
        while True:
            s = self.route_key(key)
            with self._locks[s]:
                if self.route_key(key) == s:
                    return self.shards[s].lookup(key)  # type: ignore[attr-defined]

    def contains(self, key: float) -> bool:
        """Routed membership test; re-routes under the shard lock when a
        concurrent rebalance moved the key."""
        self._require_built()
        while True:
            s = self.route_key(key)
            with self._locks[s]:
                if self.route_key(key) == s:
                    return bool(self.shards[s].contains(key))  # type: ignore[attr-defined]

    def point_query(self, point: Sequence[float]) -> object | None:
        """Routed exact-point query; re-routes under the shard lock when a
        concurrent rebalance moved the point's Morton code."""
        self._require_built()
        while True:
            s = self.route_point(point)
            with self._locks[s]:
                if self.route_point(point) == s:
                    return self.shards[s].point_query(point)  # type: ignore[attr-defined]

    def range_query_1d(self, low: float, high: float) -> list[tuple[float, object]]:
        """Concatenated shard scans: globally key-sorted, like one index.

        The fan-out restarts from routing if a rebalance changes the
        bounds mid-scan (validated under each shard lock), so one call
        never mixes results from two different partitions.
        """
        self._require_built()
        while True:
            version = self._bounds_version
            lo_s = self.route_key(low)
            hi_s = self.route_key(high)
            out: list[tuple[float, object]] = []
            stale = False
            for s in range(lo_s, hi_s + 1):
                with self._locks[s]:
                    if self._bounds_version != version:
                        stale = True
                        break
                    out.extend(self.shards[s].range_query(low, high))  # type: ignore[attr-defined]
            if not stale:
                return out

    def range_query(self, low: Sequence[float], high: Sequence[float]) -> list:
        """Multi-d box query over the Z-interval-pruned shard subset.

        Returns the same result *multiset* as one unsharded index (the
        repo's range contract — each index class already has its own
        internal result order); here results come back in shard order,
        each shard's slice in that index's native order.  Restarts if a
        rebalance changes the bounds mid-fan-out (checked under each
        shard lock).
        """
        self._require_built()
        while True:
            version = self._bounds_version
            out: list = []
            stale = False
            for s in self._range_shards(low, high):
                with self._locks[s]:
                    if self._bounds_version != version:
                        stale = True
                        break
                    out.extend(self.shards[s].range_query(low, high))  # type: ignore[attr-defined]
            if not stale:
                return out

    def knn_query(self, point: Sequence[float], k: int) -> list:
        """Merge per-shard kNN candidate sets into the global top-k.

        Each shard returns *its* ``k`` nearest, so the union provably
        contains the global ``k`` nearest; re-sorting with the same
        ``(distance, point, value)`` tie-break the scalar path uses
        reproduces the unsharded answer.  Restarts if a rebalance lands
        mid-fan-out (checked under each shard lock), so a point that
        moved between shards is never seen zero or two times.
        """
        self._require_built()
        if k <= 0:
            return []
        q = np.asarray(point, dtype=np.float64)
        while True:
            version = self._bounds_version
            candidates: list = []
            stale = False
            for s in range(self.num_shards):
                with self._locks[s]:
                    if self._bounds_version != version:
                        stale = True
                        break
                    candidates.extend(self.shards[s].knn_query(point, k))  # type: ignore[attr-defined]
            if not stale:
                break
        ranked = sorted(
            (float(np.linalg.norm(np.asarray(p) - q)), p, v) for p, v in candidates
        )
        return [(p, v) for _, p, v in ranked[:k]]

    # -- batched queries (the coalescer fast path) -------------------------
    def lookup_batch(self, keys: Sequence[float]) -> np.ndarray:
        """Routed scatter/gather over the per-shard ``lookup_batch`` kernels.

        Restarts from routing if a rebalance changes the shard bounds
        mid-flight (the version check runs under each shard lock, where
        the bounds cannot move).
        """
        self._require_built()
        arr = np.asarray(keys, dtype=np.float64)
        out = np.empty(arr.size, dtype=object)
        while True:
            version = self._bounds_version
            sids = np.searchsorted(self._bounds, arr, side="right")
            stale = False
            for s in np.unique(sids):
                rows = np.flatnonzero(sids == s)
                with self._locks[s]:
                    if self._bounds_version != version:
                        stale = True
                        break
                    out[rows] = self.shards[s].lookup_batch(arr[rows])  # type: ignore[attr-defined]
            if not stale:
                return out

    def contains_batch(self, keys: Sequence[float]) -> np.ndarray:
        """Routed batch membership; restarts on a mid-flight rebalance
        (bounds-version check under each shard lock)."""
        self._require_built()
        arr = np.asarray(keys, dtype=np.float64)
        out = np.empty(arr.size, dtype=bool)
        while True:
            version = self._bounds_version
            sids = np.searchsorted(self._bounds, arr, side="right")
            stale = False
            for s in np.unique(sids):
                rows = np.flatnonzero(sids == s)
                with self._locks[s]:
                    if self._bounds_version != version:
                        stale = True
                        break
                    out[rows] = self.shards[s].contains_batch(arr[rows])  # type: ignore[attr-defined]
            if not stale:
                return out

    def point_query_batch(self, points: np.ndarray) -> np.ndarray:
        """Routed batch point query; restarts on a mid-flight rebalance
        (bounds-version check under each shard lock)."""
        self._require_built()
        pts = np.asarray(points, dtype=np.float64)
        codes = self._encode(pts)
        out = np.empty(pts.shape[0], dtype=object)
        while True:
            version = self._bounds_version
            sids = np.searchsorted(self._bounds, codes, side="right")
            stale = False
            for s in np.unique(sids):
                rows = np.flatnonzero(sids == s)
                with self._locks[s]:
                    if self._bounds_version != version:
                        stale = True
                        break
                    out[rows] = self.shards[s].point_query_batch(pts[rows])  # type: ignore[attr-defined]
            if not stale:
                return out

    # -- mutation ----------------------------------------------------------
    def _require_mutable(self, method: str) -> None:
        """Raise a typed error instead of an AttributeError deep in a worker.

        The unlocked shard read is deliberately racy-safe: mutability is
        a property of the factory's *class*, identical across shards and
        across the store's lifetime once built.
        """
        if not hasattr(self.shards[0], method):
            raise TypeError(
                f"{type(self.shards[0]).__name__} is immutable; "
                f"{method} needs a mutable index factory"
            )

    def insert(self, key_or_point: object, value: object = None) -> None:
        """Routed insert; bumps the shard generation under the shard lock.

        Re-routes under the lock when a concurrent rebalance moved the
        key's owning shard, so a write never lands on a shard that no
        longer owns it.
        """
        self._require_built()
        self._require_mutable("insert")
        if self.multi_dim:
            while True:
                s = self.route_point(key_or_point)  # type: ignore[arg-type]
                with self._locks[s]:
                    if self.route_point(key_or_point) == s:  # type: ignore[arg-type]
                        self.shards[s].insert(key_or_point, value)  # type: ignore[attr-defined]
                        self.generations[s] += 1
                        return
        else:
            key = float(key_or_point)  # type: ignore[arg-type]
            while True:
                s = self.route_key(key)
                with self._locks[s]:
                    if self.route_key(key) == s:
                        self.shards[s].insert(key, value)  # type: ignore[attr-defined]
                        self.generations[s] += 1
                        return

    def delete(self, key_or_point: object) -> bool:
        """Routed delete; bumps the shard generation under the shard lock.

        Re-routes under the lock when a concurrent rebalance moved the
        key's owning shard.
        """
        self._require_built()
        self._require_mutable("delete")
        if self.multi_dim:
            while True:
                s = self.route_point(key_or_point)  # type: ignore[arg-type]
                with self._locks[s]:
                    if self.route_point(key_or_point) == s:  # type: ignore[arg-type]
                        removed = bool(self.shards[s].delete(key_or_point))  # type: ignore[attr-defined]
                        self.generations[s] += 1
                        return removed
        key = float(key_or_point)  # type: ignore[arg-type]
        while True:
            s = self.route_key(key)
            with self._locks[s]:
                if self.route_key(key) == s:
                    removed = bool(self.shards[s].delete(key))  # type: ignore[attr-defined]
                    self.generations[s] += 1
                    return removed

    # -- request execution (used by the coalescer workers) -----------------
    def execute(self, request: Request) -> object:
        """Answer one request through the scalar index paths."""
        op = request.op
        if op is Op.LOOKUP:
            return self.lookup(float(request.key))  # type: ignore[arg-type]
        if op is Op.CONTAINS:
            return self.contains(float(request.key))  # type: ignore[arg-type]
        if op is Op.RANGE_1D:
            return self.range_query_1d(float(request.low), float(request.high))  # type: ignore[arg-type]
        if op is Op.POINT_QUERY:
            return self.point_query(request.point)  # type: ignore[arg-type]
        if op is Op.RANGE_QUERY:
            return self.range_query(request.low, request.high)  # type: ignore[arg-type]
        if op is Op.KNN:
            return self.knn_query(request.point, request.k)  # type: ignore[arg-type]
        if op is Op.INSERT:
            self.insert(
                request.point if self.multi_dim else request.key, request.value
            )
            return None
        if op is Op.DELETE:
            return self.delete(request.point if self.multi_dim else request.key)
        raise ValueError(f"unknown op {op!r}")

    def _routes_for(self, op: Op, requests: Sequence[Request]) -> np.ndarray:
        """Current home shard per request of one coalescable same-op run.

        Deliberately lock-free: callers either re-check under the shard
        lock (:meth:`execute_batch`) or pair the result with a
        bounds-version check (:meth:`stray_rows` users).
        """
        if op is Op.POINT_QUERY:
            pts = np.asarray([r.point for r in requests], dtype=np.float64)
            return np.searchsorted(self._bounds, self._encode(pts), side="right")
        keys = np.asarray([r.key for r in requests], dtype=np.float64)
        return np.searchsorted(self._bounds, keys, side="right")

    def stray_rows(self, shard: int, op: Op, requests: Sequence[Request]) -> np.ndarray:
        """Rows of a routed run that a rebalance has moved off ``shard``.

        A lock-free routing snapshot: callers must pair it with a
        :attr:`bounds_version` check (see
        :meth:`repro.serve.mp.ProcessShardExecutor.execute_batch`) to
        know the answer was not computed mid-rebalance.
        """
        self._require_built()
        return np.flatnonzero(self._routes_for(op, requests) != shard)

    def execute_batch(self, shard: int, op: Op, requests: Sequence[Request]) -> list[object]:
        """Answer a same-shard run of coalescable requests in one kernel call.

        The caller (a coalescer worker) routed every request to
        ``shard`` at enqueue time; the routing is re-validated under the
        shard lock, because a rebalance may have moved keys off this
        shard while the run sat in the queue.  Still-owned rows are
        answered by one vectorized kernel call (where coalescing earns
        its throughput); moved rows fall back to :meth:`execute`, which
        re-routes them safely after the lock is released.
        """
        self._require_built()
        if op is Op.LOOKUP:
            keys = np.asarray([r.key for r in requests], dtype=np.float64)
            kernel = "lookup_batch"
        elif op is Op.CONTAINS:
            keys = np.asarray([r.key for r in requests], dtype=np.float64)
            kernel = "contains_batch"
        elif op is Op.POINT_QUERY:
            keys = np.asarray([r.point for r in requests], dtype=np.float64)
            kernel = "point_query_batch"
        else:
            raise ValueError(f"op {op!r} is not coalescable")
        with self._locks[shard]:
            if op is Op.POINT_QUERY:
                sids = np.searchsorted(self._bounds, self._encode(keys), side="right")
            else:
                sids = np.searchsorted(self._bounds, keys, side="right")
            mine = sids == shard
            batch = getattr(self.shards[shard], kernel)
            if mine.all():
                values = batch(keys)
                if op is Op.CONTAINS:
                    return [bool(b) for b in values]
                return list(values)
            out: list[object] = [None] * len(requests)
            rows = np.flatnonzero(mine)
            if rows.size:
                values = batch(keys[rows])
                for i, value in zip(rows, values):
                    out[int(i)] = bool(value) if op is Op.CONTAINS else value
            moved = np.flatnonzero(~mine)
        for i in moved:
            out[int(i)] = self.execute(requests[int(i)])
        return out

    # -- re-partitioning (the repro.tune actuator surface) -----------------
    @property
    def bounds(self) -> np.ndarray:
        """Copy of the current shard split keys/codes (for inspection)."""
        return self._bounds.copy()

    @property
    def bounds_version(self) -> int:
        """Monotonic partition version; bumped by every :meth:`rebalance`."""
        return self._bounds_version

    def _shard_items_locked(self, shard: int) -> list:
        """One shard's full (key/point, value) item list.

        The caller must hold the shard's lock.  1-d shards enumerate via
        an unbounded range scan; multi-d shards scan the build-time
        bounding box, which is the whole routable domain (the Morton
        lattice clamps points to it).
        """
        index = self.shards[shard]
        if self.multi_dim:
            return list(index.range_query(self._lo, self._hi))  # type: ignore[attr-defined]
        return list(index.range_query(-np.inf, np.inf))  # type: ignore[attr-defined]

    def rebalance(self, sample: np.ndarray | None = None,
                  bounds: Sequence[float] | None = None) -> int:
        """Re-partition every shard atomically; returns the new bounds version.

        New split boundaries come from, in priority order: explicit
        ``bounds`` (``num_shards - 1`` sorted split keys/codes), the
        quantiles of ``sample`` (observed keys in 1-d, observed points
        in multi-d — the hot-shard policy's input), or the quantiles of
        the store's own current items.

        The whole operation runs while holding **every** shard lock in
        increasing rank order (the runtime witness's sanctioned
        same-group protocol), so no query or write can interleave with a
        half-moved partition: items are extracted from all shards,
        re-split at the new boundaries, rebuilt through the factory, and
        swapped in with *all* shard generations bumped in the same
        critical section.  Atomic all-shard generation bumps are what
        keep the result cache sound — every cached entry keyed on a
        pre-rebalance generation tuple becomes unreachable at once,
        so no stale read can survive a boundary move.  The bounds swap
        happens before the version bump; readers check the version
        *first*, so a version match under a shard lock proves their
        routing snapshot is current.  Artifact provenance is cleared
        (the shards no longer match any saved snapshot), which also
        makes the process backend republish every worker snapshot.
        """
        self._require_built()
        with ExitStack() as stack:
            for s in range(self.num_shards):
                stack.enter_context(self._locks[s])
            items: list = []
            for s in range(self.num_shards):
                items.extend(self._shard_items_locked(s))
            if self.multi_dim:
                data = (np.asarray([p for p, _v in items], dtype=np.float64)
                        .reshape(len(items), self.dims))
                route_keys = (self._encode(data) if items
                              else np.empty(0, dtype=np.int64))
            else:
                data = np.asarray([k for k, _v in items], dtype=np.float64)
                route_keys = data
            values = [v for _k, v in items]
            sample_arr = (np.asarray(sample, dtype=np.float64)
                          if sample is not None else np.empty(0))
            if bounds is not None:
                new_bounds = np.asarray(bounds, dtype=route_keys.dtype)
                if new_bounds.size != self.num_shards - 1:
                    raise ValueError(
                        f"rebalance needs {self.num_shards - 1} split "
                        f"bounds, got {new_bounds.size}"
                    )
            elif sample_arr.size:
                if self.multi_dim:
                    new_bounds = self._split_bounds(
                        self._encode(sample_arr.reshape(-1, self.dims))
                    )
                else:
                    new_bounds = self._split_bounds(sample_arr.reshape(-1))
            else:
                new_bounds = self._split_bounds(route_keys)
            if new_bounds.size > 1 and np.any(np.diff(new_bounds) < 0):
                raise ValueError("rebalance bounds must be non-decreasing")
            sids = (np.searchsorted(new_bounds, route_keys, side="right")
                    if route_keys.size else np.empty(0, dtype=np.int64))
            for s in range(self.num_shards):
                rows = np.flatnonzero(sids == s)
                part = data[rows] if route_keys.size else (
                    np.empty((0, self.dims)) if self.multi_dim else np.empty(0)
                )
                part_values = [values[int(i)] for i in rows]
                fresh = self._factory()
                fresh.build(part, part_values)  # type: ignore[attr-defined]
                with self._locks[s]:
                    self.shards[s] = fresh
                    self.generations[s] += 1
                    self._artifact_dirs[s] = None
                    self._artifact_gens[s] = -1
            self._bounds = new_bounds
            self._bounds_version += 1
            return self._bounds_version

    def retune_shard(self, shard: int, workload: Sequence[tuple],
                     candidates: Sequence[int] | None = None) -> bool:
        """Re-tune one shard's internal layout from an observed workload.

        Calls the shard index's ``tune(workload)`` hook (e.g.
        :meth:`repro.multidim.flood.FloodIndex.tune`) under the shard
        lock and bumps the generation in the same critical section, so
        cached results and worker snapshots built on the old layout are
        invalidated together.  Returns ``False`` (untouched, no bump)
        when the index class has no ``tune`` hook.
        """
        self._require_built()
        with self._locks[shard]:
            tune = getattr(self.shards[shard], "tune", None)
            if tune is None or not callable(tune):
                return False
            if candidates is None:
                tune(list(workload))
            else:
                tune(list(workload), candidates=tuple(candidates))
            self.generations[shard] += 1
            self._artifact_dirs[shard] = None
            self._artifact_gens[shard] = -1
        return True

    def rebuild_shard(self, shard: int) -> None:
        """Rebuild one shard's index from its own items, in place.

        Collapses accumulated delta state (LSM levels, tombstones,
        appended buffers) back into the compact built form.  Indexes
        exposing an in-place ``compact()`` (e.g. dynamic PGM) take a
        fast path that merges their level arrays directly; others get a
        fresh factory build from their extracted items.  Either way the
        work runs under the shard lock with the generation bump in the
        same critical section, so no reader observes the half-merged
        shard and every cached result keyed on the old generation
        becomes unreachable.
        """
        self._require_built()
        with self._locks[shard]:
            compact = getattr(self.shards[shard], "compact", None)
            if compact is not None:
                compact()
                self.generations[shard] += 1
                self._artifact_dirs[shard] = None
                self._artifact_gens[shard] = -1
                return
            items = self._shard_items_locked(shard)
            if self.multi_dim:
                data = (np.asarray([p for p, _v in items], dtype=np.float64)
                        .reshape(len(items), self.dims))
            else:
                data = np.asarray([k for k, _v in items], dtype=np.float64)
            values = [v for _k, v in items]
            fresh = self._factory()
            fresh.build(data, values)  # type: ignore[attr-defined]
            self.shards[shard] = fresh
            self.generations[shard] += 1
            self._artifact_dirs[shard] = None
            self._artifact_gens[shard] = -1

    # -- snapshot export (the multi-process backend's feed) ----------------
    def export_shard(self, shard: int) -> tuple[object, int]:
        """Export one shard's built state plus its current generation.

        Runs under the shard's lock so the snapshot never observes a
        half-applied write, and the returned generation is exactly the
        one the snapshot reflects — the pair is what
        :class:`repro.serve.mp.ProcessShardExecutor` publishes to worker
        processes via :func:`repro.serve.shm.pack_state`.
        """
        self._require_built()
        with self._locks[shard]:
            state = self.shards[shard].export_state()  # type: ignore[attr-defined]
            return state, self.generations[shard]

    def snapshot_source(self, shard: int) -> tuple[Path | None, IndexState | None, int]:
        """Best snapshot feed for one shard: artifact files or live export.

        Under the shard lock: if the shard is still byte-identical to
        the artifact directory it was saved to / restored from (its
        generation has not moved since), return that directory so the
        executor can pack the worker segment **straight from the files**
        (:func:`repro.serve.shm.pack_artifact`) — no state export, no
        payload unpickle in the parent.  A shard that has seen writes
        since falls back to a live :meth:`export_shard`-style export.
        Returns ``(artifact_dir, state, generation)`` with exactly one
        of the first two non-None.
        """
        self._require_built()
        with self._locks[shard]:
            generation = self.generations[shard]
            source = self._artifact_dirs[shard]
            if source is not None and generation == self._artifact_gens[shard]:
                return source, None, generation
            state = self.shards[shard].export_state()  # type: ignore[attr-defined]
            return None, state, generation

    # -- snapshot persistence (cold-start restore) -------------------------
    def save_snapshot(self, directory: str | Path) -> Path:
        """Persist the whole store: shard artifacts + partitioner metadata.

        Each shard's state is exported under its lock (so no snapshot
        observes a half-applied write) and written as an ordinary index
        artifact directory (``shard_0000/ ...``); ``store.json`` records
        the partition bounds, Morton lattice, and the exact generation
        each shard artifact reflects, which is what lets
        :meth:`from_snapshot` resume cache-generation continuity.  A
        rebalance landing mid-snapshot (detected by the bounds version
        moving between the first export and the metadata write) restarts
        the export, so saved bounds always match the saved shards.
        """
        self._require_built()
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        while True:
            version = self._bounds_version
            bounds = self._bounds
            shard_dirs: list[str] = []
            generations: list[int] = []
            for s in range(self.num_shards):
                rel = f"shard_{s:04d}"
                with self._locks[s]:
                    state = self.shards[s].export_state()  # type: ignore[attr-defined]
                    generation = self.generations[s]
                write_artifact(state, root / rel)
                with self._locks[s]:
                    if self.generations[s] == generation:
                        self._artifact_dirs[s] = root / rel
                        self._artifact_gens[s] = generation
                shard_dirs.append(rel)
                generations.append(generation)
            if self._bounds_version == version:
                break
        meta = {
            "format": STORE_SNAPSHOT_FORMAT,
            "format_version": STORE_SNAPSHOT_VERSION,
            "num_shards": self.num_shards,
            "multi_dim": self.multi_dim,
            "dims": self.dims,
            "bits": self._bits,
            "bounds": bounds.tolist(),
            "lo": [float(x) for x in self._lo],
            "hi": [float(x) for x in self._hi],
            "generations": generations,
            "shards": shard_dirs,
            "environment": environment_snapshot(),
        }
        (root / _STORE_META).write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n"
        )
        return root

    @classmethod
    def from_snapshot(cls, directory: str | Path,
                      factory: Callable[[], object] | None = None,
                      mmap_mode: str | None = "r") -> "ShardedStore":
        """Restore a store from :meth:`save_snapshot` output, build-free.

        Every shard is reconstructed from its artifact files (read-only
        memmap views by default — pass ``mmap_mode=None`` for writable
        eager copies); partition bounds and generation counters resume
        exactly where they were saved.  No index ``build()`` runs.
        """
        root = Path(directory)
        meta_path = root / _STORE_META
        if not meta_path.is_file():
            raise ArtifactError(f"{root}: no {_STORE_META} (not a store snapshot)")
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError) as exc:
            raise ArtifactError(f"{meta_path}: unreadable metadata: {exc}") from exc
        if not isinstance(meta, dict) or meta.get("format") != STORE_SNAPSHOT_FORMAT:
            raise ArtifactError(f"{meta_path}: not a {STORE_SNAPSHOT_FORMAT} file")
        version = meta.get("format_version")
        if not isinstance(version, int) or version > STORE_SNAPSHOT_VERSION:
            raise ArtifactError(
                f"{meta_path}: snapshot version {version!r} newer than "
                f"supported {STORE_SNAPSHOT_VERSION}"
            )
        num_shards = int(meta["num_shards"])
        if factory is None:
            def factory() -> object:
                raise RuntimeError(
                    "store was restored from a snapshot without a factory; "
                    "pass factory= to from_snapshot before calling build()"
                )
        store = cls(factory, num_shards=num_shards, bits=meta.get("bits"))
        store.multi_dim = bool(meta["multi_dim"])
        store.dims = int(meta["dims"])
        bounds_dtype = np.int64 if store.multi_dim else np.float64
        store._bounds = np.asarray(meta["bounds"], dtype=bounds_dtype)
        store._lo = np.asarray(meta["lo"], dtype=np.float64)
        store._hi = np.asarray(meta["hi"], dtype=np.float64)
        generations = [int(g) for g in meta["generations"]]
        shard_dirs = [str(rel) for rel in meta["shards"]]
        if len(generations) != num_shards or len(shard_dirs) != num_shards:
            raise ArtifactError(f"{meta_path}: shard list does not match num_shards")
        store.shards = [
            load_index_artifact(root / rel, mmap_mode=mmap_mode)
            for rel in shard_dirs
        ]
        store.generations = generations
        store._artifact_dirs = [root / rel for rel in shard_dirs]
        store._artifact_gens = list(generations)
        store._built = True
        return store

    # -- reporting ---------------------------------------------------------
    def stats(self) -> IndexStats:
        """Fold of per-shard :class:`IndexStats`, each read under its shard lock.

        Per-shard counters are internally consistent (no torn multi-field
        reads); the fold across shards is still a moving snapshot.
        """
        out = IndexStats()
        for s in range(len(self.shards)):
            with self._locks[s]:
                out = out.merge(self.shards[s].stats)  # type: ignore[attr-defined]
        return out

    def shard_sizes(self) -> list[int]:
        """Number of entries held by each shard, each read under its lock."""
        sizes: list[int] = []
        for s in range(len(self.shards)):
            with self._locks[s]:
                sizes.append(len(self.shards[s]))  # type: ignore[arg-type]
        return sizes

    def __len__(self) -> int:
        return sum(self.shard_sizes())
