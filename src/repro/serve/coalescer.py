"""Request coalescing: scalar submissions drained as vectorized batches.

PR 1 and PR 2 showed that the dominant cost of serving one request at a
time from Python is interpreter overhead, not index math — the batch
kernels (``lookup_batch``, ``point_query_batch``) answer hundreds of
queries for roughly the price of one scalar call.  The coalescer turns
that observation into a serving discipline: concurrent clients submit
*scalar* requests, each shard owns a FIFO queue, and a worker thread per
shard drains up to ``max_batch`` requests at a time (waiting at most
``max_delay`` seconds for the window to fill), dispatching consecutive
runs of the same coalescable operation through one batch-kernel call.

Ordering: each shard queue is strict FIFO and only *consecutive* runs of
the same operation are fused, so per-shard program order is preserved —
a client that submits ``insert(k)`` then ``lookup(k)`` to the same shard
observes its own write, batching or not.

Admission control: queues are bounded.  A submission that finds its
shard queue full is answered immediately with
:class:`~repro.serve.requests.Overloaded` (a response, not an
exception) and counted in :attr:`ServerStats.shed`.

Shutdown: :meth:`Coalescer.close` is idempotent and never drops a
queued request silently — the stopping flag flips under every shard's
condition (so a racing ``submit`` either enqueues before the flag and
is drained, or observes it and raises), workers drain their queues
before exiting and are joined with a bounded timeout, and any requests
left behind by a worker that would not die in time are served
synchronously by the closing thread.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.lockorder import make_condition, make_lock
from repro.serve.mp import ProcessShardExecutor, WorkerDied
from repro.serve.requests import (
    COALESCABLE_OPS,
    WRITE_OPS,
    Overloaded,
    Request,
    Response,
    WorkerError,
)
from repro.serve.sharding import ShardedStore
from repro.serve.stats import ServerStats

__all__ = ["Coalescer", "Window"]


@dataclass
class _Pending:
    """A queued request plus its completion plumbing.

    Exactly one of ``future`` / ``window`` is set: the future path wraps
    results in :class:`Response` objects, the window path stores raw
    values into a shared per-window slot array (cheaper — no per-request
    synchronization object).
    """

    request: Request
    submitted: float
    future: Future | None = field(default=None)
    callback: Callable[[object], None] | None = field(default=None)
    window: "Window | None" = field(default=None)
    slot: int = 0


class Window:
    """Completion tracker for one pipelined submission window.

    Workers store each request's raw result into its slot and the last
    completion sets one event — per-request cost is a list store and a
    counted decrement, versus a full ``Future`` (own condition variable,
    ``Response`` wrapper) on the scalar path.  ``wait`` returns the slot
    array; shed requests hold :class:`Overloaded` instances, failures
    re-raise the first recorded exception.
    """

    __slots__ = ("results", "_remaining", "_event", "_lock", "_error")

    def __init__(self, size: int) -> None:
        self.results: list[object] = [None] * size
        self._remaining = size
        self._event = threading.Event()
        self._lock = make_lock("Window._lock")
        self._error: BaseException | None = None

    def complete(self, slot: int, value: object) -> None:
        self.results[slot] = value
        with self._lock:
            self._remaining -= 1
            if self._remaining == 0:
                self._event.set()

    def fail(self, slot: int, error: BaseException) -> None:
        with self._lock:
            if self._error is None:
                self._error = error
        self.complete(slot, None)

    def wait(self) -> list[object]:
        self._event.wait()
        with self._lock:
            error = self._error
        if error is not None:
            raise error
        return self.results


class Coalescer:
    """Per-shard request queues drained by batch-dispatching workers.

    Args:
        store: the built :class:`ShardedStore` requests execute against.
        stats: shared :class:`ServerStats` sink.
        max_batch: largest run drained into one batch-kernel call;
            ``1`` disables coalescing (every request runs scalar), which
            is exactly the E19 baseline configuration.
        max_delay: longest time (seconds) a worker waits for its window
            to fill once at least one request is queued; ``0`` drains
            immediately.
        capacity: per-shard queue bound for admission control.
        executor: optional
            :class:`~repro.serve.mp.ProcessShardExecutor`; when set,
            fused same-op runs execute in that shard's worker *process*
            (the dispatch thread blocks on the pipe, releasing the GIL)
            instead of on the store in-thread.  Scalar requests and
            writes always stay on the store.
    """

    def __init__(self, store: ShardedStore, stats: ServerStats,
                 max_batch: int = 256, max_delay: float = 0.001,
                 capacity: int = 4096,
                 executor: ProcessShardExecutor | None = None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.store = store
        self.stats = stats
        self.executor = executor
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.capacity = capacity
        self._queues: list[deque[_Pending]] = [deque() for _ in range(store.num_shards)]
        self._conds = [make_condition("Coalescer._conds", rank=s)
                       for s in range(store.num_shards)]
        self._workers: list[threading.Thread] = []
        self._stopping = False

    # -- client side -------------------------------------------------------
    def submit(self, request: Request,
               callback: Callable[[object], None] | None = None) -> Future:
        """Enqueue ``request`` on its home shard; resolve with a Response.

        Returns a future that resolves to :class:`Response` (or
        :class:`Overloaded` if the shard queue was full — already
        resolved in that case, no waiting).  ``callback`` runs in the
        worker thread with the raw result value before the future
        resolves; the server uses it to fill the result cache.
        """
        shard = self.store.route(request)[0] if request.op in COALESCABLE_OPS \
            else self._home_shard(request)
        fut: Future = Future()
        pending = _Pending(request, time.perf_counter(), future=fut, callback=callback)
        cond = self._conds[shard]
        with cond:
            if self._stopping:
                raise RuntimeError("coalescer is closed; no new requests accepted")
            depth = len(self._queues[shard])
            if depth >= self.capacity:
                self.stats.record_shed()
                fut.set_result(Overloaded(depth=depth))
                return fut
            self._queues[shard].append(pending)
            cond.notify()
        self.stats.record_submit(shard, depth + 1)
        return fut

    def submit_many(self, requests: Sequence[Request]) -> list[Future]:
        """Enqueue a window of requests with vectorized routing.

        Routing runs once over the whole window
        (:meth:`ShardedStore.route_home_batch`), each shard's condition
        variable is taken once, and submit counters update once per
        shard — the admission-side analog of execution coalescing.  Both
        E19 arms use this path, so the measured gap is purely the
        execution batching.  Per-client, per-shard FIFO order is
        preserved (the window is walked in submission order).  Requests
        that find their shard queue full resolve immediately to
        :class:`Overloaded`.
        """
        now = time.perf_counter()
        pendings = [_Pending(r, now, future=Future()) for r in requests]
        self._enqueue_window(pendings)
        return [pending.future for pending in pendings]  # type: ignore[misc]

    def submit_window(self, requests: Sequence[Request]) -> Window:
        """Enqueue a window completing into one shared :class:`Window`.

        The cheapest submission path: vectorized routing, one condition
        take per shard, and slot-array completion instead of a
        ``Future`` per request.  ``wait()`` on the returned window gives
        the raw result values in submission order (shed requests hold
        :class:`Overloaded`).
        """
        now = time.perf_counter()
        window = Window(len(requests))
        pendings = [
            _Pending(r, now, window=window, slot=i) for i, r in enumerate(requests)
        ]
        self._enqueue_window(pendings)
        return window

    def _enqueue_window(self, pendings: list[_Pending]) -> None:
        """Group a routed window by home shard and enqueue with shedding.

        Raises ``RuntimeError`` if the coalescer is closed; shard groups
        enqueued before the closed flag was observed are still drained
        and resolved (nothing queued is ever dropped).
        """
        homes = self.store.route_home_batch([p.request for p in pendings])
        by_shard: dict[int, list[_Pending]] = {}
        for pending, shard in zip(pendings, homes):
            by_shard.setdefault(shard, []).append(pending)
        for shard, group in by_shard.items():
            cond = self._conds[shard]
            with cond:
                if self._stopping:
                    raise RuntimeError(
                        "coalescer is closed; no new requests accepted")
                depth = len(self._queues[shard])
                room = max(0, self.capacity - depth)
                taken = group[:room]
                self._queues[shard].extend(taken)
                cond.notify()
            if taken:
                self.stats.record_submit_many(shard, len(taken), depth + len(taken))
            for pending in group[room:]:
                self.stats.record_shed()
                self._resolve(pending, Overloaded(depth=self.capacity))

    def _home_shard(self, request: Request) -> int:
        """First involved shard — hosts the queue slot for fan-out ops."""
        shards = self.store.route(request)
        return shards[0] if shards else 0

    # -- worker side -------------------------------------------------------
    def start(self) -> None:
        """Spawn one daemon worker thread per shard (idempotent).

        Reopens a closed coalescer: the stopping flag is cleared under
        every shard's condition before any worker exists to observe it.
        """
        if self._workers:
            return
        for cond in self._conds:
            with cond:
                self._stopping = False
        for s in range(self.store.num_shards):
            t = threading.Thread(target=self._worker, args=(s,),
                                 name=f"serve-shard-{s}", daemon=True)
            self._workers.append(t)
            t.start()

    def close(self, timeout: float = 5.0) -> int:
        """Stop accepting work, drain every queued request, join workers.

        Idempotent.  The stopping flag flips under each shard's
        condition, so a concurrent ``submit`` either enqueued before the
        flag (and is drained below) or observes it and raises — there is
        no window in which a request can be queued and then silently
        dropped.  Workers drain their queues before exiting and are
        joined against one shared ``timeout`` deadline; anything a
        worker that missed the deadline left queued is served
        synchronously here.  Returns the number of requests the closer
        had to serve itself (0 when the workers drained everything).
        """
        for cond in self._conds:
            with cond:
                self._stopping = True
                cond.notify_all()
        deadline = time.monotonic() + max(0.0, timeout)
        for t in self._workers:
            t.join(max(0.0, deadline - time.monotonic()))
        self._workers = []
        return self.flush()

    def stop(self) -> None:
        """Back-compat alias for :meth:`close` (pre-PR-8 name)."""
        self.close()

    def flush(self, shard: int | None = None) -> int:
        """Drain queued requests synchronously in the calling thread.

        Intended for tests and single-threaded use *without* started
        workers (with workers running, drain order between the flusher
        and a worker is unspecified).  An empty queue is a no-op.
        Returns the number of requests served.
        """
        shards = range(self.store.num_shards) if shard is None else (shard,)
        served = 0
        for s in shards:
            while True:
                batch = self._take_batch(s, wait=False)
                if not batch:
                    break
                self._dispatch(s, batch)
                served += len(batch)
        return served

    def _worker(self, shard: int) -> None:
        while True:
            batch = self._take_batch(shard, wait=True)
            if batch is None:
                return
            if batch:
                self._dispatch(shard, batch)

    def _take_batch(self, shard: int, wait: bool) -> list[_Pending] | None:
        """Pop up to ``max_batch`` requests; None signals worker shutdown."""
        cond = self._conds[shard]
        queue = self._queues[shard]
        with cond:
            if wait:
                while not queue and not self._stopping:
                    cond.wait()
                if not queue and self._stopping:
                    return None
                if (self.max_delay > 0 and len(queue) < self.max_batch
                        and not self._stopping):
                    deadline = time.monotonic() + self.max_delay
                    while len(queue) < self.max_batch and not self._stopping:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        cond.wait(remaining)
            batch = []
            while queue and len(batch) < self.max_batch:
                batch.append(queue.popleft())
            return batch

    def _dispatch(self, shard: int, batch: list[_Pending]) -> None:
        """Execute a drained batch, fusing consecutive same-op runs."""
        i = 0
        n = len(batch)
        while i < n:
            op = batch[i].request.op
            if op in COALESCABLE_OPS:
                j = i
                while j < n and batch[j].request.op is op:
                    j += 1
                run = batch[i:j]
                self.stats.record_batch(shard, len(run))
                if len(run) == 1:
                    self._run_scalar(run[0])
                else:
                    self._run_batch(shard, op, run)
                i = j
            else:
                self._run_scalar(batch[i])
                i += 1

    def _run_batch(self, shard: int, op: object, run: list[_Pending]) -> None:
        target = self.executor if self.executor is not None else self.store
        try:
            values = target.execute_batch(shard, op, [p.request for p in run])  # type: ignore[arg-type]
        except WorkerDied as exc:
            # The shard's worker process died holding this window; the
            # executor has already restarted it.  Answer every in-flight
            # request with a typed response — a crash sheds cleanly, it
            # never hangs a window or leaks a BrokenPipeError.
            for p in run:
                self._resolve(p, WorkerError(shard=exc.shard, reason=exc.reason))
            return
        except Exception as exc:  # pragma: no cover - defensive
            for p in run:
                self._reject(p, exc)
            return
        now = time.perf_counter()
        self.stats.record_done_many([now - p.submitted for p in run])
        for p, value in zip(run, values):
            if p.callback is not None:
                p.callback(value)
            self._resolve(p, value)

    def _run_scalar(self, pending: _Pending) -> None:
        try:
            value = self.store.execute(pending.request)
        except Exception as exc:
            self._reject(pending, exc)
            return
        latency = time.perf_counter() - pending.submitted
        self.stats.record_done(latency, write=pending.request.op in WRITE_OPS)
        if pending.callback is not None:
            pending.callback(value)
        self._resolve(pending, value)

    def _resolve(self, pending: _Pending, value: object) -> None:
        """Deliver a raw result through whichever completion path is wired."""
        if pending.window is not None:
            pending.window.complete(pending.slot, value)
        else:
            assert pending.future is not None
            if isinstance(value, Response) and not value.ok:
                # Typed failure responses (Overloaded, WorkerError) pass
                # through unwrapped so clients can branch on them.
                pending.future.set_result(value)
            else:
                pending.future.set_result(Response(value=value))

    def _reject(self, pending: _Pending, error: BaseException) -> None:
        if pending.window is not None:
            pending.window.fail(pending.slot, error)
        else:
            assert pending.future is not None
            pending.future.set_exception(error)

    # -- introspection -----------------------------------------------------
    def queue_depths(self) -> list[int]:
        """Current per-shard queue lengths (racy snapshot, fine for stats)."""
        return [len(q) for q in self._queues]
