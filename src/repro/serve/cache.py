"""LRU + TTL result cache with generation-based write invalidation.

The cache sits in front of the coalescer: read responses are stored
under a key that includes the *generation* of every shard the request
touched.  A write bumps its shard's generation (see
:meth:`repro.serve.sharding.ShardedStore.insert`), so every cached entry
for that shard becomes unreachable at once — no scan, no per-key
bookkeeping, and range results that merely *contain* a written key are
invalidated too.  Stale generations age out through normal LRU
eviction.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable

from repro.core.lockorder import make_lock

__all__ = ["ResultCache"]

_MISS = object()


class ResultCache:
    """Bounded LRU cache with an optional TTL, safe for concurrent use.

    Args:
        capacity: maximum number of entries; inserting past it evicts
            the least recently used entry.  ``capacity <= 0`` disables
            the cache entirely (every ``get`` misses, ``put`` is a
            no-op), which lets the server keep one unconditional code
            path.
        ttl: optional time-to-live in seconds; entries older than this
            miss (and are dropped on access).
        clock: monotonic time source, injectable so TTL behaviour is
            testable without sleeping.
    """

    def __init__(self, capacity: int = 1024, ttl: float | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._lock = make_lock("ResultCache._lock")
        self._entries: OrderedDict[object, tuple[object, float]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: object, default: object = None) -> object:
        """Return the cached value for ``key`` or ``default`` on a miss."""
        with self._lock:
            entry = self._entries.get(key, _MISS)
            if entry is _MISS:
                self.misses += 1
                return default
            value, stamp = entry  # type: ignore[misc]
            if self.ttl is not None and self._clock() - stamp > self.ttl:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: object, value: object) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries past capacity."""
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[key] = (value, self._clock())
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (used when a store is rebuilt wholesale)."""
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> dict[str, int]:
        """Counter summary for the server stats artifact."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
            }
