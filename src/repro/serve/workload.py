"""Seeded workload generators and a closed-loop serving driver.

The generators produce deterministic request streams in the YCSB style:
``read-heavy`` (95/5), ``write-heavy`` (20/80), ``mixed`` (50/50), and a
read-only ``zipfian`` hot-key workload whose skew is what makes result
caching and coalescing shine (hot shards see long same-op runs).  Every
generator takes an explicit ``seed`` so two calls with the same
arguments produce byte-identical request lists — the determinism tests
and the E19 benchmark both rely on that.

``run_closed_loop`` drives a built :class:`IndexServer` with ``clients``
threads, each keeping up to ``pipeline`` requests in flight.  Pipelining
is what gives the coalescer a window to fill: a strictly synchronous
client (pipeline=1) serializes on every response and can never be
batched with itself.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence

import numpy as np

from repro.serve.requests import Op, Overloaded, Request
from repro.serve.server import IndexServer
from repro.serve.stats import LatencyHistogram

__all__ = [
    "read_heavy",
    "write_heavy",
    "mixed",
    "zipfian_hot_key",
    "drifting_phases",
    "drifting",
    "WORKLOADS",
    "make_workload",
    "run_closed_loop",
]


def _read_request(rng: np.random.Generator, data: np.ndarray, multi_dim: bool) -> Request:
    """A point read of one uniformly chosen existing key/point."""
    row = int(rng.integers(0, data.shape[0]))
    if multi_dim:
        return Request(op=Op.POINT_QUERY, point=tuple(float(x) for x in data[row]))
    return Request(op=Op.LOOKUP, key=float(data[row]))


def _write_request(rng: np.random.Generator, data: np.ndarray, multi_dim: bool,
                   tag: int) -> Request:
    """An insert of a fresh uniformly drawn key/point inside the data domain."""
    if multi_dim:
        lo = data.min(axis=0)
        hi = data.max(axis=0)
        point = tuple(float(x) for x in lo + rng.random(data.shape[1]) * (hi - lo))
        return Request(op=Op.INSERT, point=point, value=f"w{tag}")
    lo_k = float(data.min())
    hi_k = float(data.max())
    key = lo_k + float(rng.random()) * (hi_k - lo_k)
    return Request(op=Op.INSERT, key=key, value=f"w{tag}")


def _ratio_workload(data: np.ndarray, count: int, seed: int, multi_dim: bool,
                    read_ratio: float) -> list[Request]:
    rng = np.random.default_rng(seed)
    out: list[Request] = []
    for i in range(count):
        if rng.random() < read_ratio:
            out.append(_read_request(rng, data, multi_dim))
        else:
            out.append(_write_request(rng, data, multi_dim, i))
    return out


def read_heavy(data: np.ndarray, count: int, seed: int = 0,
               multi_dim: bool = False) -> list[Request]:
    """95% uniform point reads, 5% fresh-key inserts (YCSB-B-like)."""
    return _ratio_workload(data, count, seed, multi_dim, read_ratio=0.95)


def write_heavy(data: np.ndarray, count: int, seed: int = 0,
                multi_dim: bool = False) -> list[Request]:
    """20% uniform point reads, 80% fresh-key inserts (ingest-like)."""
    return _ratio_workload(data, count, seed, multi_dim, read_ratio=0.2)


def mixed(data: np.ndarray, count: int, seed: int = 0,
          multi_dim: bool = False) -> list[Request]:
    """50/50 reads and inserts (YCSB-A-like)."""
    return _ratio_workload(data, count, seed, multi_dim, read_ratio=0.5)


def zipfian_hot_key(data: np.ndarray, count: int, seed: int = 0,
                    multi_dim: bool = False, a: float = 1.3) -> list[Request]:
    """Read-only Zipf(a)-skewed point reads over the existing keys.

    Rank 1 is the hottest key; ranks wrap modulo the dataset size.
    Being read-only, this workload is safe for immutable indexes, which
    is why it is the E19 default.
    """
    rng = np.random.default_rng(seed)
    n = data.shape[0]
    ranks = (rng.zipf(a, size=count) - 1) % n
    if multi_dim:
        return [
            Request(op=Op.POINT_QUERY, point=tuple(float(x) for x in data[int(r)]))
            for r in ranks
        ]
    return [Request(op=Op.LOOKUP, key=float(data[int(r)])) for r in ranks]


def drifting_phases(data: np.ndarray, count: int, seed: int = 0,
                    multi_dim: bool = False, phases: int = 6,
                    band_frac: float = 0.25, a: float = 1.25,
                    write_ratios: Sequence[float] = (0.1, 0.5),
                    background: float = 0.0, dwell: int = 1,
                    ) -> list[list[Request]]:
    """A seeded phase schedule whose hotspot moves and whose mix flips.

    The adversary the self-tuning control plane (E23) is built for: each
    phase picks a contiguous *band* of the key-sorted order (covering
    ``band_frac`` of the data), reads are Zipf(``a``)-skewed *within*
    that band, and writes insert fresh keys *inside* the band's key
    range — so both the traffic and the written-key distribution walk
    away from the build-time assumptions, phase by phase.  The
    read/write mix flips too, cycling through ``write_ratios``.

    Band positions are evenly spaced across the key order and visited in
    a seeded random permutation, so every phase is guaranteed to move
    the hotspot.  ``background`` routes that fraction of the *reads*
    uniformly over the whole build-time keyspace instead of the band —
    the scan/point traffic real deployments keep under a hotspot, and
    the probe that makes piled-up delta anywhere cost every phase.
    ``dwell`` holds each band position for that many consecutive phases
    before jumping: with ``dwell=2`` and alternating ``write_ratios``
    the schedule becomes ingest-then-analyze — a write burst lands in a
    band, then the next phase queries that same freshly-written region.
    Returns one request list per phase (``count`` split evenly); drivers
    that want a flat stream use :func:`drifting`.  Multi-dimensional
    data is banded along its first coordinate.
    """
    if phases < 1:
        raise ValueError("phases must be >= 1")
    if not 0.0 < band_frac <= 1.0:
        raise ValueError("band_frac must be in (0, 1]")
    if not write_ratios:
        raise ValueError("write_ratios must be non-empty")
    if not 0.0 <= background <= 1.0:
        raise ValueError("background must be in [0, 1]")
    if dwell < 1:
        raise ValueError("dwell must be >= 1")
    rng = np.random.default_rng(seed)
    n = data.shape[0]
    order = np.argsort(data[:, 0] if multi_dim else data, kind="stable")
    band = max(1, int(n * band_frac))
    positions = -(-phases // dwell)  # distinct band positions
    starts = (np.arange(positions) * max(0, n - band)) // max(1, positions - 1)
    starts = np.repeat(rng.permutation(starts), dwell)[:phases]
    per_phase = max(1, count // phases)
    out: list[list[Request]] = []
    tag = 0
    for p in range(phases):
        start = int(starts[p])
        band_rows = order[start:start + band]
        band_data = data[band_rows]
        lo = band_data.min(axis=0) if multi_dim else float(band_data.min())
        hi = band_data.max(axis=0) if multi_dim else float(band_data.max())
        write_ratio = float(write_ratios[p % len(write_ratios)])
        ranks = (rng.zipf(a, size=per_phase) - 1) % band_rows.size
        reqs: list[Request] = []
        for r in ranks:
            if rng.random() < write_ratio:
                if multi_dim:
                    point = tuple(
                        float(x)
                        for x in lo + rng.random(data.shape[1]) * (hi - lo)
                    )
                    reqs.append(Request(op=Op.INSERT, point=point,
                                        value=f"d{tag}"))
                else:
                    key = lo + float(rng.random()) * (hi - lo)
                    reqs.append(Request(op=Op.INSERT, key=key,
                                        value=f"d{tag}"))
                tag += 1
            else:
                if background and float(rng.random()) < background:
                    row = int(rng.integers(n))
                else:
                    row = int(band_rows[int(r)])
                if multi_dim:
                    reqs.append(Request(
                        op=Op.POINT_QUERY,
                        point=tuple(float(x) for x in data[row]),
                    ))
                else:
                    reqs.append(Request(op=Op.LOOKUP, key=float(data[row])))
        out.append(reqs)
    return out


def drifting(data: np.ndarray, count: int, seed: int = 0,
             multi_dim: bool = False, **kwargs: object) -> list[Request]:
    """Flattened :func:`drifting_phases` — the registry entry.

    Lets E19/E20 run the adversarial drift schedule as one stream; E23
    drives the phase lists directly so it can tune at phase boundaries.
    """
    return [
        request
        for phase in drifting_phases(data, count, seed=seed,
                                     multi_dim=multi_dim, **kwargs)  # type: ignore[arg-type]
        for request in phase
    ]


#: Name -> generator registry used by the E19 experiment CLI.
WORKLOADS: dict[str, Callable[..., list[Request]]] = {
    "read-heavy": read_heavy,
    "write-heavy": write_heavy,
    "mixed": mixed,
    "zipfian": zipfian_hot_key,
    "drifting": drifting,
}


def make_workload(name: str, data: np.ndarray, count: int, seed: int = 0,
                  multi_dim: bool = False) -> list[Request]:
    """Build ``count`` requests from the named generator (seeded)."""
    try:
        generator = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    return generator(data, count, seed=seed, multi_dim=multi_dim)


def run_closed_loop(server: IndexServer, requests: Sequence[Request],
                    clients: int = 4, pipeline: int = 32,
                    batch_submit: bool = True) -> dict[str, object]:
    """Drive ``server`` with a closed-loop multi-client workload.

    ``batch_submit=True`` submits each pipelined window through
    :meth:`IndexServer.serve_window` (vectorized admission, shared
    completion); ``False`` submits one request at a time via
    :meth:`IndexServer.submit` — the natural client of a non-coalescing
    server, and the E19 baseline.

    The request list is dealt round-robin across ``clients`` threads;
    each thread submits up to ``pipeline`` requests before collecting
    their responses, preserving per-client submission order (so a
    client observes its own writes).  Returns wall time, completed /
    shed counts, throughput, client-observed *window* latency (the
    per-request server-side histogram lives in ``server.stats()``), and
    the per-client response values (used by the determinism and parity
    tests).  A request that *errors* (e.g. an insert against an
    immutable index factory) is re-raised here after all clients have
    joined — write workloads need a mutable factory.
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if pipeline < 1:
        raise ValueError("pipeline must be >= 1")
    slices = [list(requests[c::clients]) for c in range(clients)]
    hists = [LatencyHistogram() for _ in range(clients)]
    shed_counts = [0] * clients
    values: list[list[object]] = [[] for _ in range(clients)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(clients + 1)

    def run_client(c: int) -> None:
        hist = hists[c]
        mine = slices[c]
        barrier.wait()
        try:
            for start in range(0, len(mine), pipeline):
                window = mine[start:start + pipeline]
                t0 = time.perf_counter()
                if batch_submit:
                    out = server.serve_window(window)
                else:
                    futures = [server.submit(req) for req in window]
                    out = []
                    for fut in futures:
                        response = fut.result()
                        out.append(
                            response if isinstance(response, Overloaded) else response.value
                        )
                hist.record(time.perf_counter() - t0)
                for value in out:
                    if isinstance(value, Overloaded):
                        shed_counts[c] += 1
                values[c].extend(out)
        except BaseException as exc:  # re-raised in the driver after join
            errors.append(exc)

    threads = [
        threading.Thread(target=run_client, args=(c,), name=f"client-{c}")
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t_start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t_start
    if errors:
        raise errors[0]
    merged = hists[0]
    for h in hists[1:]:
        merged = merged.merge(h)
    shed = sum(shed_counts)
    completed = sum(len(chunk) for chunk in values) - shed
    return {
        "wall_s": wall,
        "completed": completed,
        "shed": shed,
        "ops_per_s": completed / wall if wall > 0 else 0.0,
        "client_latency": merged.snapshot(),
        "values": values,
    }
