"""Serving-side observability: latency histograms and per-shard counters.

The benchmark story of the serving layer is throughput *and tail
latency* (SOSD reports throughput; "Are Updatable Learned Indexes
Ready?" shows the tails are where designs differentiate), so the stats
layer records a log-bucketed latency histogram with p50/p95/p99 readout
next to plain request counters.  Index-side cost counters ride along by
merging the per-shard :class:`repro.core.interfaces.IndexStats` objects
(:meth:`IndexStats.merge`) into one snapshot.
"""

from __future__ import annotations

from repro.core.interfaces import IndexStats
from repro.core.lockorder import make_lock

__all__ = ["LatencyHistogram", "ServerStats"]

#: Histogram bucket upper bounds: 1us * 2^i, i in [0, _BUCKETS).  The last
#: bucket (~2200s) is an overflow catch-all.
_BUCKETS = 32


class LatencyHistogram:
    """Log2-bucketed latency histogram with percentile readout.

    Buckets double from 1 microsecond; ``percentile`` returns the upper
    bound of the bucket containing the requested quantile, which is the
    usual HdrHistogram-style bounded-error estimate.  ``record`` is
    lock-free on CPython (single list-index increment under the GIL);
    cross-thread aggregation goes through :meth:`merge` on drained
    copies instead.
    """

    def __init__(self) -> None:
        self.counts = [0] * _BUCKETS
        self.total = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        """Record one latency observation (in seconds)."""
        micros = seconds * 1e6
        bucket = 0
        bound = 1.0
        while micros > bound and bucket < _BUCKETS - 1:
            bound *= 2.0
            bucket += 1
        self.counts[bucket] += 1
        self.total += 1
        self.sum_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def percentile(self, p: float) -> float:
        """Upper-bound estimate (seconds) of the ``p``-th percentile."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self.total == 0:
            return 0.0
        target = max(1, int(round(self.total * p / 100.0)))
        seen = 0
        for bucket, count in enumerate(self.counts):
            seen += count
            if seen >= target:
                return (2.0 ** bucket) * 1e-6
        return (2.0 ** (_BUCKETS - 1)) * 1e-6

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Return a new histogram combining both observation sets."""
        out = LatencyHistogram()
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.total = self.total + other.total
        out.sum_seconds = self.sum_seconds + other.sum_seconds
        out.max_seconds = max(self.max_seconds, other.max_seconds)
        return out

    def snapshot(self) -> dict[str, float]:
        """Plain-dict summary (microsecond percentiles, mean, max)."""
        mean = self.sum_seconds / self.total * 1e6 if self.total else 0.0
        return {
            "count": float(self.total),
            "mean_us": mean,
            "p50_us": self.percentile(50.0) * 1e6,
            "p95_us": self.percentile(95.0) * 1e6,
            "p99_us": self.percentile(99.0) * 1e6,
            "max_us": self.max_seconds * 1e6,
        }


class ServerStats:
    """Thread-safe request counters and latency histograms for one server.

    Tracks global counters (requests, sheds, cache hits/misses, batches),
    per-shard request/batch counts with queue high-water marks, and one
    latency histogram per operation family.  Counter updates take a
    single internal lock — the serving hot path calls at most two
    counter methods per request, so contention stays negligible next to
    the index work itself.
    """

    def __init__(self, num_shards: int) -> None:
        self._lock = make_lock("ServerStats._lock")
        self.num_shards = num_shards
        self.requests = 0
        self.responses = 0
        self.shed = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batches = 0
        self.batched_requests = 0
        self.writes = 0
        self.worker_restarts = 0
        self.per_shard_requests = [0] * num_shards
        self.per_shard_batches = [0] * num_shards
        self.queue_high_water = [0] * num_shards
        self.latency = LatencyHistogram()

    # -- recording hooks (called from client and worker threads) ----------
    def record_submit(self, shard: int, depth: int) -> None:
        with self._lock:
            self.requests += 1
            self.per_shard_requests[shard] += 1
            if depth > self.queue_high_water[shard]:
                self.queue_high_water[shard] = depth

    def record_submit_many(self, shard: int, count: int, depth: int) -> None:
        """Batched :meth:`record_submit` — one lock acquisition per window."""
        with self._lock:
            self.requests += count
            self.per_shard_requests[shard] += count
            if depth > self.queue_high_water[shard]:
                self.queue_high_water[shard] = depth

    def record_shed(self) -> None:
        with self._lock:
            self.requests += 1
            self.shed += 1

    def record_batch(self, shard: int, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self.per_shard_batches[shard] += 1

    def record_done(self, seconds: float, write: bool = False) -> None:
        with self._lock:
            self.responses += 1
            if write:
                self.writes += 1
            self.latency.record(seconds)

    def record_done_many(self, latencies: list[float], writes: int = 0) -> None:
        """Batched :meth:`record_done` — one lock acquisition per drained run."""
        with self._lock:
            self.responses += len(latencies)
            self.writes += writes
            record = self.latency.record
            for seconds in latencies:
                record(seconds)

    def record_worker_restart(self) -> None:
        """Count one shard-worker process restart (process backend only)."""
        with self._lock:
            self.worker_restarts += 1

    def record_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    # -- reporting ---------------------------------------------------------
    def tuning_snapshot(self) -> dict[str, object]:
        """One-lock consistent copy of counters + raw latency buckets.

        The ``repro.tune`` signal layer subtracts two of these to get an
        *exact* per-window view (including a window latency histogram
        from the raw bucket counts); taking everything under a single
        lock acquisition means no counter in the copy can be newer than
        another — the windowed summaries stay internally consistent even
        while recorder threads keep appending.
        """
        with self._lock:
            return {
                "requests": self.requests,
                "responses": self.responses,
                "shed": self.shed,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "writes": self.writes,
                "worker_restarts": self.worker_restarts,
                "per_shard_requests": list(self.per_shard_requests),
                "per_shard_batches": list(self.per_shard_batches),
                "queue_high_water": list(self.queue_high_water),
                "latency_counts": list(self.latency.counts),
                "latency_total": self.latency.total,
                "latency_sum_seconds": self.latency.sum_seconds,
                "latency_max_seconds": self.latency.max_seconds,
            }

    def snapshot(self, index_stats: IndexStats | None = None) -> dict[str, object]:
        """Plain-dict view: counters, per-shard arrays, latency, index costs.

        ``index_stats`` is typically the :meth:`IndexStats.merge` fold of
        the per-shard stats; its :meth:`IndexStats.snapshot` dict is
        embedded under ``"index"`` so one artifact carries both the
        serving-side and the index-side story.
        """
        with self._lock:
            avg_batch = self.batched_requests / self.batches if self.batches else 0.0
            out: dict[str, object] = {
                "requests": self.requests,
                "responses": self.responses,
                "shed": self.shed,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "avg_batch": avg_batch,
                "writes": self.writes,
                "worker_restarts": self.worker_restarts,
                "per_shard_requests": list(self.per_shard_requests),
                "per_shard_batches": list(self.per_shard_batches),
                "queue_high_water": list(self.queue_high_water),
                "latency": self.latency.snapshot(),
            }
        if index_stats is not None:
            out["index"] = index_stats.snapshot()
        return out
