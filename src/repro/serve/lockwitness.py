"""CI driver for the runtime lock-order witness: observe, dump, cross-check.

``python -m repro.serve.lockwitness out.json`` runs a short sanitized
serving workload (the same deterministic shape as the tier-1
cross-validation test: a built two-shard server answering lookups and
taking a write, plus a never-started coalescer forced to shed so the
one thread-backend lock nesting is exercised), then writes the runtime
lock-order graph the witness recorded — adjacency plus first-observation
notes — as a JSON artifact next to the static analyzer's
``--lock-graph`` dump, and exits nonzero if any runtime edge is missing
from the static graph.  The two artifacts diff cleanly in CI because
both use the same group names (``Class.attr``) for nodes.

Requires ``REPRO_SANITIZE=1`` in the environment (set it before Python
starts; lock factories read it at lock-creation time).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.core import lockorder, sanitize

__all__ = ["main", "run_witness_workload"]


def run_witness_workload() -> None:
    """Drive the serving stack so the witness observes its lock nestings."""
    from repro.bench.runner import ONE_DIM_FACTORIES
    from repro.serve.coalescer import Coalescer
    from repro.serve.requests import Op, Request
    from repro.serve.server import IndexServer
    from repro.serve.sharding import ShardedStore
    from repro.serve.stats import ServerStats

    factory = ONE_DIM_FACTORIES["b+tree"]
    data = np.sort(np.random.default_rng(7).uniform(0.0, 1e6, 512))

    server = IndexServer(factory, num_shards=2, max_batch=8,
                         max_delay=0.001, cache_size=16)
    server.build(data)
    try:
        for key in data[:64]:
            server.lookup(float(key))
        server.insert(float(data[0]) + 0.5, "v")
    finally:
        server.close()

    # Deterministic shed: with no workers the queue cannot drain, so the
    # second submit records Coalescer._conds -> ServerStats._lock.
    store = ShardedStore(factory, num_shards=1)
    store.build(data)
    coalescer = Coalescer(store, ServerStats(1), max_batch=4,
                          max_delay=0.001, capacity=1)
    coalescer.submit(Request(op=Op.LOOKUP, key=float(data[0])))
    coalescer.submit(Request(op=Op.LOOKUP, key=float(data[0])))
    coalescer.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.lockwitness",
        description="Run a sanitized serving workload and dump the runtime "
                    "lock-order graph; fail if it disagrees with the static one.",
    )
    parser.add_argument("output", type=Path,
                        help="path for the runtime lock-order graph JSON")
    parser.add_argument("--root", type=Path, default=Path.cwd(),
                        help="repository root for the static cross-check")
    args = parser.parse_args(argv)

    if not sanitize.enabled():
        print("lockwitness requires REPRO_SANITIZE=1 in the environment",
              file=sys.stderr)
        return 2

    lockorder.reset()
    run_witness_workload()
    graph = lockorder.order_graph()
    payload = {"edges": graph.snapshot(), "notes": graph.edge_notes()}
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                           encoding="utf-8")

    from repro.analysis.concurrency import static_lock_graph
    from repro.analysis.engine import build_context

    static_edges = {
        (e["from"], e["to"])
        for e in static_lock_graph(
            build_context(args.root.resolve(), use_registry=False)
        )["edges"]
    }
    runtime_edges = {
        (src, dst) for src, dsts in payload["edges"].items() for dst in dsts
    }
    missing = runtime_edges - static_edges
    print(f"runtime edges: {len(runtime_edges)}; static edges: "
          f"{len(static_edges)}; runtime-only: {len(missing)}")
    if missing:
        for src, dst in sorted(missing):
            print(f"runtime edge {src} -> {dst} is missing from the static "
                  f"lock graph", file=sys.stderr)
        return 1
    if not runtime_edges:
        print("witness observed no lock nesting; workload is broken",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
