"""Shared-memory shard snapshots: pack, attach, verify, unlink.

This module owns the *entire* lifecycle of the serving layer's
``multiprocessing.shared_memory`` segments (the RPR010 discipline —
creating or unlinking a segment anywhere else in ``repro.serve`` is a
lint error).  A shard's exported :class:`~repro.core.state.IndexState`
is packed into **one** segment per snapshot:

``[array 0 | pad | array 1 | pad | ... | pickled payload]``

and described by a small typed :class:`ShardManifest` — dtype, shape and
byte offset per array, payload extent, a sha256 over the packed bytes,
and the shard's write generation.  The manifest (not the data) travels
over the worker pipe; :func:`attach_view` maps the segment in the worker
process, verifies the digest, builds **zero-copy read-only** numpy views
over the buffer, and reconstructs a queryable index via
:func:`~repro.core.state.index_from_state` — no retraining, no array
copies.

Unlink discipline: the snapshot *owner* (the parent process) unlinks a
segment only after every worker has acknowledged remapping to its
successor; workers attach without registering with the resource tracker
(they never own the segment), so worker exit — clean or killed — neither
unlinks a live segment nor leaks a tracker complaint.
"""

from __future__ import annotations

import hashlib
import os
import secrets
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

from repro.core.artifact import read_artifact
from repro.core.state import IndexState, index_from_state, resolve_index_class

__all__ = [
    "SEGMENT_PREFIX",
    "ArraySpec",
    "ShardManifest",
    "SnapshotIntegrityError",
    "pack_state",
    "pack_artifact",
    "attach_view",
    "release_segment",
    "list_repro_segments",
]

#: Every segment this library creates carries this name prefix, so tests
#: and operators can audit ``/dev/shm`` for leaks unambiguously.
SEGMENT_PREFIX = "repro_serve_"

#: Array offsets are rounded up to this alignment inside a segment.
_ALIGN = 64


class SnapshotIntegrityError(RuntimeError):
    """A snapshot segment is missing, truncated, or fails its digest."""


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one exported array inside a snapshot segment."""

    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ShardManifest:
    """Typed description of one packed shard snapshot.

    Everything a worker needs to map the snapshot zero-copy: the segment
    name, per-array placement, the payload extent, an integrity digest
    over the packed bytes, and the generation the snapshot was taken at.
    """

    shm_name: str
    total_bytes: int
    sha256: str
    cls_module: str
    cls_qualname: str
    arrays: tuple[ArraySpec, ...]
    payload_offset: int
    payload_nbytes: int
    generation: int


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _segment_name() -> str:
    """A collision-free segment name carrying the audit prefix."""
    return f"{SEGMENT_PREFIX}{os.getpid():x}_{secrets.token_hex(6)}"


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    Workers map segments they do not own; letting their resource tracker
    register the attachment would unlink live segments (and spam leak
    warnings) when a worker exits.  Python 3.13 has ``track=False`` for
    exactly this.  On older versions attach-then-unregister is the
    documented dance, but forked workers share the parent's tracker
    cache (a set), so the unregister would also erase the *creator's*
    registration and the eventual unlink would trip a KeyError in the
    tracker; suppressing the attach-side register call keeps the cache
    balanced instead.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        pass
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def pack_state(state: IndexState, generation: int = 0) -> tuple[ShardManifest, shared_memory.SharedMemory]:
    """Pack an exported index state into one shared-memory segment.

    Returns the manifest plus the owning :class:`SharedMemory` handle.
    The caller owns the segment: it must eventually ``close()`` and
    ``unlink()`` it (the executor does this on snapshot retirement and
    on shutdown).
    """
    arrays = [np.ascontiguousarray(a) for a in state.arrays]
    specs: list[ArraySpec] = []
    offset = 0
    for arr in arrays:
        offset = _align(offset)
        specs.append(ArraySpec(dtype=arr.dtype.str, shape=tuple(arr.shape),
                               offset=offset if arr.nbytes else 0))
        offset += arr.nbytes
    payload_offset = _align(offset)
    total = payload_offset + len(state.payload)
    shm = shared_memory.SharedMemory(
        create=True, size=max(total, 1), name=_segment_name()
    )
    try:
        for spec, arr in zip(specs, arrays):
            if arr.nbytes:
                dst = np.ndarray(arr.shape, dtype=arr.dtype,
                                 buffer=shm.buf, offset=spec.offset)
                dst[...] = arr
                del dst  # release the buffer export before any close()
        shm.buf[payload_offset:total] = state.payload
        digest = hashlib.sha256(bytes(shm.buf[:total])).hexdigest()
    except Exception:
        shm.close()
        shm.unlink()
        raise
    manifest = ShardManifest(
        shm_name=shm.name,
        total_bytes=total,
        sha256=digest,
        cls_module=state.cls_module,
        cls_qualname=state.cls_qualname,
        arrays=tuple(specs),
        payload_offset=payload_offset,
        payload_nbytes=len(state.payload),
        generation=generation,
    )
    return manifest, shm


def pack_artifact(directory: str | Path,
                  generation: int = 0) -> tuple[ShardManifest, shared_memory.SharedMemory]:
    """Pack an on-disk artifact directly into a shared-memory segment.

    The cold-start path of the process backend: instead of re-exporting
    state from a live parent index, the artifact's files are sha256
    verified against its manifest (digest-before-map, via
    :func:`repro.core.artifact.read_artifact`) and their bytes copied
    straight from the read-only file mappings into the segment — the
    payload pickle is never loaded in the parent, and no index is
    reconstructed here.  Ownership contract is identical to
    :func:`pack_state`: the caller must eventually retire the returned
    segment through :func:`release_segment`.
    """
    return pack_state(read_artifact(directory, mmap_mode="r"), generation)


def attach_view(manifest: ShardManifest) -> tuple[object, shared_memory.SharedMemory]:
    """Map a snapshot segment and reconstruct a read-only index view.

    Verifies the manifest's sha256 over the mapped bytes before trusting
    any of them, then builds zero-copy non-writeable array views and
    reconstructs the index without retraining.  Returns ``(view, shm)``;
    the caller must keep ``shm`` alive as long as the view is queried,
    and ``close()`` (never ``unlink()`` — workers do not own segments)
    when done.
    """
    try:
        shm = _attach_untracked(manifest.shm_name)
    except FileNotFoundError:
        raise SnapshotIntegrityError(
            f"snapshot segment {manifest.shm_name!r} does not exist "
            "(already unlinked?)"
        ) from None
    arrays: list[np.ndarray] = []
    try:
        if shm.size < manifest.total_bytes:
            raise SnapshotIntegrityError(
                f"segment {manifest.shm_name!r} holds {shm.size} bytes, "
                f"manifest says {manifest.total_bytes}"
            )
        digest = hashlib.sha256(bytes(shm.buf[:manifest.total_bytes])).hexdigest()
        if digest != manifest.sha256:
            raise SnapshotIntegrityError(
                f"segment {manifest.shm_name!r} sha256 mismatch: "
                f"{digest[:12]}... != {manifest.sha256[:12]}..."
            )
        for spec in manifest.arrays:
            arr = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                             buffer=shm.buf, offset=spec.offset)
            arr.flags.writeable = False
            arrays.append(arr)
        payload = bytes(
            shm.buf[manifest.payload_offset:
                    manifest.payload_offset + manifest.payload_nbytes]
        )
        state = IndexState(
            cls_module=manifest.cls_module,
            cls_qualname=manifest.cls_qualname,
            arrays=arrays,
            payload=payload,
        )
        # Go through the class's from_state so subclass overrides (e.g.
        # skip-list chain rebuilding) run; fall back to the generic path
        # for classes without one.
        cls = resolve_index_class(state)
        from_state = getattr(cls, "from_state", None)
        view = from_state(state) if callable(from_state) else index_from_state(state)
    except Exception:
        arrays.clear()  # drop buffer exports so close() cannot raise BufferError
        shm.close()
        raise
    return view, shm


def release_segment(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink an *owned* segment (the owner-side retirement path).

    Owners (the executor, tests) retire segments through this helper so
    the create/unlink lifecycle stays confined to this module — the
    RPR010 rule flags direct ``SharedMemory(create=...)`` / ``unlink()``
    calls elsewhere in the serving layer.  Never call this from a worker:
    workers only ever ``close()`` their attachments.
    """
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


def list_repro_segments() -> list[str]:
    """Names of live ``repro_serve_*`` segments (Linux ``/dev/shm`` audit).

    Returns an empty list on platforms without a ``/dev/shm`` mount; the
    CI leak guard treats that as "nothing to check".
    """
    root = Path("/dev/shm")
    if not root.is_dir():
        return []
    return sorted(p.name for p in root.glob(f"{SEGMENT_PREFIX}*"))
