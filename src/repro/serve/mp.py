"""Multi-process shard execution: batch kernels outside the GIL.

The thread-backed coalescer (PR 5) fuses same-op runs into one batch
kernel call per run, but every kernel still executes under one CPython
GIL: with ``N`` shard workers, at most one is inside numpy's Python-level
glue at a time.  This module moves batch execution into **worker
processes**, one per shard:

* the parent exports each shard's built state
  (:meth:`~repro.core.interfaces.OneDimIndex.export_state`), packs it
  into a shared-memory segment (:func:`repro.serve.shm.pack_state`), and
  spawns a worker that maps the segment zero-copy and reconstructs a
  read-only view (:func:`repro.serve.shm.attach_view`) — no retraining,
  no array copies, ``N`` processes sharing one copy of the data;
* the coalescer's per-shard dispatch threads ship fused same-op windows
  over a ``multiprocessing`` pipe and block on the reply — a blocking
  ``recv`` releases the GIL, so all shards' kernels genuinely run in
  parallel;
* **writes never leave the parent**: the parent's ShardedStore remains
  the single owner of every shard, mutations bump the existing per-shard
  generation counters, and a dirty shard is re-published (snapshot →
  remap → unlink predecessor) before the next window is dispatched to
  its worker — a worker therefore never serves a read issued after a
  write against pre-write state.

Failure containment: a worker that dies mid-window (killed, OOM, bug)
surfaces as :class:`WorkerDied` to the dispatching thread, which the
coalescer converts into typed :class:`~repro.serve.requests.WorkerError`
responses for every in-flight request of that window; the executor
restarts the worker from a fresh snapshot behind the scenes and counts
the restart in :class:`~repro.serve.stats.ServerStats`.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from functools import reduce
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.interfaces import IndexStats
from repro.core.lockorder import make_lock
from repro.serve.requests import Op, Request
from repro.serve.shm import (
    ShardManifest,
    attach_view,
    pack_artifact,
    pack_state,
    release_segment,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection
    from multiprocessing.shared_memory import SharedMemory

    from repro.serve.sharding import ShardedStore
    from repro.serve.stats import ServerStats

__all__ = ["ProcessShardExecutor", "WorkerDied"]

#: How long the parent waits for a worker reply before declaring it hung.
_REPLY_TIMEOUT = 30.0

#: Poll granularity while waiting on a worker pipe (keeps crash detection
#: prompt without busy-waiting).
_POLL_INTERVAL = 0.05


class WorkerDied(RuntimeError):
    """A shard worker process exited or stopped replying mid-request.

    Raised to the dispatching thread; the coalescer converts it into
    typed :class:`~repro.serve.requests.WorkerError` responses instead
    of letting it unwind through client futures.
    """

    def __init__(self, shard: int, reason: str) -> None:
        super().__init__(f"shard {shard} worker died: {reason}")
        self.shard = shard
        self.reason = reason


def _shard_worker_main(conn: "Connection", manifest: ShardManifest) -> None:
    """Worker process entry point: serve batch windows from a mapped view.

    The worker owns nothing: it maps the snapshot segment read-only,
    answers ``batch`` messages with the view's batch kernels, remaps on
    ``remap`` (closing its old mapping; the parent unlinks), and reports
    its query-cost counters as *deltas* on ``stats``.  Request-level
    errors travel back pickled inside ``("err", ...)`` replies; the loop
    itself only exits on ``stop``, a closed pipe, or ``crash`` (the
    fault-injection hook used by the serve-mp tests).
    """
    view, shm = attach_view(manifest)
    view.stats = IndexStats()  # type: ignore[attr-defined]  # fresh deltas; size/build stay parent-owned
    generation = manifest.generation
    conn.send(("ready", os.getpid(), generation))
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "batch":
                _, op, payload = message
                try:
                    values = _run_batch(view, op, payload)
                    conn.send(("ok", values))
                except BaseException as exc:
                    conn.send(("err", _picklable(exc)))
            elif kind == "remap":
                _, new_manifest = message
                try:
                    new_view, new_shm = attach_view(new_manifest)
                    new_view.stats = view.stats  # type: ignore[attr-defined]  # carry deltas across snapshots
                    view, old_shm = new_view, shm
                    shm = new_shm
                    generation = new_manifest.generation
                    old_shm.close()
                    conn.send(("ok", generation))
                except BaseException as exc:
                    conn.send(("err", _picklable(exc)))
            elif kind == "stats":
                delta = view.stats  # type: ignore[attr-defined]
                view.stats = IndexStats()  # type: ignore[attr-defined]
                conn.send(("ok", delta))
            elif kind == "ping":
                conn.send(("ok", (os.getpid(), generation)))
            elif kind == "crash":
                os._exit(13)
            elif kind == "stop":
                conn.send(("ok", None))
                break
            else:  # pragma: no cover - protocol defect
                conn.send(("err", ValueError(f"unknown message {kind!r}")))
    finally:
        del view
        shm.close()
        conn.close()


def _run_batch(view: object, op: Op, payload: object) -> list[object]:
    """Answer one fused same-op window against the mapped view."""
    if op is Op.LOOKUP:
        keys = np.asarray(payload, dtype=np.float64)
        return list(view.lookup_batch(keys))  # type: ignore[attr-defined]
    if op is Op.CONTAINS:
        keys = np.asarray(payload, dtype=np.float64)
        return [bool(b) for b in view.contains_batch(keys)]  # type: ignore[attr-defined]
    if op is Op.POINT_QUERY:
        pts = np.asarray(payload, dtype=np.float64)
        return list(view.point_query_batch(pts))  # type: ignore[attr-defined]
    raise ValueError(f"op {op!r} is not process-dispatchable")


def _picklable(exc: BaseException) -> BaseException:
    """The exception itself if it pickles, else a RuntimeError stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


class ProcessShardExecutor:
    """One worker process per shard, fed snapshots over shared memory.

    The executor sits between the coalescer and the store: fused windows
    go to the shard's worker process; everything else (scalar requests,
    fan-out reads, all writes) stays on the parent's store.  Lock
    discipline: each shard's pipe is guarded by its own
    ``threading.Lock`` (one request/reply in flight per worker; the
    coalescer's per-shard dispatch threads are the only callers, so the
    lock is uncontended in steady state), and snapshot exports take the
    store's shard lock so a snapshot never observes a half-applied
    write.

    Args:
        store: the built :class:`~repro.serve.sharding.ShardedStore`.
        stats: the server's :class:`~repro.serve.stats.ServerStats`
            (worker restarts are counted there).
        reply_timeout: seconds to wait for a worker reply before
            declaring the worker hung and restarting it.
    """

    def __init__(self, store: "ShardedStore", stats: "ServerStats",
                 reply_timeout: float = _REPLY_TIMEOUT) -> None:
        self.store = store
        self.stats = stats
        self.reply_timeout = reply_timeout
        n = store.num_shards
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        self._pipe_locks = [make_lock("ProcessShardExecutor._pipe_locks", rank=s)
                            for s in range(n)]
        # Executor-level lifecycle + observability state; ordered after
        # the pipe locks (_restart reads _closed while a pipe is held),
        # never taken before one.
        self._state_lock = make_lock("ProcessShardExecutor._state_lock")
        self._procs: list[object | None] = [None] * n
        self._conns: list["Connection | None"] = [None] * n
        self._segments: list["SharedMemory | None"] = [None] * n
        self._published: list[int] = [-1] * n
        self._worker_stats = [IndexStats() for _ in range(n)]
        self._started = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Snapshot every shard and spawn its worker process (idempotent).

        Call *before* starting the coalescer threads so the workers fork
        from a single-threaded parent.
        """
        with self._state_lock:
            if self._started:
                return
            self._started = True
        for shard in range(self.store.num_shards):
            with self._pipe_locks[shard]:
                self._spawn(shard)

    def close(self) -> None:
        """Stop workers, then close and unlink every owned segment.

        Idempotent; the closed flag flips under the state lock *before*
        any pipe lock is taken, so an in-flight dispatch that beats a
        pipe lock here completes (or restarts and raises) normally and a
        dispatch that loses the race fails with a typed
        :class:`WorkerDied` from :meth:`_restart` instead of hanging.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        for shard in range(self.store.num_shards):
            with self._pipe_locks[shard]:
                conn = self._conns[shard]
                proc = self._procs[shard]
                if conn is not None:
                    try:
                        conn.send(("stop",))
                        self._recv_reply(shard, timeout=2.0)
                    except Exception:
                        pass
                    conn.close()
                    self._conns[shard] = None
                if proc is not None:
                    proc.join(timeout=2.0)  # type: ignore[attr-defined]
                    if proc.is_alive():  # type: ignore[attr-defined]
                        proc.kill()  # type: ignore[attr-defined]
                        proc.join(timeout=2.0)  # type: ignore[attr-defined]
                    self._procs[shard] = None
                self._retire_segment(shard)

    def __enter__(self) -> "ProcessShardExecutor":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- snapshot publication ---------------------------------------------
    def _snapshot(self, shard: int) -> ShardManifest:
        """Export + pack one shard under its store lock; owns the segment.

        Replaces (closes **and unlinks**) any previously owned segment
        for the shard after the new one is packed, so at most two
        snapshots of a shard ever coexist and none outlive the executor.

        Shards that are still byte-identical to an on-disk artifact
        (restored via ``from_snapshot`` and unwritten since) are packed
        straight from the artifact files — the parent never re-exports
        state or touches the payload pickle on that path.
        """
        source, state, generation = self.store.snapshot_source(shard)
        if source is not None:
            manifest, segment = pack_artifact(source, generation)
        else:
            assert state is not None
            manifest, segment = pack_state(state, generation)
        old = self._segments[shard]
        self._segments[shard] = segment
        self._published[shard] = generation
        if old is not None:
            release_segment(old)
        return manifest

    def _spawn(self, shard: int) -> None:
        """Start (or restart) one shard worker from a fresh snapshot."""
        manifest = self._snapshot(shard)
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, manifest),
            name=f"serve-mp-shard-{shard}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[shard] = proc
        self._conns[shard] = parent_conn
        # Startup handshake without the restart-on-death machinery: a
        # worker that cannot even start must fail loudly, not respawn in
        # a loop.
        deadline = time.monotonic() + self.reply_timeout
        while True:
            try:
                if parent_conn.poll(_POLL_INTERVAL):
                    kind = parent_conn.recv()[0]
                    if kind != "ready":  # pragma: no cover - protocol defect
                        raise WorkerDied(shard, f"unexpected startup reply {kind!r}")
                    return
            except (EOFError, OSError):
                raise WorkerDied(shard, "worker closed its pipe at startup") from None
            if not proc.is_alive():
                raise WorkerDied(
                    shard, f"worker exited at startup (code {proc.exitcode})"
                )
            if time.monotonic() > deadline:  # pragma: no cover - hung spawn
                proc.kill()
                raise WorkerDied(shard, "worker did not become ready in time")

    def _sync_shard(self, shard: int) -> None:
        """Re-publish a dirty shard before dispatching to its worker.

        The store bumps ``generations[shard]`` under the shard lock on
        every write; comparing against the last published generation
        here (with the pipe lock held) guarantees a worker never answers
        a post-write read from pre-write state.
        """
        if self.store.generations[shard] == self._published[shard]:
            return
        manifest = self._snapshot(shard)
        conn = self._conns[shard]
        assert conn is not None
        conn.send(("remap", manifest))
        kind, value = self._recv_reply(shard, timeout=self.reply_timeout)
        if kind == "err":
            raise WorkerDied(shard, f"remap failed: {value!r}")

    # -- dispatch ----------------------------------------------------------
    def execute(self, request: Request) -> object:
        """Scalar fallback: runs on the parent store (always current)."""
        return self.store.execute(request)

    def execute_batch(self, shard: int, op: Op,
                      requests: Sequence[Request]) -> list[object]:
        """Ship one fused same-op window to the shard's worker process.

        The dispatching thread blocks on the pipe reply — releasing the
        GIL — while the worker runs the batch kernel against its mapped
        snapshot.  Raises :class:`WorkerDied` (after restarting the
        worker) if the process dies or stops replying; request-level
        exceptions raised inside the worker re-raise here unchanged, so
        the process backend fails identically to the thread backend.

        Queued runs were routed at enqueue time, so a tuner rebalance
        may have moved some keys off this shard while the run waited:
        routing is re-checked against the store's bounds, stray rows
        fall back to parent-side scalar execution (which re-routes
        safely), and the whole dispatch restarts if the bounds version
        moves between the re-check and the post-sync validation under
        the pipe lock — a version match *after* :meth:`_sync_shard`
        proves the worker's snapshot and the routing snapshot describe
        the same partition.
        """
        if op is Op.POINT_QUERY:
            payload: list[object] = [r.point for r in requests]
        else:
            payload = [float(r.key) for r in requests]  # type: ignore[arg-type]
        while True:
            version = self.store.bounds_version
            stray = self.store.stray_rows(shard, op, requests)
            if stray.size:
                stray_set = {int(i) for i in stray}
                shipped = [p for i, p in enumerate(payload) if i not in stray_set]
            else:
                shipped = payload
            with self._pipe_locks[shard]:
                self._guard_alive(shard)
                self._sync_shard(shard)
                if self.store.bounds_version != version:
                    continue  # rebalance mid-dispatch: re-route, re-sync
                conn = self._conns[shard]
                assert conn is not None
                try:
                    conn.send(("batch", op, shipped))
                except (BrokenPipeError, OSError) as exc:
                    self._restart(shard)
                    raise WorkerDied(shard, f"pipe broke on send: {exc}") from None
                kind, value = self._recv_reply(shard, timeout=self.reply_timeout)
            break
        if kind == "err":
            assert isinstance(value, BaseException)
            raise value
        if not stray.size:
            return value  # type: ignore[return-value]
        out: list[object] = [None] * len(requests)
        worker_values = iter(value)  # type: ignore[arg-type]
        for i in range(len(requests)):
            if i in stray_set:
                out[i] = self.store.execute(requests[i])
            else:
                out[i] = next(worker_values)
        return out

    def _guard_alive(self, shard: int) -> None:
        """Restart a worker found dead before any bytes are committed."""
        proc = self._procs[shard]
        if proc is None or not proc.is_alive():  # type: ignore[attr-defined]
            self._restart(shard)

    def _recv_reply(self, shard: int, timeout: float) -> tuple:
        """Wait for one reply, detecting worker death promptly.

        Polls the pipe in short intervals so a killed worker is noticed
        within ``_POLL_INTERVAL`` rather than after the full timeout; on
        death or timeout the worker is restarted from a fresh snapshot
        and :class:`WorkerDied` is raised to the caller.
        """
        conn = self._conns[shard]
        assert conn is not None
        proc = self._procs[shard]
        deadline = time.monotonic() + timeout
        while True:
            try:
                if conn.poll(_POLL_INTERVAL):
                    return conn.recv()
            except (EOFError, OSError):
                self._restart(shard)
                raise WorkerDied(shard, "pipe closed mid-reply") from None
            if proc is not None and not proc.is_alive():  # type: ignore[attr-defined]
                code = proc.exitcode  # type: ignore[attr-defined]
                self._restart(shard)
                raise WorkerDied(shard, f"process exited with code {code}")
            if time.monotonic() > deadline:
                self._restart(shard)
                raise WorkerDied(shard, f"no reply within {timeout:.1f}s")

    def _restart(self, shard: int) -> None:
        """Tear down a dead worker and spawn a successor (counted in stats)."""
        with self._state_lock:
            closed = self._closed
        if closed:
            raise WorkerDied(shard, "executor is closed")
        proc = self._procs[shard]
        conn = self._conns[shard]
        if conn is not None:
            conn.close()
            self._conns[shard] = None
        if proc is not None:
            if proc.is_alive():  # type: ignore[attr-defined]
                proc.kill()  # type: ignore[attr-defined]
            proc.join(timeout=2.0)  # type: ignore[attr-defined]
            self._procs[shard] = None
        self._spawn(shard)
        self.stats.record_worker_restart()

    # -- fault injection / introspection -----------------------------------
    def debug_crash(self, shard: int) -> None:
        """Ask a worker to die abruptly (``os._exit``) — test hook only."""
        with self._pipe_locks[shard]:
            conn = self._conns[shard]
            if conn is not None:
                conn.send(("crash",))

    def worker_generations(self) -> list[int]:
        """Each worker's currently mapped snapshot generation (via ping)."""
        out: list[int] = []
        for shard in range(self.store.num_shards):
            with self._pipe_locks[shard]:
                self._guard_alive(shard)
                conn = self._conns[shard]
                assert conn is not None
                conn.send(("ping",))
                kind, value = self._recv_reply(shard, timeout=self.reply_timeout)
            out.append(int(value[1]) if kind == "ok" else -1)
        return out

    def index_stats(self) -> IndexStats:
        """Fold of worker-side query-cost deltas across all shards.

        Drains each live worker's counters (a worker restarting loses at
        most one drain window of counters — acceptable for observability)
        and accumulates them per shard, so the fold is monotone across
        calls.  Size and build-time stay zero in worker deltas; the
        parent store owns those.
        """
        for shard in range(self.store.num_shards):
            with self._pipe_locks[shard]:
                conn = self._conns[shard]
                proc = self._procs[shard]
                if conn is None or proc is None or not proc.is_alive():  # type: ignore[attr-defined]
                    continue
                try:
                    conn.send(("stats",))
                    kind, value = self._recv_reply(shard, timeout=self.reply_timeout)
                except (WorkerDied, OSError):
                    continue
            if kind == "ok" and isinstance(value, IndexStats):
                with self._state_lock:
                    self._worker_stats[shard] = \
                        self._worker_stats[shard].merge(value)
        with self._state_lock:
            return reduce(IndexStats.merge, list(self._worker_stats), IndexStats())

    # -- internal ----------------------------------------------------------
    def _retire_segment(self, shard: int) -> None:
        """Release (close + unlink) the shard's owned segment, if any."""
        segment = self._segments[shard]
        if segment is not None:
            release_segment(segment)
            self._segments[shard] = None
