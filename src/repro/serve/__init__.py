"""repro.serve -- sharded, request-coalescing index-serving layer.

The serving layer turns the library's indexes into a concurrent service:
a :class:`ShardedStore` partitions keys (1-d range split) or points
(Z-order-prefix split) across index instances, a :class:`Coalescer`
batches concurrently submitted scalar requests into the ``*_batch``
kernels from PR 1/2, a :class:`ResultCache` short-circuits repeated
reads with generation-based write invalidation, and
:class:`ServerStats` records throughput and tail-latency histograms.
:class:`IndexServer` is the facade gluing them together; the
:mod:`repro.serve.workload` module provides seeded workload generators
and the closed-loop driver behind experiment E19.
"""

from repro.serve.cache import ResultCache
from repro.serve.coalescer import Coalescer
from repro.serve.requests import (
    COALESCABLE_OPS,
    READ_OPS,
    WRITE_OPS,
    Op,
    Overloaded,
    Request,
    Response,
)
from repro.serve.server import IndexServer
from repro.serve.sharding import ShardedStore
from repro.serve.stats import LatencyHistogram, ServerStats
from repro.serve.workload import WORKLOADS, make_workload, run_closed_loop

__all__ = [
    "Op",
    "Request",
    "Response",
    "Overloaded",
    "COALESCABLE_OPS",
    "READ_OPS",
    "WRITE_OPS",
    "ShardedStore",
    "Coalescer",
    "ResultCache",
    "LatencyHistogram",
    "ServerStats",
    "IndexServer",
    "WORKLOADS",
    "make_workload",
    "run_closed_loop",
]
