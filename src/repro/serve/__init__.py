"""repro.serve -- sharded, request-coalescing index-serving layer.

The serving layer turns the library's indexes into a concurrent service:
a :class:`ShardedStore` partitions keys (1-d range split) or points
(Z-order-prefix split) across index instances, a :class:`Coalescer`
batches concurrently submitted scalar requests into the ``*_batch``
kernels from PR 1/2, a :class:`ResultCache` short-circuits repeated
reads with generation-based write invalidation, and
:class:`ServerStats` records throughput and tail-latency histograms.
:class:`IndexServer` is the facade gluing them together; the
:mod:`repro.serve.workload` module provides seeded workload generators
and the closed-loop driver behind experiments E19/E20.

PR 6 adds a **multi-process backend**: :mod:`repro.serve.shm` packs each
shard's exported state into shared-memory snapshots and
:class:`ProcessShardExecutor` runs one worker process per shard mapping
those snapshots zero-copy, so fused batch windows execute outside the
GIL (``IndexServer(..., backend="process")``).
"""

from repro.serve.cache import ResultCache
from repro.serve.coalescer import Coalescer
from repro.serve.mp import ProcessShardExecutor, WorkerDied
from repro.serve.requests import (
    COALESCABLE_OPS,
    READ_OPS,
    WRITE_OPS,
    Op,
    Overloaded,
    Request,
    Response,
    WorkerError,
)
from repro.serve.server import IndexServer
from repro.serve.sharding import ShardedStore
from repro.serve.shm import ShardManifest, SnapshotIntegrityError, attach_view, pack_state
from repro.serve.stats import LatencyHistogram, ServerStats
from repro.serve.workload import WORKLOADS, make_workload, run_closed_loop

__all__ = [
    "Op",
    "Request",
    "Response",
    "Overloaded",
    "WorkerError",
    "COALESCABLE_OPS",
    "READ_OPS",
    "WRITE_OPS",
    "ShardedStore",
    "Coalescer",
    "ProcessShardExecutor",
    "WorkerDied",
    "ShardManifest",
    "SnapshotIntegrityError",
    "attach_view",
    "pack_state",
    "ResultCache",
    "LatencyHistogram",
    "ServerStats",
    "IndexServer",
    "WORKLOADS",
    "make_workload",
    "run_closed_loop",
]
