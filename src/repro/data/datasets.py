"""Named dataset registry with deterministic seeds.

Benchmarks refer to datasets by name (``"books"``, ``"osm"``, ...), so
every experiment can enumerate the same corpus the way SOSD does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data import distributions, spatial

__all__ = ["DatasetSpec", "DATASETS_1D", "DATASETS_ND", "load_1d", "load_nd"]


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset: generator + human description."""

    name: str
    generator: Callable[..., np.ndarray]
    description: str


DATASETS_1D: dict[str, DatasetSpec] = {
    "uniform": DatasetSpec("uniform", distributions.uniform_keys,
                           "uniform keys (easy: one linear model suffices)"),
    "normal": DatasetSpec("normal", distributions.normal_keys,
                          "gaussian keys (smooth nonlinear CDF)"),
    "lognormal": DatasetSpec("lognormal", distributions.lognormal_keys,
                             "lognormal keys (strong skew)"),
    "books": DatasetSpec("books", distributions.sosd_books,
                         "SOSD books analogue (lognormal popularity)"),
    "osm": DatasetSpec("osm", distributions.sosd_osm,
                       "SOSD osm_cellids analogue (clustered, gappy)"),
    "wiki": DatasetSpec("wiki", distributions.sosd_wiki,
                        "SOSD wiki_ts analogue (bursty timestamps)"),
    "fb": DatasetSpec("fb", distributions.sosd_fb,
                      "SOSD fb analogue (heavy-tailed ids)"),
    "zipf": DatasetSpec("zipf", distributions.zipf_gap_keys,
                        "Zipf-distributed gaps (local hardness)"),
}

DATASETS_ND: dict[str, DatasetSpec] = {
    "uniform": DatasetSpec("uniform", spatial.uniform_points,
                           "uniform points (grids shine)"),
    "clusters": DatasetSpec("clusters", spatial.gaussian_clusters,
                            "gaussian clusters (learned layouts shine)"),
    "skew": DatasetSpec("skew", spatial.skewed_points,
                        "exponential skew toward the origin"),
    "osm-like": DatasetSpec("osm-like", spatial.osm_like_points,
                            "cities + roads + noise mixture"),
    "correlated": DatasetSpec("correlated", spatial.correlated_points,
                              "linearly correlated dimensions"),
    "lattice": DatasetSpec("lattice", spatial.grid_lattice_points,
                           "regular lattice (adversarial for clustering)"),
}


def load_1d(name: str, n: int, seed: int = 0, **kwargs) -> np.ndarray:
    """Generate the named 1-d dataset with ``n`` unique keys."""
    try:
        spec = DATASETS_1D[name]
    except KeyError:
        raise KeyError(f"unknown 1-d dataset {name!r}; have {sorted(DATASETS_1D)}") from None
    return spec.generator(n, seed=seed, **kwargs)


def load_nd(name: str, n: int, seed: int = 0, **kwargs) -> np.ndarray:
    """Generate the named multi-dimensional dataset with ``n`` points."""
    try:
        spec = DATASETS_ND[name]
    except KeyError:
        raise KeyError(f"unknown n-d dataset {name!r}; have {sorted(DATASETS_ND)}") from None
    return spec.generator(n, seed=seed, **kwargs)
