"""Dataset and workload generators for the benchmark harness."""

from repro.data.datasets import DATASETS_1D, DATASETS_ND, DatasetSpec, load_1d, load_nd
from repro.data.queries import (
    MixedOp,
    insert_stream,
    knn_queries,
    mixed_workload,
    negative_lookups,
    point_lookups,
    range_queries_1d,
    range_queries_nd,
    zipf_lookups,
)

__all__ = [
    "DATASETS_1D",
    "DATASETS_ND",
    "DatasetSpec",
    "load_1d",
    "load_nd",
    "MixedOp",
    "insert_stream",
    "knn_queries",
    "mixed_workload",
    "negative_lookups",
    "point_lookups",
    "range_queries_1d",
    "range_queries_nd",
    "zipf_lookups",
]
