"""Multi-dimensional point-set generators.

Synthetic stand-ins for the spatial datasets (OSM, Tiger, taxi trips)
used by the learned multi-dimensional index literature.  The knobs that
drive index behaviour are clusteredness, skew, and inter-dimension
correlation; each generator controls exactly one of them.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_points",
    "gaussian_clusters",
    "skewed_points",
    "correlated_points",
    "osm_like_points",
    "grid_lattice_points",
]


def _dedupe(points: np.ndarray, n: int, rng: np.random.Generator,
            lo: float, hi: float) -> np.ndarray:
    """Remove duplicate rows and top up to exactly ``n`` points."""
    pts = np.unique(np.asarray(points, dtype=np.float64), axis=0)
    d = pts.shape[1]
    while pts.shape[0] < n:
        extra = rng.uniform(lo, hi, (n - pts.shape[0], d))
        pts = np.unique(np.concatenate([pts, extra]), axis=0)
    idx = rng.permutation(pts.shape[0])[:n]
    return pts[idx]


def uniform_points(n: int, dims: int = 2, seed: int = 0,
                   low: float = 0.0, high: float = 1000.0) -> np.ndarray:
    """Uniform points in a [low, high]^dims box."""
    rng = np.random.default_rng(seed)
    return _dedupe(rng.uniform(low, high, (int(n * 1.02), dims)), n, rng, low, high)


def gaussian_clusters(n: int, dims: int = 2, seed: int = 0, clusters: int = 10,
                      span: float = 1000.0, cluster_std: float = 15.0) -> np.ndarray:
    """Points drawn from a mixture of Gaussian clusters."""
    rng = np.random.default_rng(seed)
    centres = rng.uniform(0, span, (clusters, dims))
    assignment = rng.integers(0, clusters, int(n * 1.05))
    raw = centres[assignment] + rng.normal(0, cluster_std, (assignment.size, dims))
    return _dedupe(raw, n, rng, 0.0, span)


def skewed_points(n: int, dims: int = 2, seed: int = 0,
                  span: float = 1000.0, shape: float = 2.0) -> np.ndarray:
    """Exponentially skewed points: dense near the origin, sparse far out."""
    rng = np.random.default_rng(seed)
    raw = rng.exponential(span / shape / 4.0, (int(n * 1.05), dims))
    raw = np.minimum(raw, span)
    return _dedupe(raw, n, rng, 0.0, span)


def correlated_points(n: int, seed: int = 0, rho: float = 0.9,
                      span: float = 1000.0, dims: int = 2) -> np.ndarray:
    """Points whose dimensions are linearly correlated with strength rho.

    Dimension 0 is uniform; every other dimension is
    ``rho * dim0 + sqrt(1 - rho^2) * noise``.  At rho near 1 the data
    collapses toward the diagonal — the regime where uniform grids
    (Flood) waste cells and region-splitting (Tsunami) wins.
    """
    if not -1.0 <= rho <= 1.0:
        raise ValueError("rho must be in [-1, 1]")
    rng = np.random.default_rng(seed)
    m = int(n * 1.05)
    base = rng.uniform(0, span, m)
    cols = [base]
    for _ in range(dims - 1):
        noise = rng.uniform(0, span, m)
        cols.append(rho * base + np.sqrt(max(0.0, 1 - rho * rho)) * noise)
    raw = np.column_stack(cols)
    return _dedupe(raw, n, rng, 0.0, span)


def osm_like_points(n: int, seed: int = 0, span: float = 1000.0) -> np.ndarray:
    """OSM-like mixture: dense 'cities', linear 'roads', uniform noise."""
    rng = np.random.default_rng(seed)
    n_city = int(n * 0.6)
    n_road = int(n * 0.3)
    n_noise = n - n_city - n_road
    cities = gaussian_clusters(max(n_city, 1), seed=seed + 1, clusters=8,
                               span=span, cluster_std=span * 0.01)
    # Roads: points along random line segments.
    starts = rng.uniform(0, span, (12, 2))
    ends = rng.uniform(0, span, (12, 2))
    seg = rng.integers(0, 12, max(n_road, 1))
    t = rng.random(max(n_road, 1))[:, None]
    roads = starts[seg] * (1 - t) + ends[seg] * t + rng.normal(0, span * 0.002, (max(n_road, 1), 2))
    noise = rng.uniform(0, span, (max(n_noise, 1), 2))
    raw = np.concatenate([cities, roads, noise])
    return _dedupe(raw, n, rng, 0.0, span)


def grid_lattice_points(n: int, dims: int = 2, seed: int = 0,
                        span: float = 1000.0, jitter: float = 0.0) -> np.ndarray:
    """Points on a regular lattice (worst case for learned clustering)."""
    rng = np.random.default_rng(seed)
    side = int(np.ceil(n ** (1.0 / dims)))
    axes = [np.linspace(0, span, side) for _ in range(dims)]
    mesh = np.meshgrid(*axes, indexing="ij")
    pts = np.column_stack([m.ravel() for m in mesh])[: int(n * 1.2)]
    if jitter > 0:
        pts = pts + rng.normal(0, jitter, pts.shape)
    return _dedupe(pts, n, rng, 0.0, span)
