"""Query-workload generators for the benchmark harness.

Workloads follow the SOSD / "Benchmarking learned indexes" methodology:
point lookups over existing keys (optionally Zipf-skewed), negative
lookups, range queries with controlled selectivity, kNN queries, insert
streams, and mixed read/write streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Literal

import numpy as np

__all__ = [
    "point_lookups",
    "negative_lookups",
    "zipf_lookups",
    "range_queries_1d",
    "range_queries_nd",
    "knn_queries",
    "insert_stream",
    "MixedOp",
    "mixed_workload",
]


def point_lookups(keys: np.ndarray, count: int, seed: int = 0) -> np.ndarray:
    """Uniformly sampled existing keys."""
    rng = np.random.default_rng(seed)
    keys = np.asarray(keys)
    return keys[rng.integers(0, keys.shape[0], count)]


def negative_lookups(keys: np.ndarray, count: int, seed: int = 0) -> np.ndarray:
    """Keys guaranteed absent from ``keys`` (gap midpoints + out of range)."""
    rng = np.random.default_rng(seed)
    sorted_keys = np.sort(np.asarray(keys, dtype=np.float64))
    key_set = set(float(k) for k in sorted_keys)
    out: list[float] = []
    lo, hi = float(sorted_keys[0]), float(sorted_keys[-1])
    while len(out) < count:
        candidates = rng.uniform(lo - (hi - lo) * 0.1, hi + (hi - lo) * 0.1, count)
        for c in candidates:
            if float(c) not in key_set:
                out.append(float(c))
                if len(out) == count:
                    break
    return np.asarray(out)


def zipf_lookups(keys: np.ndarray, count: int, seed: int = 0, a: float = 1.3) -> np.ndarray:
    """Zipf-skewed lookups: a few hot keys dominate the workload."""
    rng = np.random.default_rng(seed)
    keys = np.asarray(keys)
    n = keys.shape[0]
    ranks = rng.zipf(a, count)
    hot_order = rng.permutation(n)
    idx = hot_order[np.minimum(ranks - 1, n - 1)]
    return keys[idx]


def range_queries_1d(keys: np.ndarray, count: int, selectivity: float,
                     seed: int = 0) -> list[tuple[float, float]]:
    """Ranges covering ~``selectivity`` fraction of the sorted key array.

    Ranges are anchored at random positions so every query returns
    approximately ``selectivity * n`` keys regardless of the key
    distribution.
    """
    if not 0.0 < selectivity <= 1.0:
        raise ValueError("selectivity must be in (0, 1]")
    rng = np.random.default_rng(seed)
    sorted_keys = np.sort(np.asarray(keys, dtype=np.float64))
    n = sorted_keys.size
    width = max(1, int(round(selectivity * n)))
    out = []
    for _ in range(count):
        start = int(rng.integers(0, max(n - width, 1)))
        out.append((float(sorted_keys[start]), float(sorted_keys[min(start + width - 1, n - 1)])))
    return out


def range_queries_nd(points: np.ndarray, count: int, selectivity: float,
                     seed: int = 0, skew_to: np.ndarray | None = None) -> list[tuple[np.ndarray, np.ndarray]]:
    """Axis-aligned boxes covering ~``selectivity`` of the data volume.

    Boxes are centred on data points (so they are never empty in
    clustered data); the side length is derived from the per-dimension
    extent as ``extent * selectivity^(1/d)``.  If ``skew_to`` is given,
    box centres are drawn near that location instead of uniformly.
    """
    if not 0.0 < selectivity <= 1.0:
        raise ValueError("selectivity must be in (0, 1]")
    rng = np.random.default_rng(seed)
    pts = np.asarray(points, dtype=np.float64)
    n, d = pts.shape
    extent = pts.max(axis=0) - pts.min(axis=0)
    extent[extent == 0] = 1.0
    side = extent * (selectivity ** (1.0 / d))
    out = []
    for _ in range(count):
        if skew_to is not None:
            centre = np.asarray(skew_to) + rng.normal(0, extent * 0.05, d)
        else:
            centre = pts[int(rng.integers(0, n))]
        lo = centre - side / 2
        hi = centre + side / 2
        out.append((lo, hi))
    return out


def knn_queries(points: np.ndarray, count: int, seed: int = 0) -> np.ndarray:
    """Query points jittered off existing data points."""
    rng = np.random.default_rng(seed)
    pts = np.asarray(points, dtype=np.float64)
    n, d = pts.shape
    extent = pts.max(axis=0) - pts.min(axis=0)
    extent[extent == 0] = 1.0
    base = pts[rng.integers(0, n, count)]
    return base + rng.normal(0, extent * 0.01, (count, d))


def insert_stream(existing: np.ndarray, count: int, seed: int = 0,
                  mode: Literal["uniform", "hotspot", "append"] = "uniform") -> np.ndarray:
    """New 1-d keys to insert, guaranteed distinct from ``existing``.

    Modes: ``uniform`` spreads inserts over the key range, ``hotspot``
    concentrates them in one decile, ``append`` generates strictly
    increasing keys past the current maximum (time-series ingest).
    """
    rng = np.random.default_rng(seed)
    keys = np.sort(np.asarray(existing, dtype=np.float64))
    lo, hi = float(keys[0]), float(keys[-1])
    existing_set = set(float(k) for k in keys)
    out: list[float] = []
    if mode == "append":
        step = (hi - lo) / max(keys.size, 1) or 1.0
        current = hi
        for _ in range(count):
            current += rng.exponential(step)
            out.append(current)
        return np.asarray(out)
    if mode == "hotspot":
        span = (hi - lo) or 1.0
        region_lo = lo + 0.45 * span
        region_hi = lo + 0.55 * span
    else:
        region_lo, region_hi = lo, hi
    while len(out) < count:
        for c in rng.uniform(region_lo, region_hi, count):
            cf = float(c)
            if cf not in existing_set:
                out.append(cf)
                existing_set.add(cf)
                if len(out) == count:
                    break
    return np.asarray(out)


@dataclass(frozen=True)
class MixedOp:
    """One operation of a mixed workload."""

    kind: Literal["read", "insert"]
    key: float


def mixed_workload(keys: np.ndarray, count: int, read_ratio: float,
                   seed: int = 0) -> Iterator[MixedOp]:
    """Interleaved reads (existing keys) and inserts (fresh keys).

    Yields exactly ``count`` operations with an expected ``read_ratio``
    fraction of reads; deterministic for a fixed seed.
    """
    if not 0.0 <= read_ratio <= 1.0:
        raise ValueError("read_ratio must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n_inserts = int(round(count * (1.0 - read_ratio)))
    inserts = insert_stream(keys, max(n_inserts, 1), seed=seed + 1)
    insert_iter = iter(inserts)
    reads = point_lookups(keys, count, seed=seed + 2)
    read_iter = iter(reads)
    for _ in range(count):
        if rng.random() < read_ratio:
            yield MixedOp("read", float(next(read_iter)))
        else:
            try:
                yield MixedOp("insert", float(next(insert_iter)))
            except StopIteration:
                yield MixedOp("read", float(next(read_iter)))
