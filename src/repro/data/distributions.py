"""One-dimensional key-set generators.

Synthetic stand-ins for the SOSD benchmark datasets the learned-index
literature evaluates on.  Each generator returns a *sorted, unique*
float64 key array with a deterministic seed; the named SOSD analogues
match the distributional character that drives learned-index behaviour:

* ``books``  — Amazon book popularity: lognormal (smooth but skewed CDF).
* ``osm``    — OpenStreetMap cell ids: heavily clustered with large gaps.
* ``wiki``   — Wikipedia edit timestamps: near-sequential with bursts.
* ``fb``     — Facebook user ids: uniform body with a heavy upper tail.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_keys",
    "normal_keys",
    "lognormal_keys",
    "zipf_gap_keys",
    "clustered_keys",
    "sequential_burst_keys",
    "heavy_tail_keys",
    "sosd_books",
    "sosd_osm",
    "sosd_wiki",
    "sosd_fb",
]


def _finalize(raw: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
    """Sort, dedupe, and adjust to exactly ``n`` unique keys.

    Excess keys are removed by random subsampling (never by trimming the
    ends, which would silently delete distribution tails).
    """
    keys = np.unique(raw.astype(np.float64))
    while keys.size < n:
        extra = rng.uniform(keys.min() if keys.size else 0.0,
                            (keys.max() if keys.size else 1.0) + 1.0,
                            n - keys.size)
        keys = np.unique(np.concatenate([keys, extra]))
    if keys.size > n:
        keep = rng.choice(keys.size, size=n, replace=False)
        keys = keys[np.sort(keep)]
    return keys


def uniform_keys(n: int, seed: int = 0, low: float = 0.0, high: float = 1e9) -> np.ndarray:
    """Uniformly distributed keys in [low, high]."""
    rng = np.random.default_rng(seed)
    return _finalize(rng.uniform(low, high, int(n * 1.05)), n, rng)


def normal_keys(n: int, seed: int = 0, mean: float = 0.0, std: float = 1e6) -> np.ndarray:
    """Gaussian keys (dense middle, sparse tails)."""
    rng = np.random.default_rng(seed)
    return _finalize(rng.normal(mean, std, int(n * 1.05)), n, rng)


def lognormal_keys(n: int, seed: int = 0, mu: float = 0.0, sigma: float = 2.0,
                   scale: float = 1e6) -> np.ndarray:
    """Lognormal keys — the classic hard case for single linear models."""
    rng = np.random.default_rng(seed)
    return _finalize(rng.lognormal(mu, sigma, int(n * 1.05)) * scale, n, rng)


def zipf_gap_keys(n: int, seed: int = 0, a: float = 1.5) -> np.ndarray:
    """Keys whose successive gaps follow a Zipf law (local hardness)."""
    rng = np.random.default_rng(seed)
    gaps = rng.zipf(a, n).astype(np.float64)
    return _finalize(np.cumsum(gaps), n, rng)


def clustered_keys(n: int, seed: int = 0, clusters: int = 50,
                   span: float = 1e9, cluster_width: float = 1e4) -> np.ndarray:
    """Keys grouped into dense clusters separated by large empty gaps."""
    rng = np.random.default_rng(seed)
    centres = rng.uniform(0, span, clusters)
    assignment = rng.integers(0, clusters, int(n * 1.1))
    raw = centres[assignment] + rng.normal(0, cluster_width, assignment.size)
    return _finalize(raw, n, rng)


def sequential_burst_keys(n: int, seed: int = 0, burst_prob: float = 0.02,
                          burst_size: int = 200) -> np.ndarray:
    """Mostly unit-gap sequential keys with occasional dense bursts.

    Models timestamp streams (wiki edits): long runs of near-regular
    arrivals punctuated by bursts of sub-unit gaps.
    """
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(100.0, int(n * 1.1))
    burst_mask = rng.random(gaps.size) < burst_prob
    gaps[burst_mask] = rng.exponential(0.05, int(burst_mask.sum()))
    return _finalize(np.cumsum(gaps), n, rng)


def heavy_tail_keys(n: int, seed: int = 0, tail_fraction: float = 0.01,
                    body_high: float = 1e8, tail_high: float = 1e15) -> np.ndarray:
    """Uniform body plus a tiny set of enormous outlier keys.

    The outliers force any single linear model's slope toward zero, which
    is what breaks naive learned indexes on the real ``fb`` dataset.
    """
    rng = np.random.default_rng(seed)
    n_tail = max(1, int(n * tail_fraction))
    body = rng.uniform(0, body_high, int((n - n_tail) * 1.05))
    tail = rng.uniform(body_high * 10, tail_high, n_tail)
    return _finalize(np.concatenate([body, tail]), n, rng)


def sosd_books(n: int, seed: int = 0) -> np.ndarray:
    """Synthetic analogue of SOSD ``books`` (lognormal popularity)."""
    return lognormal_keys(n, seed=seed, mu=8.0, sigma=1.5, scale=1.0)


def sosd_osm(n: int, seed: int = 0) -> np.ndarray:
    """Synthetic analogue of SOSD ``osm_cellids`` (clustered cell ids)."""
    return clustered_keys(n, seed=seed, clusters=max(20, n // 2000),
                          span=2**40, cluster_width=2**16)


def sosd_wiki(n: int, seed: int = 0) -> np.ndarray:
    """Synthetic analogue of SOSD ``wiki_ts`` (bursty timestamps)."""
    return sequential_burst_keys(n, seed=seed)


def sosd_fb(n: int, seed: int = 0) -> np.ndarray:
    """Synthetic analogue of SOSD ``fb`` (heavy-tailed user ids)."""
    return heavy_tail_keys(n, seed=seed)
