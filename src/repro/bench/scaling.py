"""E22 — empirical scaling witness for the complexity contracts.

The static analyzer (RPR301 in :mod:`repro.analysis.complexity`) proves
from the AST that no hot path *can* exceed its declared
:class:`~repro.core.taxonomy.ComplexityClass` — but an AST argument is
only as good as its cost model, and a docstring escape ("capacity
bounded", "duplicate-bounded", ...) is a claim, not a measurement.  This
module is the other half of the contract: it *runs* every registered
factory across a geometric n-sweep, counts the machine-independent work
per lookup (:class:`~repro.core.interfaces.IndexStats` counters — no
wall clocks, so the witness is deterministic and CI-stable), fits the
log-log slope of work against n, and compares the fitted class with the
contract declared in :data:`repro.core.complexity.CONTRACTS`.

Classification is deliberately coarse — the lattice has three rungs:

* slope < :data:`CONSTANT_SLOPE_MAX` — work does not grow: ``CONSTANT``;
* slope > :data:`LINEAR_SLOPE_MIN` — work grows like a power of n:
  ``LINEAR`` (a sqrt(n) hot path is a broken learned index, and the
  witness calls it what the contract cares about: not sublinear);
* anything between — ``LOGARITHMIC`` (an O(log n) series over this
  sweep has log-log slope ~0.1).

Consistency is asymmetric, matching the paper's thesis: a fitted class
*at or below* the declaration passes (an epsilon-bounded PGM lookup
legitimately measures flat), but a contract that declares ``LINEAR``
must *measure* linear — the scan controls (``linear-scan``, the fixed
lattice ``grid``) exist so E1/E7 speedups have an honest denominator,
and a "linear" control that stopped scanning would silently flatter
nothing at all.

The headline, ``sublinearity = max(0, 1 - slope)``, is ~1 for learned
indexes and ~0 for the scan controls; :mod:`repro.bench.compare` guards
it against regressions like every other experiment headline.

Run ``python -m repro.bench.scaling --smoke`` for the CI configuration
(every factory, small sweep, seconds-scale); the full sweep to 10^6
keys is for workstation runs.  Exit status 1 means at least one
contract was contradicted by measurement.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.bench.batch import _environment_metadata
from repro.bench.runner import (
    FILTER_FACTORIES,
    MULTI_DIM_FACTORIES,
    ONE_DIM_FACTORIES,
)
from repro.core.complexity import contract_for
from repro.core.taxonomy import ComplexityClass
from repro.data import load_1d, load_nd

__all__ = [
    "run_e22",
    "fit_loglog_slope",
    "classify_slope",
    "is_consistent",
    "DEFAULT_SIZES",
    "SMOKE_SIZES",
    "CONSTANT_SLOPE_MAX",
    "LINEAR_SLOPE_MIN",
]

#: Full geometric sweep (workstation runs; multi-d builds dominate).
DEFAULT_SIZES = (1_000, 10_000, 100_000, 1_000_000)

#: CI sweep: still geometric, still every factory, seconds-scale.
SMOKE_SIZES = (1_000, 4_000, 16_000)

#: Fitted slope below this is CONSTANT: the counters did not grow.
CONSTANT_SLOPE_MAX = 0.06

#: Fitted slope above this is LINEAR: work grows like a power of n.
LINEAR_SLOPE_MIN = 0.55

#: IndexStats fields summed into "work per operation".
_WORK_COUNTERS = (
    "comparisons",
    "keys_scanned",
    "nodes_visited",
    "model_predictions",
    "corrections",
)

#: Filters built over (n, d) point arrays instead of 1-d key arrays.
_POINT_FILTERS = frozenset({"spatial-lbf"})

#: Queries sampled (with a fixed seed) from the built data per size.
_DEFAULT_QUERIES = 256


# -- slope fitting ----------------------------------------------------------
def fit_loglog_slope(ns: Sequence[int], work: Sequence[float]) -> float:
    """Least-squares slope of ``log(work)`` against ``log(n)``.

    Zero/near-zero counter sums are floored at 1e-3 so an index that
    counts nothing (a pure hash probe) fits a flat line instead of
    feeding ``-inf`` into the regression.
    """
    xs = np.log(np.asarray(ns, dtype=np.float64))
    ys = np.log(np.maximum(np.asarray(work, dtype=np.float64), 1e-3))
    if xs.size < 2:
        raise ValueError("slope fit needs at least two sweep points")
    return float(np.polyfit(xs, ys, 1)[0])


def classify_slope(slope: float) -> ComplexityClass:
    """Map a fitted log-log slope onto the contract lattice."""
    if slope < CONSTANT_SLOPE_MAX:
        return ComplexityClass.CONSTANT
    if slope > LINEAR_SLOPE_MIN:
        return ComplexityClass.LINEAR
    return ComplexityClass.LOGARITHMIC


def is_consistent(declared: ComplexityClass, fitted: ComplexityClass) -> bool:
    """Whether a fitted class honours the declared contract.

    Fitted at-or-below the declaration passes; a ``LINEAR`` declaration
    (the scan controls) must measure exactly ``LINEAR`` — see the module
    docstring for why the check is asymmetric.
    """
    if declared is ComplexityClass.LINEAR:
        return fitted is ComplexityClass.LINEAR
    return fitted.order <= declared.order


# -- measurement ------------------------------------------------------------
def _work_per_op(index: object, run_queries: Callable[[], int]) -> float:
    """Counter sum per operation over one measured query batch."""
    stats = index.stats  # type: ignore[attr-defined]
    stats.reset_counters()
    count = run_queries()
    total = sum(getattr(stats, field) for field in _WORK_COUNTERS)
    stats.reset_counters()
    return total / max(count, 1)


def _measure_factory(space: str, name: str, factory: Callable[[], object],
                     sizes: Sequence[int], dataset: str, dims: int,
                     queries: int, seed: int) -> dict:
    """Sweep one factory and fit its lookup-path scaling."""
    index_probe = factory()
    cls = type(index_probe)
    qualname = f"{cls.__module__}.{cls.__qualname__}"
    contract = contract_for(qualname)
    if contract is None:
        raise KeyError(f"{qualname} has no entry in repro.core.complexity.CONTRACTS")
    declared = contract.lookup
    rng = np.random.default_rng(seed + 1)

    work: list[float] = []
    for n in sizes:
        index = factory()
        if space == "md" or (space == "filter" and name in _POINT_FILTERS):
            data = load_nd(dataset, n, dims=dims, seed=seed)
            sample = data[rng.integers(0, n, size=min(queries, n))]
        else:
            data = load_1d(dataset, n, seed=seed)
            sample = data[rng.integers(0, n, size=min(queries, n))]
        index.build(data)  # type: ignore[attr-defined]

        if space == "1d":
            def run() -> int:
                for key in sample:
                    index.lookup(float(key))  # type: ignore[attr-defined]
                return len(sample)
        elif space == "md":
            def run() -> int:
                for row in sample:
                    index.point_query(row)  # type: ignore[attr-defined]
                return len(sample)
        else:
            def run() -> int:
                for item in sample:
                    if name in _POINT_FILTERS:
                        index.might_contain(item)  # type: ignore[attr-defined]
                    else:
                        index.might_contain(float(item))  # type: ignore[attr-defined]
                return len(sample)

        work.append(_work_per_op(index, run))

    slope = fit_loglog_slope(sizes, work)
    fitted = classify_slope(slope)
    return {
        "space": space,
        "index": name,
        "qualname": qualname,
        "declared": declared.name,
        "fitted": fitted.name,
        "slope": slope,
        "sublinearity": max(0.0, 1.0 - slope),
        "consistent": is_consistent(declared, fitted),
        "ns": [int(n) for n in sizes],
        "work_per_op": [float(w) for w in work],
    }


def run_e22(sizes: Sequence[int] | str | None = None, dataset: str = "uniform",
            dims: int = 2, queries: int = _DEFAULT_QUERIES, seed: int = 7,
            out: str | None = "BENCH_scaling.json", smoke: bool = False,
            only: Sequence[str] | str | None = None) -> list[dict]:
    """E22: empirical scaling of counted work per lookup vs. n.

    Args:
        sizes: geometric n-sweep (sequence or comma string); defaults
            to :data:`SMOKE_SIZES` when ``smoke`` else
            :data:`DEFAULT_SIZES`.
        dataset: dataset name for both spaces.
        dims: dimensionality of the multi-d sweep.
        queries: lookups sampled from the built data per size.
        seed: RNG seed for datasets and query sampling.
        out: JSON artifact path, or ``None``/"" to skip writing.
        smoke: shrink the sweep to the seconds-scale CI configuration
            (every factory still runs — coverage is the point).
        only: factory names to restrict the sweep to (sequence or comma
            string); ``None`` runs the full registry.

    Returns:
        One row per registered factory with the fitted slope, the
        declared and fitted :class:`ComplexityClass`, and the
        per-size work series.
    """
    if sizes is None:
        sizes = SMOKE_SIZES if smoke else DEFAULT_SIZES
    if isinstance(sizes, str):
        sizes = [int(s) for s in sizes.split(",") if s]
    sizes = [int(s) for s in sizes]
    if len(sizes) < 2:
        raise ValueError("the scaling sweep needs at least two sizes")
    if isinstance(only, str):
        only = [s for s in only.split(",") if s]
    wanted = set(only) if only is not None else None

    rows: list[dict] = []
    for space, factories in (("1d", ONE_DIM_FACTORIES),
                             ("md", MULTI_DIM_FACTORIES),
                             ("filter", FILTER_FACTORIES)):
        for name, factory in factories.items():
            if wanted is not None and name not in wanted:
                continue
            rows.append(_measure_factory(space, name, factory, sizes,
                                         dataset, dims, queries, seed))
    if wanted is not None:
        missing = wanted - {row["index"] for row in rows}
        if missing:
            raise KeyError(f"unknown factory name(s): {sorted(missing)}")

    if out:
        payload = {
            "experiment": "E22",
            "dataset": dataset,
            "sizes": sizes,
            "dims": dims,
            "queries": queries,
            "seed": seed,
            "cpu_count": os.cpu_count(),
            "environment": _environment_metadata(),
            "results": {
                f"{row['space']}/{row['index']}": {
                    key: row[key]
                    for key in ("qualname", "declared", "fitted", "slope",
                                "sublinearity", "consistent", "ns",
                                "work_per_op")
                }
                for row in rows
            },
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    return rows


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: run the witness; exit 1 when a contract is contradicted."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.scaling",
        description="E22 empirical scaling witness for complexity contracts")
    parser.add_argument("--sizes", default=None,
                        help="comma-separated n-sweep (default: full sweep, "
                             "or the smoke sweep with --smoke)")
    parser.add_argument("--dataset", default="uniform")
    parser.add_argument("--dims", type=int, default=2)
    parser.add_argument("--queries", type=int, default=_DEFAULT_QUERIES)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_scaling.json",
                        help='artifact path ("" to skip writing)')
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-scale CI sweep (every factory, small n)")
    parser.add_argument("--only", default=None,
                        help="comma-separated factory names to restrict to")
    args = parser.parse_args(argv)

    rows = run_e22(sizes=args.sizes, dataset=args.dataset, dims=args.dims,
                   queries=args.queries, seed=args.seed, out=args.out or None,
                   smoke=args.smoke, only=args.only)
    bad = [row for row in rows if not row["consistent"]]
    for row in rows:
        marker = "ok " if row["consistent"] else "FAIL"
        print(f"[{marker}] {row['space']:>6}/{row['index']:<16} "
              f"slope={row['slope']:+.3f} fitted={row['fitted']:<11} "
              f"declared={row['declared']}")
    print(f"{len(rows)} factories, {len(bad)} contract violation(s)")
    if bad:
        for row in bad:
            print(f"  {row['qualname']}: declared {row['declared']}, "
                  f"measured slope {row['slope']:+.3f} ({row['fitted']})",
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
