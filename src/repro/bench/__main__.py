"""Command-line entry point: run any registered experiment.

Usage::

    python -m repro.bench list
    python -m repro.bench run E5
    python -m repro.bench run E1 --param n=5000 --param lookups=100 --csv
    python -m repro.bench E17 --smoke          # shorthand: id implies "run"
"""

from __future__ import annotations

import argparse
import inspect
import sys

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.report import render_table, to_csv


def _parse_param(raw: str) -> tuple[str, object]:
    if "=" not in raw:
        raise argparse.ArgumentTypeError(f"expected name=value, got {raw!r}")
    name, value = raw.split("=", 1)
    for cast in (int, float):
        try:
            return name, cast(value)
        except ValueError:
            continue
    return name, value


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the learned-index reproduction experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list registered experiments")
    run_parser = sub.add_parser("run", help="run one experiment by id")
    run_parser.add_argument("experiment", help="experiment id, e.g. E5 or F2")
    run_parser.add_argument("--param", action="append", type=_parse_param,
                            default=[], metavar="NAME=VALUE",
                            help="override an experiment parameter")
    run_parser.add_argument("--csv", action="store_true",
                            help="emit CSV instead of a table")
    run_parser.add_argument("--smoke", action="store_true",
                            help="shrink to a seconds-scale CI configuration "
                                 "(experiments that support it)")

    if argv is None:
        argv = sys.argv[1:]
    # `python -m repro.bench E17 ...` is shorthand for `run E17 ...`.
    if argv and argv[0].upper() in EXPERIMENTS:
        argv = ["run", *argv]
    args = parser.parse_args(argv)

    if args.command == "list":
        for exp in EXPERIMENTS.values():
            print(f"{exp.id:<4} {exp.description}")
        return 0

    params = dict(args.param)
    if args.smoke:
        runner = EXPERIMENTS[args.experiment.upper()].runner
        if "smoke" in inspect.signature(runner).parameters:
            params.setdefault("smoke", True)
    result = run_experiment(args.experiment, **params)
    if isinstance(result, str):
        print(result)
    elif args.csv:
        print(to_csv(result))
    else:
        print(render_table(result, title=EXPERIMENTS[args.experiment.upper()].description))
    return 0


if __name__ == "__main__":
    sys.exit(main())
