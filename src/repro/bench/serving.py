"""E19 — serving throughput and tail latency: coalesced vs. one-at-a-time.

E17/E18 measured the raw kernel gap between per-query loops and
vectorized batches.  E19 asks the systems question that motivates the
serving layer: when *concurrent clients* submit scalar requests, does
request coalescing recover the batch-kernel throughput, and what does it
cost in tail latency?  Both arms run through the identical
:class:`repro.serve.server.IndexServer` machinery — same shards, same
queues, same workers.  The coalesced arm submits pipelined windows and
drains up to ``max_batch`` requests per worker wakeup; the baseline arm
submits and executes one request at a time (``max_batch=1``), which is
exactly how a scalar-only server behaves.  Results for
1-d and multi-d learned indexes (plus classical controls) across shard
counts land in ``BENCH_serve.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.bench.batch import _environment_metadata
from repro.bench.runner import MULTI_DIM_FACTORIES, ONE_DIM_FACTORIES
from repro.data import load_1d, load_nd
from repro.serve.server import IndexServer
from repro.serve.workload import WORKLOADS, make_workload, run_closed_loop

__all__ = ["run_e19", "DEFAULT_E19_ONE_DIM", "DEFAULT_E19_MULTI_DIM"]

#: 1-d serving contenders: learned indexes plus the sorted-array control.
DEFAULT_E19_ONE_DIM = ("rmi", "pgm", "alex", "binary-search")

#: Multi-d serving contenders: learned indexes plus the KD-tree control.
DEFAULT_E19_MULTI_DIM = ("zm-index", "flood", "grid", "kd-tree")


def _parse_names(value, default: tuple[str, ...], registry: dict) -> list[str]:
    """Normalize an index-name selection (sequence or comma string).

    ``None`` selects the defaults; an explicit empty value (``""`` or
    ``[]``) selects no contenders for that space.
    """
    if value is None:
        names = list(default)
    elif isinstance(value, str):
        names = [name for name in value.split(",") if name]
    else:
        names = list(value)
    unknown = [name for name in names if name not in registry]
    if unknown:
        raise KeyError(f"unknown indexes {unknown!r}; have {sorted(registry)}")
    return names


def _serve_once(factory, data, requests, *, num_shards: int, max_batch: int,
                max_delay: float, capacity: int, cache_size: int,
                clients: int, pipeline: int, batch_submit: bool) -> dict:
    """Build a server, drive the workload, return driver + server stats."""
    t0 = time.perf_counter()
    server = IndexServer(
        factory, num_shards=num_shards, max_batch=max_batch,
        max_delay=max_delay, capacity=capacity, cache_size=cache_size,
    ).build(data)
    build_s = time.perf_counter() - t0
    try:
        driven = run_closed_loop(server, requests, clients=clients,
                                 pipeline=pipeline, batch_submit=batch_submit)
        stats = server.stats()
    finally:
        server.close()
    latency = stats["latency"]
    return {
        "build_s": build_s,
        "ops_per_s": driven["ops_per_s"],
        "completed": driven["completed"],
        "shed": driven["shed"],
        "avg_batch": stats["avg_batch"],
        "cache_hits": stats["cache_hits"],
        "p50_us": latency["p50_us"],  # type: ignore[index]
        "p95_us": latency["p95_us"],  # type: ignore[index]
        "p99_us": latency["p99_us"],  # type: ignore[index]
    }


def run_e19(n: int = 100000, requests: int = 20000, dims: int = 2,
            dataset: str = "uniform", workload: str = "zipfian",
            shards=(1, 4), clients: int = 8, pipeline: int = 64,
            max_batch: int = 512, max_delay: float = 0.002,
            capacity: int = 1 << 20, cache_size: int = 0,
            indexes=None, indexes_md=None, seed: int = 1,
            out: str | None = "BENCH_serve.json",
            smoke: bool = False) -> list[dict]:
    """E19: serving throughput/tail latency, coalesced vs. one-at-a-time.

    Args:
        n: keys (1-d) / points (multi-d) per store.
        requests: workload length per measurement arm.
        dims: dimensionality of the multi-d stores.
        dataset: dataset name for both spaces (``load_1d`` / ``load_nd``).
        workload: generator name from :data:`repro.serve.workload.WORKLOADS`
            (default read-only ``zipfian``, safe for immutable indexes).
        shards: shard counts to sweep (sequence or comma string).
        clients: concurrent closed-loop client threads.
        pipeline: requests each client keeps in flight.
        max_batch: coalescing window of the coalesced arm (the baseline
            arm always runs ``max_batch=1, max_delay=0``).
        max_delay: window fill timeout (seconds) of the coalesced arm.
        capacity: per-shard admission queue bound (high by default so
            E19 measures latency rather than shedding).
        cache_size: result-cache entries (0 keeps the cache out of the
            throughput story; the zipfian workload would otherwise let
            the cache answer most of the hot keys).
        indexes / indexes_md: 1-d / multi-d contender names (sequence or
            comma string); empty string selects none for that space.
        seed: RNG seed for data and workload.
        out: JSON artifact path, or ``None``/"" to skip writing.
        smoke: shrink to a seconds-scale CI configuration.

    Returns:
        One row per (space, index, shard count) with both arms' numbers.
    """
    if smoke:
        n = min(n, 4000)
        requests = min(requests, 2500)
        shards = (2,)
        clients = min(clients, 4)
        pipeline = min(pipeline, 32)
        max_batch = min(max_batch, 256)
    if isinstance(shards, str):
        shards = [int(s) for s in shards.split(",") if s]
    shard_counts = [int(s) for s in shards]
    if workload not in WORKLOADS:
        raise KeyError(f"unknown workload {workload!r}; have {sorted(WORKLOADS)}")
    names_1d = _parse_names(indexes, DEFAULT_E19_ONE_DIM, ONE_DIM_FACTORIES)
    names_md = _parse_names(indexes_md, DEFAULT_E19_MULTI_DIM, MULTI_DIM_FACTORIES)

    keys = load_1d(dataset, n, seed=seed)
    points = load_nd(dataset, n, dims=dims, seed=seed)
    reqs_1d = make_workload(workload, keys, requests, seed=seed + 1)
    reqs_md = make_workload(workload, points, requests, seed=seed + 1, multi_dim=True)

    spaces = (
        [("1d", name, ONE_DIM_FACTORIES[name], keys, reqs_1d) for name in names_1d]
        + [("md", name, MULTI_DIM_FACTORIES[name], points, reqs_md) for name in names_md]
    )

    rows = []
    for space, name, factory, data, work in spaces:
        for num_shards in shard_counts:
            common = dict(num_shards=num_shards, capacity=capacity,
                          cache_size=cache_size, clients=clients, pipeline=pipeline)
            coalesced = _serve_once(factory, data, work, max_batch=max_batch,
                                    max_delay=max_delay, batch_submit=True,
                                    **common)
            serial = _serve_once(factory, data, work, max_batch=1,
                                 max_delay=0.0, batch_submit=False, **common)
            rows.append({
                "space": space,
                "index": name,
                "dataset": dataset,
                "workload": workload,
                "n": n,
                "requests": requests,
                "shards": num_shards,
                "clients": clients,
                "pipeline": pipeline,
                "max_batch": max_batch,
                "max_delay_ms": max_delay * 1e3,
                "coalesced": coalesced,
                "serial": serial,
                "speedup": (coalesced["ops_per_s"] / serial["ops_per_s"]
                            if serial["ops_per_s"] else 0.0),
            })

    if out:
        payload = {
            "experiment": "E19",
            "dataset": dataset,
            "workload": workload,
            "n": n,
            "requests": requests,
            "dims": dims,
            "seed": seed,
            "environment": _environment_metadata(),
            "results": {
                f"{row['space']}/{row['index']}/shards={row['shards']}": {
                    key: row[key]
                    for key in ("coalesced", "serial", "speedup",
                                "clients", "pipeline", "max_batch")
                }
                for row in rows
            },
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    return rows
