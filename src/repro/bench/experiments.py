"""The experiment registry: one entry per table/figure in EXPERIMENTS.md.

Paper artifacts F1-F3 and T1 regenerate the tutorial's figures from the
registry; experiments E1-E12 form the benchmark suite the paper's §6.8
calls for (1-d methodology mirroring SOSD, plus the missing
multi-dimensional benchmark).  Every function returns a list of row
dicts; render with :func:`repro.bench.report.render_table`.

Scale parameters default to laptop-friendly sizes; the pytest-benchmark
targets in ``benchmarks/`` call these with their defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines import BloomFilter
from repro.bench.runner import (
    MULTI_DIM_FACTORIES,
    MUTABLE_MULTI_DIM_FACTORIES,
    MUTABLE_ONE_DIM_FACTORIES,
    ONE_DIM_FACTORIES,
    build_index,
    measure_inserts,
    measure_lookups,
    measure_range_queries,
)
from repro.core.spectrum import render_spectrum
from repro.core.summary import render_ml_summary, render_query_summary
from repro.core.timeline import render_timeline
from repro.core.tree_render import render_taxonomy
from repro.data import (
    insert_stream,
    knn_queries,
    load_1d,
    load_nd,
    mixed_workload,
    negative_lookups,
    point_lookups,
    range_queries_nd,
)
from repro.multidim import FloodIndex, TsunamiIndex
from repro.onedim import (
    LearnedBloomFilter,
    PartitionedLearnedBloomFilter,
    PGMIndex,
    SandwichedLearnedBloomFilter,
)

__all__ = ["EXPERIMENTS", "Experiment", "run_experiment"] + [
    f"run_e{i}" for i in range(1, 13)
]

_1D_DATASETS = ("uniform", "lognormal", "books", "osm", "wiki", "fb")
_ND_DATASETS = ("uniform", "clusters", "skew", "osm-like")


# ---------------------------------------------------------------------------
# E1 - E6: one-dimensional suite
# ---------------------------------------------------------------------------

def run_e1(n: int = 50000, lookups: int = 1000, datasets=_1D_DATASETS,
           indexes=None, seed: int = 1) -> list[dict]:
    """E1: point-lookup latency, every 1-d index x every distribution."""
    rows = []
    names = indexes or list(ONE_DIM_FACTORIES)
    for ds in datasets:
        keys = load_1d(ds, n, seed=seed)
        queries = point_lookups(keys, lookups, seed=seed + 1)
        for name in names:
            index, build_s = build_index(ONE_DIM_FACTORIES[name], keys)
            metrics = measure_lookups(index, queries)
            rows.append({
                "dataset": ds,
                "index": name,
                "lookup_us": metrics["lookup_us"],
                "cmp_per_op": metrics["cmp_per_op"],
                "hits": metrics["hits"],
            })
    return rows


def run_e2(n: int = 50000, datasets=_1D_DATASETS, indexes=None, seed: int = 1) -> list[dict]:
    """E2: index size and build time per 1-d index and distribution."""
    rows = []
    names = indexes or list(ONE_DIM_FACTORIES)
    for ds in datasets:
        keys = load_1d(ds, n, seed=seed)
        for name in names:
            index, build_s = build_index(ONE_DIM_FACTORIES[name], keys)
            rows.append({
                "dataset": ds,
                "index": name,
                "build_s": build_s,
                "size_bytes": index.stats.size_bytes,
                "bytes_per_key": index.stats.size_bytes / n,
            })
    return rows


def run_e3(n: int = 20000, inserts: int = 10000, indexes=None,
           mode: str = "uniform", seed: int = 1) -> list[dict]:
    """E3: insert throughput of the mutable 1-d indexes."""
    rows = []
    names = indexes or list(MUTABLE_ONE_DIM_FACTORIES)
    keys = load_1d("lognormal", n, seed=seed)
    stream = insert_stream(keys, inserts, seed=seed + 1, mode=mode)
    for name in names:
        index, _ = build_index(MUTABLE_ONE_DIM_FACTORIES[name], keys)
        metrics = measure_inserts(index, stream)
        # Post-insert read check: learned in-place vs delta-buffer designs
        # differ most in read latency *after* inserts.
        reads = point_lookups(stream, min(1000, inserts), seed=seed + 2)
        read_metrics = measure_lookups(index, reads)
        rows.append({
            "index": name,
            "insert_mode": mode,
            "inserts_per_s": metrics["inserts_per_s"],
            "post_insert_lookup_us": read_metrics["lookup_us"],
        })
    return rows


def run_e4(n: int = 20000, ops: int = 8000, indexes=None, seed: int = 1,
           read_ratios=(0.0, 0.5, 0.9, 1.0)) -> list[dict]:
    """E4: mixed read/write workloads over the mutable 1-d indexes."""
    import time as _time

    rows = []
    names = indexes or list(MUTABLE_ONE_DIM_FACTORIES)
    keys = load_1d("lognormal", n, seed=seed)
    for ratio in read_ratios:
        workload = list(mixed_workload(keys, ops, ratio, seed=seed + 3))
        for name in names:
            index, _ = build_index(MUTABLE_ONE_DIM_FACTORIES[name], keys)
            start = _time.perf_counter()
            for op in workload:
                if op.kind == "read":
                    index.lookup(op.key)
                else:
                    index.insert(op.key, None)
            elapsed = _time.perf_counter() - start
            rows.append({
                "index": name,
                "read_ratio": ratio,
                "ops_per_s": ops / elapsed if elapsed > 0 else 0.0,
            })
    return rows


def run_e5(n: int = 100000, lookups: int = 1000, seed: int = 1,
           epsilons=(8, 16, 32, 64, 128, 256)) -> list[dict]:
    """E5: the PGM epsilon trade-off (size vs latency vs segments)."""
    rows = []
    keys = load_1d("books", n, seed=seed)
    queries = point_lookups(keys, lookups, seed=seed + 1)
    for epsilon in epsilons:
        index, build_s = build_index(lambda: PGMIndex(epsilon=epsilon), keys)
        metrics = measure_lookups(index, queries)
        rows.append({
            "epsilon": epsilon,
            "segments": index.num_segments,
            "levels": index.num_levels,
            "size_bytes": index.stats.size_bytes,
            "lookup_us": metrics["lookup_us"],
            "cmp_per_op": metrics["cmp_per_op"],
            "build_s": build_s,
        })
    return rows


def run_e6(n: int = 20000, seed: int = 1,
           bits_per_key=(6, 8, 10, 12, 16)) -> list[dict]:
    """E6: Bloom-filter family FPR at equal bit budgets.

    Keys are clustered (learnable structure); negatives are uniform over
    the same range — the regime where learned filters beat classical
    ones.  Zero false negatives is asserted by the test suite, not here.
    """
    rows = []
    keys = load_1d("osm", n, seed=seed)
    negatives = negative_lookups(keys, n, seed=seed + 1)
    contenders: dict[str, Callable[[int], object]] = {
        "bloom": lambda bits: BloomFilter(bits=bits),
        "learned": lambda bits: LearnedBloomFilter(bits_budget=bits),
        "sandwiched": lambda bits: SandwichedLearnedBloomFilter(bits_budget=bits),
        "partitioned": lambda bits: PartitionedLearnedBloomFilter(bits_budget=bits),
    }
    for bpk in bits_per_key:
        bits = int(bpk * n)
        for name, make in contenders.items():
            flt = make(bits)
            flt.build(keys)
            fpr = flt.false_positive_rate(negatives)
            rows.append({
                "bits_per_key": bpk,
                "filter": name,
                "fpr": fpr,
            })
    return rows


# ---------------------------------------------------------------------------
# E7 - E12: the multi-dimensional benchmark (§6.8)
# ---------------------------------------------------------------------------

def run_e7(n: int = 20000, lookups: int = 500, datasets=_ND_DATASETS,
           indexes=None, seed: int = 1) -> list[dict]:
    """E7: multi-dimensional point queries."""
    rows = []
    names = indexes or list(MULTI_DIM_FACTORIES)
    for ds in datasets:
        pts = load_nd(ds, n, seed=seed)
        rng = np.random.default_rng(seed + 1)
        queries = pts[rng.integers(0, n, lookups)]
        for name in names:
            index, build_s = build_index(MULTI_DIM_FACTORIES[name], pts)
            metrics = measure_lookups(index, queries, is_multi_dim=True)
            rows.append({
                "dataset": ds,
                "index": name,
                "lookup_us": metrics["lookup_us"],
                "scanned_per_op": metrics["scanned_per_op"],
                "hits": metrics["hits"],
            })
    return rows


def run_e8(n: int = 20000, queries: int = 100, datasets=("uniform", "clusters"),
           indexes=None, seed: int = 1,
           selectivities=(0.0001, 0.001, 0.01, 0.1)) -> list[dict]:
    """E8: multi-dimensional range queries across selectivities."""
    rows = []
    names = indexes or list(MULTI_DIM_FACTORIES)
    for ds in datasets:
        pts = load_nd(ds, n, seed=seed)
        for sel in selectivities:
            boxes = range_queries_nd(pts, queries, sel, seed=seed + 2)
            for name in names:
                index, _ = build_index(MULTI_DIM_FACTORIES[name], pts)
                metrics = measure_range_queries(index, boxes, is_multi_dim=True)
                rows.append({
                    "dataset": ds,
                    "selectivity": sel,
                    "index": name,
                    "range_us": metrics["range_us"],
                    "avg_results": metrics["avg_results"],
                    "scanned_per_op": metrics["scanned_per_op"],
                })
    return rows


def run_e9(n: int = 20000, queries: int = 50, indexes=None, seed: int = 1,
           ks=(1, 10, 100)) -> list[dict]:
    """E9: kNN queries (traditional trees vs learned indexes)."""
    import time as _time

    rows = []
    names = indexes or ["r-tree", "kd-tree", "quadtree", "grid",
                        "zm-index", "ml-index", "flood", "sprig"]
    pts = load_nd("clusters", n, seed=seed)
    qs = knn_queries(pts, queries, seed=seed + 1)
    for k in ks:
        for name in names:
            index, _ = build_index(MULTI_DIM_FACTORIES[name], pts)
            start = _time.perf_counter()
            for q in qs:
                index.knn_query(q, k)
            elapsed = _time.perf_counter() - start
            rows.append({
                "k": k,
                "index": name,
                "knn_us": elapsed / queries * 1e6,
            })
    return rows


def run_e10(n: int = 20000, queries: int = 100, seed: int = 1,
            rhos=(0.0, 0.8, 0.99)) -> list[dict]:
    """E10: correlation sensitivity — Flood vs Tsunami vs R-tree.

    Includes the untuned-Flood ablation: `flood` is workload-tuned,
    `flood-untuned` keeps the default uniform grid.
    """
    from repro.baselines import RTreeIndex
    from repro.data.spatial import correlated_points

    rows = []
    for rho in rhos:
        pts = correlated_points(n, seed=seed, rho=rho)
        boxes = range_queries_nd(pts, queries, 0.001, seed=seed + 2)
        contenders = {
            "flood-untuned": lambda: FloodIndex(columns_per_dim=16),
            "flood": lambda: FloodIndex(columns_per_dim=16),
            "tsunami": lambda: TsunamiIndex(region_depth=3),
            "r-tree": RTreeIndex,
        }
        for name, make in contenders.items():
            index, _ = build_index(make, pts)
            if name == "flood":
                index.tune(boxes[: queries // 2], candidates=(4, 8, 16, 32, 64))
            elif name == "tsunami":
                index.tune(boxes[: queries // 2], candidates=(4, 8, 16))
            metrics = measure_range_queries(index, boxes, is_multi_dim=True)
            rows.append({
                "rho": rho,
                "index": name,
                "range_us": metrics["range_us"],
                "scanned_per_op": metrics["scanned_per_op"],
            })
    return rows


def run_e11(n: int = 20000, datasets=("uniform", "clusters"), indexes=None,
            seed: int = 1) -> list[dict]:
    """E11: multi-dimensional build time and size."""
    rows = []
    names = indexes or list(MULTI_DIM_FACTORIES)
    for ds in datasets:
        pts = load_nd(ds, n, seed=seed)
        for name in names:
            index, build_s = build_index(MULTI_DIM_FACTORIES[name], pts)
            rows.append({
                "dataset": ds,
                "index": name,
                "build_s": build_s,
                "size_bytes": index.stats.size_bytes,
            })
    return rows


def run_e12(n: int = 10000, inserts: int = 5000, indexes=None, seed: int = 1) -> list[dict]:
    """E12: mutable multi-dimensional insert throughput + post-insert reads."""
    rows = []
    names = indexes or list(MUTABLE_MULTI_DIM_FACTORIES)
    pts = load_nd("clusters", n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    span = pts.max(axis=0) - pts.min(axis=0)
    new_pts = pts.min(axis=0) + rng.uniform(0, 1, (inserts, pts.shape[1])) * span
    for name in names:
        index, _ = build_index(MUTABLE_MULTI_DIM_FACTORIES[name], pts)
        metrics = measure_inserts(index, new_pts, is_multi_dim=True)
        reads = new_pts[rng.integers(0, inserts, min(500, inserts))]
        read_metrics = measure_lookups(index, reads, is_multi_dim=True)
        rows.append({
            "index": name,
            "inserts_per_s": metrics["inserts_per_s"],
            "post_insert_lookup_us": read_metrics["lookup_us"],
        })
    return rows


# ---------------------------------------------------------------------------
# Paper artifacts
# ---------------------------------------------------------------------------

def run_f1() -> str:
    """F1: Figure 1 (spectrum of learned indexes)."""
    return render_spectrum()


def run_f2() -> str:
    """F2: Figure 2 (taxonomy tree)."""
    return render_taxonomy()


def run_f3() -> str:
    """F3: Figure 3 (evolution timeline)."""
    return render_timeline()


def run_t1() -> str:
    """T1: §5.6 summary tables (ML techniques + query-type support)."""
    return render_ml_summary() + "\n\n" + render_query_summary()


@dataclass(frozen=True)
class Experiment:
    """One registered experiment."""

    id: str
    description: str
    runner: Callable


EXPERIMENTS: dict[str, Experiment] = {
    "F1": Experiment("F1", "Figure 1: spectrum of learned indexes", run_f1),
    "F2": Experiment("F2", "Figure 2: taxonomy of learned indexes", run_f2),
    "F3": Experiment("F3", "Figure 3: evolution timeline", run_f3),
    "T1": Experiment("T1", "Summary: ML techniques and query types (§5.6)", run_t1),
    "E1": Experiment("E1", "1-d lookup latency per index x distribution", run_e1),
    "E2": Experiment("E2", "1-d index size and build time", run_e2),
    "E3": Experiment("E3", "1-d insert throughput (mutable indexes)", run_e3),
    "E4": Experiment("E4", "1-d mixed read/write workloads", run_e4),
    "E5": Experiment("E5", "PGM epsilon trade-off", run_e5),
    "E6": Experiment("E6", "Bloom family: FPR vs bits/key", run_e6),
    "E7": Experiment("E7", "multi-d point queries", run_e7),
    "E8": Experiment("E8", "multi-d range queries vs selectivity", run_e8),
    "E9": Experiment("E9", "multi-d kNN queries", run_e9),
    "E10": Experiment("E10", "correlation sensitivity: Flood vs Tsunami", run_e10),
    "E11": Experiment("E11", "multi-d build time and size", run_e11),
    "E12": Experiment("E12", "mutable multi-d insert throughput", run_e12),
}


def _register_extensions() -> None:
    """Register the open-challenge experiments (import-cycle-free)."""
    from repro.bench.batch import run_e17, run_e18
    from repro.bench.coldstart import run_e21
    from repro.bench.extensions import run_e13, run_e14, run_e15, run_e16
    from repro.bench.scaling import run_e22
    from repro.bench.serving import run_e19
    from repro.bench.serving_mp import run_e20
    from repro.bench.tuning import run_e23

    EXPERIMENTS["E13"] = Experiment(
        "E13", "poisoning attacks: RMI vs PGM worst-case guarantee (§6.7)", run_e13)
    EXPERIMENTS["E14"] = Experiment(
        "E14", "distribution drift and re-training (§6.3)", run_e14)
    EXPERIMENTS["E15"] = Experiment(
        "E15", "learned models as hash functions (refs [102, 103])", run_e15)
    EXPERIMENTS["E16"] = Experiment(
        "E16", "SNARF learned range filter: FPR vs bits/key", run_e16)
    EXPERIMENTS["E17"] = Experiment(
        "E17", "batch-query throughput: vectorized vs per-key lookups", run_e17)
    EXPERIMENTS["E18"] = Experiment(
        "E18", "multi-d batch-query throughput: vectorized vs per-point", run_e18)
    EXPERIMENTS["E19"] = Experiment(
        "E19", "serving throughput/tail latency: coalesced vs one-at-a-time", run_e19)
    EXPERIMENTS["E20"] = Experiment(
        "E20", "serving backends: shard worker threads vs processes", run_e20)
    EXPERIMENTS["E21"] = Experiment(
        "E21", "cold start: artifact load vs rebuild, time-to-first-query", run_e21)
    EXPERIMENTS["E22"] = Experiment(
        "E22", "scaling witness: counted work per lookup vs n, per contract", run_e22)
    EXPERIMENTS["E23"] = Experiment(
        "E23", "self-tuning vs static serving under drifting/skewed workloads", run_e23)


_register_extensions()


def run_experiment(experiment_id: str, **kwargs):
    """Run a registered experiment by id and return its rows/artifact."""
    try:
        experiment = EXPERIMENTS[experiment_id.upper()]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; have {sorted(EXPERIMENTS)}"
        ) from None
    return experiment.runner(**kwargs)
