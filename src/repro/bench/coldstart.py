"""E21 — cold start: artifact load vs. rebuild, time-to-first-query.

The artifact store (:mod:`repro.core.artifact`) exists so a built index
never has to be built twice: arrays come back as read-only ``np.memmap``
views over digest-verified files, and reconstruction runs no training.
E21 puts a number on that promise.  Each contender is built once and
saved; the experiment then measures **time-to-first-query** along two
paths:

* *rebuild*: fresh factory → ``build(data)`` → one query, and
* *load*: :func:`~repro.core.artifact.load_index_artifact` with
  ``mmap_mode="r"`` → the same query,

and reports ``load_vs_rebuild`` = rebuild seconds / load seconds (bigger
is better; 10x means cold start costs a tenth of retraining).  The sweep
covers the **full** 1-d and multi-d registries at the first size and the
model-heavy contenders (plus a classic control) at the larger sizes,
where training dominates and the ratio is the honest headline.

A second section snapshots a built 4-shard
:class:`~repro.serve.server.IndexServer` and restores it with
:meth:`~repro.serve.server.IndexServer.from_snapshot` — no shard runs
``build()`` on restore — measuring the same two paths through the full
serving stack (coalescer start included).

The first query is part of both measurements deliberately: memmap loads
defer page-in, so excluding the query would flatter the load arm.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Callable, Sequence

from repro.bench.batch import _environment_metadata
from repro.bench.runner import MULTI_DIM_FACTORIES, ONE_DIM_FACTORIES
from repro.core.artifact import load_index_artifact, save_index_artifact
from repro.data import load_1d, load_nd
from repro.serve.server import IndexServer

__all__ = [
    "run_e21",
    "MODEL_HEAVY_ONE_DIM",
    "MODEL_HEAVY_MULTI_DIM",
    "LARGE_SCALE_CONTROL",
]

#: Contenders whose build time is dominated by model training — the
#: population the acceptance headline (>=10x at 10^6 keys) is read from.
MODEL_HEAVY_ONE_DIM = ("rmi", "pgm", "radix-spline")
MODEL_HEAVY_MULTI_DIM = ("zm-index", "flood")

#: A traditional baseline kept in the large-scale sweep as a control:
#: its "build" is a sort, so its ratio shows what the artifact saves
#: even when there is no model to retrain.
LARGE_SCALE_CONTROL = ("binary-search",)

#: Shards in the IndexServer snapshot/restore section (the acceptance
#: criterion restores a 4-shard server without any build()).
_SERVER_SHARDS = 4


def _artifact_nbytes(directory: Path) -> int:
    """Total bytes of one artifact directory (manifest + arrays + payload)."""
    return sum(p.stat().st_size for p in directory.rglob("*") if p.is_file())


def _first_query(index: object, data, multi_dim: bool) -> None:
    if multi_dim:
        index.point_query(data[0])  # type: ignore[attr-defined]
    else:
        index.lookup(float(data[0]))  # type: ignore[attr-defined]


def _measure_index(name: str, factory: Callable[[], object], data,
                   multi_dim: bool, repeats: int) -> dict:
    """Rebuild vs. artifact-load time-to-first-query for one contender."""
    # Rebuild arm: factory -> build -> first query (measured once; builds
    # at the large sizes are exactly the cost being amortised away).
    t0 = time.perf_counter()
    index = factory()
    index.build(data)  # type: ignore[attr-defined]
    _first_query(index, data, multi_dim)
    rebuild_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="repro_e21_") as tmp:
        root = Path(tmp) / name
        save_index_artifact(index, root)
        nbytes = _artifact_nbytes(root)
        del index
        # Load arm: best of `repeats` (load is cheap enough to repeat,
        # and the best run is the honest steady-state cold start).
        load_s = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            view = load_index_artifact(root, mmap_mode="r")
            _first_query(view, data, multi_dim)
            load_s = min(load_s, time.perf_counter() - t0)
            del view
    return {
        "build_s": rebuild_s,
        "load_s": load_s,
        "artifact_bytes": nbytes,
        "load_vs_rebuild": rebuild_s / load_s if load_s else 0.0,
    }


def _measure_server(name: str, factory: Callable[[], object], data,
                    multi_dim: bool, repeats: int) -> dict:
    """Rebuild vs. snapshot-restore time-to-first-query for a 4-shard server."""
    def query(server: IndexServer) -> None:
        if multi_dim:
            server.point_query(data[0])
        else:
            server.lookup(float(data[0]))

    t0 = time.perf_counter()
    server = IndexServer(factory, num_shards=_SERVER_SHARDS).build(data)
    query(server)
    rebuild_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="repro_e21_srv_") as tmp:
        root = Path(tmp) / name
        server.save_snapshot(root)
        nbytes = _artifact_nbytes(root)
        server.close()
        restore_s = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            restored = IndexServer.from_snapshot(root, factory=factory)
            query(restored)
            restore_s = min(restore_s, time.perf_counter() - t0)
            restored.close()
    return {
        "build_s": rebuild_s,
        "load_s": restore_s,
        "artifact_bytes": nbytes,
        "shards": _SERVER_SHARDS,
        "load_vs_rebuild": rebuild_s / restore_s if restore_s else 0.0,
    }


def run_e21(sizes: Sequence[int] | str = (100_000, 1_000_000),
            dataset: str = "uniform", dims: int = 2, repeats: int = 3,
            seed: int = 1, out: str | None = "BENCH_coldstart.json",
            smoke: bool = False) -> list[dict]:
    """E21: artifact cold start vs. rebuild across the registry.

    Args:
        sizes: key/point counts to sweep (sequence or comma string).
            The *first* size runs the full 1-d and multi-d registries;
            every later size runs only the model-heavy contenders plus
            the classic control, where training time dominates.
        dataset: dataset name for both spaces.
        dims: dimensionality of the multi-d sweep.
        repeats: load-arm repetitions (best-of; rebuild runs once).
        seed: RNG seed for the datasets.
        out: JSON artifact path, or ``None``/"" to skip writing.
        smoke: shrink to a seconds-scale CI configuration.

    Returns:
        One row per (space, index, n) plus the 4-shard IndexServer
        snapshot/restore rows, each carrying ``load_vs_rebuild``.
    """
    if smoke:
        sizes = (2000,)
    if isinstance(sizes, str):
        sizes = [int(s) for s in sizes.split(",") if s]
    sizes = [int(s) for s in sizes]

    smoke_1d = ("rmi", "pgm", "binary-search")
    smoke_md = ("zm-index",)
    rows: list[dict] = []
    for i, n in enumerate(sizes):
        if smoke:
            names_1d: Sequence[str] = smoke_1d
            names_md: Sequence[str] = smoke_md
        elif i == 0:
            names_1d = tuple(ONE_DIM_FACTORIES)
            names_md = tuple(MULTI_DIM_FACTORIES)
        else:
            names_1d = MODEL_HEAVY_ONE_DIM + LARGE_SCALE_CONTROL
            names_md = MODEL_HEAVY_MULTI_DIM
        keys = load_1d(dataset, n, seed=seed)
        points = load_nd(dataset, n, dims=dims, seed=seed)
        for name in names_1d:
            row = _measure_index(name, ONE_DIM_FACTORIES[name], keys,
                                 multi_dim=False, repeats=repeats)
            rows.append({"space": "1d", "index": name, "n": n,
                         "dataset": dataset, **row})
        for name in names_md:
            row = _measure_index(name, MULTI_DIM_FACTORIES[name], points,
                                 multi_dim=True, repeats=repeats)
            rows.append({"space": "md", "index": name, "n": n,
                         "dataset": dataset, "dims": dims, **row})
        # Serving stack: snapshot/restore a 4-shard server end to end.
        for name in (("rmi",) if i == 0 or smoke else MODEL_HEAVY_ONE_DIM[:1]):
            row = _measure_server(name, ONE_DIM_FACTORIES[name], keys,
                                  multi_dim=False, repeats=repeats)
            rows.append({"space": "server", "index": name, "n": n,
                         "dataset": dataset, **row})

    if out:
        payload = {
            "experiment": "E21",
            "dataset": dataset,
            "sizes": sizes,
            "dims": dims,
            "repeats": repeats,
            "seed": seed,
            "cpu_count": os.cpu_count(),
            "environment": _environment_metadata(),
            "results": {
                f"{row['space']}/{row['index']}/n={row['n']}": {
                    key: row[key]
                    for key in ("build_s", "load_s", "artifact_bytes",
                                "load_vs_rebuild")
                }
                for row in rows
            },
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    return rows
