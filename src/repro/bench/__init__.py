"""Benchmark harness: experiment registry, runners, and reporting."""

from repro.bench.experiments import EXPERIMENTS, Experiment, run_experiment
from repro.bench.report import render_table, to_csv
from repro.bench.runner import (
    MULTI_DIM_FACTORIES,
    MUTABLE_MULTI_DIM_FACTORIES,
    MUTABLE_ONE_DIM_FACTORIES,
    ONE_DIM_FACTORIES,
    build_index,
    measure_inserts,
    measure_lookups,
    measure_range_queries,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "run_experiment",
    "render_table",
    "to_csv",
    "MULTI_DIM_FACTORIES",
    "MUTABLE_MULTI_DIM_FACTORIES",
    "MUTABLE_ONE_DIM_FACTORIES",
    "ONE_DIM_FACTORIES",
    "build_index",
    "measure_inserts",
    "measure_lookups",
    "measure_range_queries",
]
