"""Benchmark history: append-only headline-ratio records keyed by git SHA.

``BENCH_history.jsonl`` is the repo's performance memory: every line is
one benchmark run reduced to its **headline ratios** — the
machine-portable numbers each experiment exists to demonstrate (batch
speedup for E17/E18, coalescing speedup for E19, the process-vs-thread
ratio for E20).  Ratios, not absolute throughputs: an ops/s figure moves
with the host, but "batched is 30x scalar" transfers across laptops and
CI runners well enough for a 25 % guard band.

Records carry:

* the git SHA the run was produced at (``"unknown"`` outside a repo),
* a **config signature** — the experiment's scale parameters serialized
  canonically — so a smoke run is only ever compared against another
  run of the same shape,
* a ``passed`` flag: :mod:`repro.bench.compare` marks a record that
  *failed* its regression check so it never becomes a baseline, which
  keeps one bad run from ratcheting the baseline downward.
"""

from __future__ import annotations

import datetime
import json
import subprocess
from pathlib import Path

__all__ = [
    "HISTORY_PATH",
    "HEADLINE_KEYS",
    "extract_headlines",
    "config_signature",
    "git_sha",
    "make_record",
    "load_history",
    "append_record",
    "last_baseline",
]

#: Default history file, committed at the repo root.
HISTORY_PATH = "BENCH_history.jsonl"

#: Per-experiment name of the headline ratio inside each results entry.
HEADLINE_KEYS = {
    "E17": "speedup",
    "E18": "speedup",
    "E19": "speedup",
    "E20": "mp_vs_thread",
    "E21": "load_vs_rebuild",
    "E22": "sublinearity",
    "E23": "tuned_vs_static",
}

#: Top-level artifact fields that describe the machine or the output,
#: not the experiment configuration.
_NON_CONFIG_FIELDS = frozenset({"environment", "results", "cpu_count"})


def extract_headlines(payload: dict) -> dict[str, float]:
    """Headline ratios of one benchmark artifact, keyed by result row.

    Raises ``KeyError`` for experiments without a registered headline —
    adding an experiment to the guard means adding its ratio name to
    :data:`HEADLINE_KEYS` deliberately.
    """
    experiment = str(payload.get("experiment", ""))
    key = HEADLINE_KEYS[experiment]
    results = payload.get("results", {})
    out: dict[str, float] = {}
    for row_name, row in results.items():
        if isinstance(row, dict) and key in row:
            out[row_name] = float(row[key])
    return out


def config_signature(payload: dict) -> str:
    """Canonical string of the experiment's scale/config parameters.

    Everything top-level except machine metadata and the results — so
    ``E19 n=4000 requests=2500`` never gets compared against
    ``E19 n=100000 requests=20000``.
    """
    config = {
        name: value for name, value in payload.items()
        if name not in _NON_CONFIG_FIELDS
    }
    return json.dumps(config, sort_keys=True, separators=(",", ":"))


def git_sha() -> str:
    """Current commit SHA, or ``"unknown"`` when git is unavailable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        )
        return out.stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def make_record(payload: dict, passed: bool, sha: str | None = None) -> dict:
    """One history line for a benchmark artifact."""
    return {
        "sha": git_sha() if sha is None else sha,
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "experiment": str(payload.get("experiment", "")),
        "signature": config_signature(payload),
        "headlines": extract_headlines(payload),
        "passed": bool(passed),
    }


def load_history(path: str | Path = HISTORY_PATH) -> list[dict]:
    """All records in file order; a missing file is an empty history."""
    file = Path(path)
    if not file.exists():
        return []
    records = []
    for line in file.read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def append_record(record: dict, path: str | Path = HISTORY_PATH) -> None:
    """Append one record as a JSONL line (creates the file if needed)."""
    with Path(path).open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def last_baseline(records: list[dict], experiment: str,
                  signature: str) -> dict | None:
    """Most recent *passing* record matching experiment and signature.

    Failed records are skipped by construction — a regressed run never
    becomes the bar the next run is measured against.
    """
    for record in reversed(records):
        if (record.get("experiment") == experiment
                and record.get("signature") == signature
                and record.get("passed")):
            return record
    return None
