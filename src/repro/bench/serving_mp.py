"""E20 — serving backends: shard worker threads vs. worker processes.

E19 established that coalescing recovers batch-kernel throughput inside
one process.  E20 asks the follow-up systems question: with the windows
already fused, does moving kernel execution into **per-shard worker
processes** (shared-memory snapshots, :mod:`repro.serve.mp`) buy
additional throughput by escaping the GIL — and at how many shards does
the crossover happen?

Both arms run the identical :class:`repro.serve.server.IndexServer`
coalescing machinery and the identical workload; the only difference is
``backend="thread"`` vs ``backend="process"``.  The sweep crosses shard
counts (1/2/4/8 by default) with learned contenders from both spaces.

Interpretation note: the process arm can only win when the machine has
cores to run workers on — on a single-CPU host it pays snapshot/IPC
costs with nothing to parallelize over, so ``mp_vs_thread`` < 1 there is
the *expected* honest result.  The artifact therefore records
``cpu_count`` next to every ratio; read the threads-vs-processes
decision table in README.md before quoting a number.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bench.batch import _environment_metadata
from repro.bench.runner import MULTI_DIM_FACTORIES, ONE_DIM_FACTORIES
from repro.bench.serving import _parse_names
from repro.data import load_1d, load_nd
from repro.serve.server import IndexServer
from repro.serve.workload import WORKLOADS, make_workload, run_closed_loop

__all__ = ["run_e20", "DEFAULT_E20_ONE_DIM", "DEFAULT_E20_MULTI_DIM"]

#: 1-d contenders: the acceptance trio's 1-d half plus a classic control.
DEFAULT_E20_ONE_DIM = ("rmi", "pgm", "binary-search")

#: Multi-d contenders: the learned SFC index the tentpole names.
DEFAULT_E20_MULTI_DIM = ("zm-index",)


def _serve_backend(factory, data, requests, *, backend: str, num_shards: int,
                   max_batch: int, max_delay: float, capacity: int,
                   clients: int, pipeline: int) -> dict:
    """Build one server with the given backend and drive the workload."""
    t0 = time.perf_counter()
    server = IndexServer(
        factory, num_shards=num_shards, max_batch=max_batch,
        max_delay=max_delay, capacity=capacity, cache_size=0,
        backend=backend,
    ).build(data)
    build_s = time.perf_counter() - t0
    try:
        driven = run_closed_loop(server, requests, clients=clients,
                                 pipeline=pipeline, batch_submit=True)
        stats = server.stats()
    finally:
        server.close()
    latency = stats["latency"]
    return {
        "build_s": build_s,
        "ops_per_s": driven["ops_per_s"],
        "completed": driven["completed"],
        "shed": driven["shed"],
        "avg_batch": stats["avg_batch"],
        "worker_restarts": stats["worker_restarts"],
        "p50_us": latency["p50_us"],  # type: ignore[index]
        "p95_us": latency["p95_us"],  # type: ignore[index]
        "p99_us": latency["p99_us"],  # type: ignore[index]
    }


def run_e20(n: int = 100000, requests: int = 20000, dims: int = 2,
            dataset: str = "uniform", workload: str = "zipfian",
            shards=(1, 2, 4, 8), clients: int = 8, pipeline: int = 64,
            max_batch: int = 512, max_delay: float = 0.002,
            capacity: int = 1 << 20, indexes=None, indexes_md=None,
            seed: int = 1, out: str | None = "BENCH_serve_mp.json",
            smoke: bool = False) -> list[dict]:
    """E20: thread-backed vs. process-backed shard execution.

    Args:
        n: keys (1-d) / points (multi-d) per store.
        requests: workload length per measurement arm.
        dims: dimensionality of the multi-d stores.
        dataset: dataset name for both spaces (``load_1d`` / ``load_nd``).
        workload: read-only generator name (writes stay parent-side in
            both arms, so a read workload isolates the GIL story).
        shards: shard counts to sweep (sequence or comma string).
        clients: concurrent closed-loop client threads.
        pipeline: requests each client keeps in flight.
        max_batch: coalescing window (identical in both arms).
        max_delay: window fill timeout in seconds (identical in both arms).
        capacity: per-shard admission queue bound.
        indexes / indexes_md: 1-d / multi-d contender names (sequence or
            comma string); empty string selects none for that space.
        seed: RNG seed for data and workload.
        out: JSON artifact path, or ``None``/"" to skip writing.
        smoke: shrink to a seconds-scale CI configuration.

    Returns:
        One row per (space, index, shard count) with both backends'
        numbers plus the ``mp_vs_thread`` throughput ratio.
    """
    if smoke:
        n = min(n, 4000)
        requests = min(requests, 2000)
        shards = (1, 2)
        clients = min(clients, 4)
        pipeline = min(pipeline, 32)
        max_batch = min(max_batch, 256)
    if isinstance(shards, str):
        shards = [int(s) for s in shards.split(",") if s]
    shard_counts = [int(s) for s in shards]
    if workload not in WORKLOADS:
        raise KeyError(f"unknown workload {workload!r}; have {sorted(WORKLOADS)}")
    names_1d = _parse_names(indexes, DEFAULT_E20_ONE_DIM, ONE_DIM_FACTORIES)
    names_md = _parse_names(indexes_md, DEFAULT_E20_MULTI_DIM, MULTI_DIM_FACTORIES)

    keys = load_1d(dataset, n, seed=seed)
    points = load_nd(dataset, n, dims=dims, seed=seed)
    reqs_1d = make_workload(workload, keys, requests, seed=seed + 1)
    reqs_md = make_workload(workload, points, requests, seed=seed + 1, multi_dim=True)

    spaces = (
        [("1d", name, ONE_DIM_FACTORIES[name], keys, reqs_1d) for name in names_1d]
        + [("md", name, MULTI_DIM_FACTORIES[name], points, reqs_md) for name in names_md]
    )

    rows = []
    baseline_mp: dict[tuple[str, str], float] = {}
    for space, name, factory, data, work in spaces:
        for num_shards in shard_counts:
            common = dict(num_shards=num_shards, max_batch=max_batch,
                          max_delay=max_delay, capacity=capacity,
                          clients=clients, pipeline=pipeline)
            threaded = _serve_backend(factory, data, work, backend="thread", **common)
            process = _serve_backend(factory, data, work, backend="process", **common)
            if (space, name) not in baseline_mp and process["ops_per_s"]:
                baseline_mp[(space, name)] = process["ops_per_s"]
            rows.append({
                "space": space,
                "index": name,
                "dataset": dataset,
                "workload": workload,
                "n": n,
                "requests": requests,
                "shards": num_shards,
                "clients": clients,
                "pipeline": pipeline,
                "max_batch": max_batch,
                "max_delay_ms": max_delay * 1e3,
                "thread": threaded,
                "process": process,
                "mp_vs_thread": (process["ops_per_s"] / threaded["ops_per_s"]
                                 if threaded["ops_per_s"] else 0.0),
                "mp_scaling": (process["ops_per_s"] / baseline_mp[(space, name)]
                               if baseline_mp.get((space, name)) else 0.0),
            })

    if out:
        payload = {
            "experiment": "E20",
            "dataset": dataset,
            "workload": workload,
            "n": n,
            "requests": requests,
            "dims": dims,
            "seed": seed,
            "cpu_count": os.cpu_count(),
            "environment": _environment_metadata(),
            "results": {
                f"{row['space']}/{row['index']}/shards={row['shards']}": {
                    key: row[key]
                    for key in ("thread", "process", "mp_vs_thread", "mp_scaling",
                                "clients", "pipeline", "max_batch")
                }
                for row in rows
            },
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    return rows
