"""Timing and measurement utilities for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Measurement", "time_callable", "ops_per_second"]


@dataclass
class Measurement:
    """One measured quantity with its unit, for report rows."""

    name: str
    value: float
    unit: str = ""
    extra: dict = field(default_factory=dict)

    def formatted(self) -> str:
        if self.unit == "s":
            return f"{self.value * 1e6:.1f} us" if self.value < 1e-3 else f"{self.value * 1e3:.2f} ms"
        if self.unit:
            return f"{self.value:.4g} {self.unit}"
        return f"{self.value:.4g}"


def time_callable(fn: Callable[[], object], repeats: int = 1) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def ops_per_second(fn: Callable[[], int], repeats: int = 1) -> float:
    """Run ``fn`` (which returns an op count) and report ops/second."""
    best = 0.0
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        count = fn()
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, count / elapsed)
    return best
