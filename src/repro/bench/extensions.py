"""Extension experiments for the paper's open challenges (Part 3).

The tutorial's Part 3 lists open research directions; two of them are
directly measurable with this library and are implemented here:

* **E13 — poisoning attacks (§6.7)**: Kornaropoulos et al. show that an
  attacker who inserts adversarially placed keys can blow up a learned
  index's prediction error; indexes with worst-case guarantees (PGM)
  resist.  We reproduce the attack's shape: concentrated poison keys
  explode the RMI's per-leaf error while the PGM's per-lookup search
  effort stays bounded by its epsilon.

* **E14 — distribution drift and re-training (§6.3)**: learned models go
  stale when the key distribution shifts.  We ingest keys from a shifted
  distribution, measure lookup-effort degradation per index, then
  rebuild and measure the recovery — quantifying the value of the
  re-training trigger the survey calls for.
"""

from __future__ import annotations

import numpy as np

from repro.bench.runner import build_index, measure_lookups
from repro.data import load_1d, point_lookups
from repro.onedim import (
    ALEXIndex,
    DynamicPGMIndex,
    LearnedHashIndex,
    LearnedSkipList,
    PGMIndex,
    RMIIndex,
)

__all__ = ["run_e13", "run_e14", "run_e15", "run_e16", "poison_keys"]


def poison_keys(base_keys: np.ndarray, fraction: float, seed: int = 0) -> np.ndarray:
    """Craft adversarial keys concentrated just below a quantile point.

    The attack of Kornaropoulos et al. concentrates probability mass so
    the CDF develops a near-vertical step that per-region linear models
    cannot follow: we pack ``fraction * n`` keys into a vanishingly
    narrow interval inside the existing key range.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n_poison = int(base_keys.size * fraction)
    if n_poison == 0:
        return np.empty(0)
    anchor = float(np.quantile(base_keys, 0.5))
    width = float(base_keys.max() - base_keys.min()) * 1e-9
    return np.sort(anchor + rng.uniform(0, width, n_poison))


def run_e13(n: int = 20000, lookups: int = 500, seed: int = 1,
            poison_fractions=(0.0, 0.05, 0.2, 0.5)) -> list[dict]:
    """E13: poisoning resistance — RMI vs PGM vs Hist-style baselines.

    For each poison fraction, the index is built over the union of the
    clean keys and the poison cluster; the workload queries only *clean*
    keys (the victim's own workload).  Reported: per-lookup comparisons
    and the model's worst prediction error.
    """
    rows = []
    clean = load_1d("uniform", n, seed=seed)
    queries = point_lookups(clean, lookups, seed=seed + 1)
    # Victim-region queries: clean keys adjacent to the poison anchor,
    # whose lookups route through the damaged model region.
    lo_q, hi_q = np.quantile(clean, [0.45, 0.55])
    victims = clean[(clean >= lo_q) & (clean <= hi_q)]
    victim_queries = point_lookups(victims, lookups, seed=seed + 3)
    for fraction in poison_fractions:
        poisoned = np.sort(np.concatenate([clean, poison_keys(clean, fraction, seed=seed + 2)]))
        contenders = {
            "rmi": lambda: RMIIndex(num_models=64),
            "pgm (eps=32)": lambda: PGMIndex(epsilon=32),
        }
        for name, make in contenders.items():
            index, _ = build_index(make, poisoned)
            metrics = measure_lookups(index, queries)
            victim_metrics = measure_lookups(index, victim_queries)
            row = {
                "poison_fraction": fraction,
                "index": name,
                "cmp_per_op": metrics["cmp_per_op"],
                "victim_cmp_per_op": victim_metrics["cmp_per_op"],
            }
            if isinstance(index, RMIIndex):
                row["max_model_error"] = index.stats.extra["max_leaf_error"]
            else:
                row["max_model_error"] = 32  # the guarantee, by construction
            rows.append(row)
    return rows


def run_e14(n: int = 20000, drift_inserts: int = 20000, lookups: int = 500,
            seed: int = 1) -> list[dict]:
    """E14: lookup effort under distribution drift, before/after rebuild.

    Phases per index: ``initial`` (trained distribution), ``drifted``
    (after ingesting keys from a shifted heavy-tail distribution),
    ``rebuilt`` (index reconstructed over the merged data).
    """
    rows = []
    initial = load_1d("uniform", n, seed=seed)
    # Drift: a different regime far above the trained key range.
    rng = np.random.default_rng(seed + 1)
    drifted_keys = np.sort(rng.lognormal(2.0, 1.5, drift_inserts) * 1e9 + initial.max())

    contenders = {
        "alex": ALEXIndex,
        "dynamic-pgm": DynamicPGMIndex,
        "learned-skiplist": lambda: LearnedSkipList(rebuild_every=10**9),
    }
    for name, make in contenders.items():
        index, _ = build_index(make, initial)
        base = measure_lookups(index, point_lookups(initial, lookups, seed=seed + 2))
        rows.append({"index": name, "phase": "initial",
                     "cmp_per_op": base["cmp_per_op"],
                     "lookup_us": base["lookup_us"]})

        for i, key in enumerate(drifted_keys):
            index.insert(float(key), i)
        mixed_queries = np.concatenate([
            point_lookups(initial, lookups // 2, seed=seed + 3),
            point_lookups(drifted_keys, lookups // 2, seed=seed + 4),
        ])
        drift = measure_lookups(index, mixed_queries)
        rows.append({"index": name, "phase": "drifted",
                     "cmp_per_op": drift["cmp_per_op"],
                     "lookup_us": drift["lookup_us"]})

        # Re-train: rebuild the index over everything it now holds.
        merged = np.sort(np.concatenate([initial, drifted_keys]))
        rebuilt, _ = build_index(make, merged)
        recovery = measure_lookups(rebuilt, mixed_queries)
        rows.append({"index": name, "phase": "rebuilt",
                     "cmp_per_op": recovery["cmp_per_op"],
                     "lookup_us": recovery["lookup_us"]})
    return rows


def run_e15(n: int = 20000, seed: int = 1,
            datasets=("uniform", "lognormal", "osm", "fb"),
            num_quantiles=(32, 256)) -> list[dict]:
    """E15: learned models as hash functions (refs [102, 103]).

    Compares a CDF-model hash against a classical multiplicative hash at
    load factor 1: mean probe length (collision quality), bucket
    occupancy, and keys scanned for a 1%-selectivity range query (where
    the order-preserving learned hash scans a bucket interval but the
    classical hash must scan the whole table).
    """
    from repro.data import range_queries_1d

    rows = []
    for ds in datasets:
        keys = load_1d(ds, n, seed=seed)
        ranges = range_queries_1d(keys, 10, 0.01, seed=seed + 1)
        contenders = [("classic", None)] + [
            (f"learned-q{q}", q) for q in num_quantiles
        ]
        for name, quantiles in contenders:
            if quantiles is None:
                index = LearnedHashIndex(learned=False)
            else:
                index = LearnedHashIndex(learned=True, num_quantiles=quantiles)
            index.build(keys)
            index.stats.reset_counters()
            for lo, hi in ranges:
                index.range_query(lo, hi)
            rows.append({
                "dataset": ds,
                "hash": name,
                "mean_probe": index.mean_probe_length(),
                "max_chain": index.max_chain_length(),
                "occupancy": index.occupancy(),
                "range_scanned_per_op": index.stats.keys_scanned / len(ranges),
            })
    return rows


def run_e16(n: int = 20000, queries: int = 2000, seed: int = 1,
            bits_per_key=(2, 4, 8, 16)) -> list[dict]:
    """E16: SNARF range-filter FPR vs bit budget.

    Workload: empty-range queries centred in the gaps between consecutive
    keys (the adversarial case for range filters) plus an equal number of
    non-empty ranges (to confirm zero false negatives).  A classical
    Bloom filter cannot answer these at all; SNARF's FPR falls with both
    bit budget and model resolution.
    """
    from repro.baselines.bloom import BloomFilter
    from repro.onedim.snarf import SNARFFilter

    rng = np.random.default_rng(seed)
    keys = np.sort(load_1d("lognormal", n, seed=seed))
    empty_ranges = []
    for _ in range(queries):
        i = int(rng.integers(0, keys.size - 1))
        mid = (keys[i] + keys[i + 1]) / 2
        eps = (keys[i + 1] - keys[i]) * 0.2
        empty_ranges.append((float(mid - eps), float(mid + eps)))
    hit_ranges = []
    for _ in range(queries):
        i = int(rng.integers(0, keys.size))
        hit_ranges.append((float(keys[i]) - 1e-9, float(keys[i]) + 1e-9))

    rows = []
    for bpk in bits_per_key:
        flt = SNARFFilter(bits_per_key=bpk, num_quantiles=1024).build(keys)
        false_negatives = sum(
            1 for lo, hi in hit_ranges if not flt.might_contain_range(lo, hi)
        )
        fpr = sum(
            1 for lo, hi in empty_ranges if flt.might_contain_range(lo, hi)
        ) / len(empty_ranges)
        rows.append({
            "filter": "snarf",
            "bits_per_key": bpk,
            "range_fpr": fpr,
            "false_negatives": false_negatives,
            "size_bytes": flt.stats.size_bytes,
        })
    # Reference row: a point Bloom filter is blind to ranges (would need
    # one probe per possible key) — recorded as FPR 1.0 by convention.
    rows.append({
        "filter": "bloom (point-only)",
        "bits_per_key": 10,
        "range_fpr": 1.0,
        "false_negatives": 0,
        "size_bytes": BloomFilter(bits=10 * n).build(keys).stats.size_bytes,
    })
    return rows
