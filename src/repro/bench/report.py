"""Result-table rendering for the benchmark harness.

Every experiment produces a list of row dicts; :func:`render_table`
prints them as the fixed-width tables the EXPERIMENTS.md records, and
:func:`to_csv` exports them for external analysis.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "to_csv", "format_value"]


def format_value(value: object) -> str:
    """Human-oriented formatting: SI-ish floats, ints, passthrough strings."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        if abs(value) >= 1_000_000:
            return f"{value / 1e6:.2f}M"
        if abs(value) >= 10_000:
            return f"{value / 1e3:.1f}k"
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-4 or abs(value) >= 1e7:
            return f"{value:.3e}"
        if abs(value) < 1:
            return f"{value:.4f}"
        return f"{value:,.2f}"
    return str(value)


def render_table(rows: Sequence[dict], columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render row dicts as a fixed-width text table.

    Args:
        rows: list of dicts sharing (a superset of) the same keys.
        columns: explicit column order; defaults to the first row's keys.
        title: optional heading line.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    rendered = [[format_value(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(v.rjust(w) if _numericish(v) else v.ljust(w)
                               for v, w in zip(r, widths)))
    return "\n".join(lines)


def _numericish(value: str) -> bool:
    return bool(value) and (value[0].isdigit() or value[0] in "-+.")


def to_csv(rows: Iterable[dict], columns: Sequence[str] | None = None) -> str:
    """Render rows as CSV text."""
    rows = list(rows)
    if not rows:
        return ""
    cols = list(columns) if columns else list(rows[0].keys())
    lines = [",".join(cols)]
    for row in rows:
        lines.append(",".join(str(row.get(c, "")) for c in cols))
    return "\n".join(lines)
