"""E23 — self-tuning vs static serving under adversarial drift and skew.

The survey's forward-looking claim is that learned indexes should adapt
when the workload walks away from the build-time distribution.  E23
makes that claim measurable: both arms serve the *same* seeded
:func:`~repro.serve.workload.drifting_phases` schedule — a zipfian
hotspot band that jumps each phase, a read/write mix that flips, and
fresh keys written *inside* the moving band — through identical
:class:`~repro.serve.server.IndexServer` stacks.  The **static** arm
keeps the build-time shard boundaries and index models for the whole
run.  The **tuned** arm attaches a :class:`~repro.tune.engine.Tuner`
and calls :meth:`~repro.tune.engine.Tuner.step` at each phase boundary
(deterministic cadence; the step's wall time is charged to the tuned
arm), letting hot-shard rebalances chase the band and drift-triggered
rebuilds collapse the delta levels the writes pile up.

Headline: ``tuned_vs_static`` — tuned throughput over static throughput
on the identical schedule (p99 ratio rides along).  The tuned arm's
audit log is embedded in ``BENCH_tune.json`` so every re-partition in
the artifact is traceable to the signal that triggered it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.bench.batch import _environment_metadata
from repro.bench.runner import MUTABLE_ONE_DIM_FACTORIES
from repro.data import load_1d
from repro.serve.server import IndexServer
from repro.serve.workload import drifting_phases, run_closed_loop
from repro.tune import TuneConfig, Tuner

__all__ = ["run_e23", "DEFAULT_E23_TUNE"]

#: The E23 tuner configuration.  Rebalance is effectively disabled
#: (imbalance above the 4-shard maximum): a full re-split fits bounds to
#: traffic that has *already moved on* when the hotspot jumps every
#: phase, so under this adversary the winning move is targeted,
#: pressure-gated drift rebuilds — a shard is re-fit only once enough
#: written delta has routed into it to pay for the linear re-fit.
DEFAULT_E23_TUNE = TuneConfig(
    enabled=True,
    imbalance=8.0,
    min_requests=512,
    min_sample=128,
    max_sample=4096,
    drift_threshold=0.3,
    drift_hold=1,
    min_writes=256,
    min_shard_writes=1500,
    cooldown_steps=1,
    seed=0,
)


def _chunks(requests: list, steps_per_phase: int) -> list[list]:
    """Split one phase into ``steps_per_phase`` near-equal chunks."""
    size = max(1, -(-len(requests) // steps_per_phase))
    out = [requests[i:i + size] for i in range(0, len(requests), size)]
    return [chunk for chunk in out if chunk]


def _run_arm(factory, keys, phase_requests, *, tuned: bool, num_shards: int,
             max_batch: int, max_delay: float, capacity: int, clients: int,
             pipeline: int, steps_per_phase: int,
             tune_config: TuneConfig) -> dict:
    """Serve every phase on a fresh server; optionally tune mid-phase.

    Each phase is served in ``steps_per_phase`` chunks with a tuner step
    after every chunk (tuned arm only) — detection lags the hotspot by
    one chunk, and an applied re-partition pays off over the *rest of
    the same phase*.  The arm clock starts before the first chunk and
    stops after the last, so the tuned arm pays for its own steps
    (window accounting, policy evaluation, any applied re-partition) on
    the same meter that credits their payoff.
    """
    server = IndexServer(
        factory, num_shards=num_shards, max_batch=max_batch,
        max_delay=max_delay, capacity=capacity, cache_size=0,
    ).build(keys)
    tuner = Tuner(server, tune_config, reference=keys) if tuned else None
    phase_ops: list[float] = []
    completed = 0
    shed = 0
    try:
        t0 = time.perf_counter()
        for requests in phase_requests:
            phase_t0 = time.perf_counter()
            phase_done = 0
            for chunk in _chunks(requests, steps_per_phase):
                driven = run_closed_loop(server, chunk, clients=clients,
                                         pipeline=pipeline, batch_submit=True)
                completed += int(driven["completed"])  # type: ignore[call-overload]
                shed += int(driven["shed"])  # type: ignore[call-overload]
                phase_done += int(driven["completed"])  # type: ignore[call-overload]
                if tuner is not None:
                    tuner.step()
            phase_wall = time.perf_counter() - phase_t0
            phase_ops.append(phase_done / phase_wall if phase_wall > 0 else 0.0)
        wall = time.perf_counter() - t0
        stats = server.stats()
    finally:
        if tuner is not None:
            tuner.close()
        server.close()
    latency = stats["latency"]
    arm = {
        "wall_s": wall,
        "completed": completed,
        "shed": shed,
        "ops_per_s": completed / wall if wall > 0 else 0.0,
        "phase_ops_per_s": phase_ops,
        "per_shard_requests": stats["per_shard_requests"],
        "p50_us": latency["p50_us"],  # type: ignore[index]
        "p99_us": latency["p99_us"],  # type: ignore[index]
    }
    if tuner is not None:
        audit = tuner.audit.snapshot()
        arm["audit"] = audit
        arm["actions_applied"] = sum(
            1 for record in audit if record["outcome"] == "applied"
        )
    return arm


def run_e23(n: int = 20000, requests: int = 48000, phases: int = 6,
            steps_per_phase: int = 3, num_shards: int = 4,
            index: str = "dynamic-pgm", dataset: str = "uniform",
            clients: int = 4, pipeline: int = 32,
            max_batch: int = 128, max_delay: float = 0.001,
            capacity: int = 1 << 20, band_frac: float = 0.2,
            zipf_a: float = 1.25, write_low: float = 0.7,
            write_high: float = 0.02, background: float = 0.2,
            dwell: int = 2, seed: int = 1,
            out: str | None = "BENCH_tune.json",
            smoke: bool = False) -> list[dict]:
    """E23: does workload-driven tuning beat a static index under drift?

    Args:
        n: keys in the build-time dataset.
        requests: total workload length (split evenly across phases).
        phases: drift phases (hotspot jumps / mix flips).
        steps_per_phase: chunks each phase is served in, with a tuner
            step after every chunk (tuned arm) — the tuner discovers a
            phase one chunk in and adapts for the remainder.
        num_shards: shard count of both serving stacks.
        index: mutable 1-d factory name (needs insert support).
        dataset: ``load_1d`` dataset name.
        clients / pipeline: closed-loop driver shape.
        max_batch / max_delay / capacity: identical server knobs for
            both arms (cache disabled — generation-keyed caching would
            blur the index-shape story E23 isolates).
        band_frac: fraction of the key order the hotspot band covers.
        zipf_a: zipf exponent of in-band reads.
        write_low / write_high: the two write ratios the mix flips
            between.  The defaults make the schedule ingest-then-analyze
            — a write burst (0.7) into a band, then a near-pure read
            phase (0.02) over the *same* band (``dwell=2``): the regime
            where piled-up delta actually costs the static arm and a
            burst-end rebuild pays for itself.
        background: fraction of reads routed uniformly over the whole
            keyspace (scan traffic that probes old delta every phase).
        dwell: consecutive phases each band position is held for.
        seed: RNG seed for data and schedule.
        out: JSON artifact path, or ``None``/"" to skip writing.
        smoke: shrink to a seconds-scale CI configuration.

    Returns:
        One row with both arms' numbers and the headline ratio.
    """
    if smoke:
        n = min(n, 8000)
        requests = min(requests, 8000)
        phases = min(phases, 4)
        clients = min(clients, 4)
        pipeline = min(pipeline, 32)
    if index not in MUTABLE_ONE_DIM_FACTORIES:
        raise KeyError(
            f"unknown mutable index {index!r}; "
            f"have {sorted(MUTABLE_ONE_DIM_FACTORIES)}"
        )
    factory = MUTABLE_ONE_DIM_FACTORIES[index]
    keys = load_1d(dataset, n, seed=seed)
    schedule = drifting_phases(keys, requests, seed=seed + 1, phases=phases,
                               band_frac=band_frac, a=zipf_a,
                               write_ratios=(write_low, write_high),
                               background=background, dwell=dwell)
    common = dict(
        num_shards=num_shards, max_batch=max_batch, max_delay=max_delay,
        capacity=capacity, clients=clients, pipeline=pipeline,
        steps_per_phase=steps_per_phase, tune_config=DEFAULT_E23_TUNE,
    )
    static = _run_arm(factory, keys, schedule, tuned=False, **common)
    tuned = _run_arm(factory, keys, schedule, tuned=True, **common)
    ratio = (tuned["ops_per_s"] / static["ops_per_s"]
             if static["ops_per_s"] else 0.0)
    p99_ratio = (static["p99_us"] / tuned["p99_us"]
                 if tuned["p99_us"] else 0.0)
    row = {
        "space": "1d",
        "index": index,
        "dataset": dataset,
        "n": n,
        "requests": requests,
        "phases": phases,
        "shards": num_shards,
        "clients": clients,
        "pipeline": pipeline,
        "tuned": tuned,
        "static": static,
        "tuned_vs_static": ratio,
        "p99_ratio": p99_ratio,
    }
    if out:
        payload = {
            "experiment": "E23",
            "dataset": dataset,
            "workload": "drifting",
            "index": index,
            "n": n,
            "requests": requests,
            "phases": phases,
            "steps_per_phase": steps_per_phase,
            "shards": num_shards,
            "clients": clients,
            "pipeline": pipeline,
            "band_frac": band_frac,
            "zipf_a": zipf_a,
            "write_low": write_low,
            "write_high": write_high,
            "background": background,
            "dwell": dwell,
            "seed": seed,
            "environment": _environment_metadata(),
            "results": {
                f"1d/{index}/shards={num_shards}": {
                    key: row[key]
                    for key in ("tuned", "static", "tuned_vs_static",
                                "p99_ratio", "clients", "pipeline")
                }
            },
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    return [row]
