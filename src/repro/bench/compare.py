"""Benchmark regression check: artifact headlines vs. committed history.

CLI (wired into CI after the E17/E18/E19/E20 smoke runs)::

    python -m repro.bench.compare BENCH_serve.json --append

Compares the artifact's headline ratios against the last *passing*
record with the same experiment and config signature in
``BENCH_history.jsonl`` and exits non-zero when any headline fell more
than ``--threshold`` (default 25 %).  With ``--append`` the run is
recorded either way — flagged ``passed: false`` on regression so it
never becomes a future baseline.

A missing baseline (first run of a configuration, or a deliberately
changed experiment shape) passes with a notice: the guard compares
like against like or not at all.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.history import (
    HEADLINE_KEYS,
    HISTORY_PATH,
    append_record,
    config_signature,
    extract_headlines,
    last_baseline,
    load_history,
    make_record,
)

__all__ = ["compare_artifact", "main"]

#: Default tolerated relative drop in a headline ratio before failing.
DEFAULT_THRESHOLD = 0.25


def compare_artifact(payload: dict, history: list[dict],
                     threshold: float = DEFAULT_THRESHOLD) -> tuple[list[str], str]:
    """Regression lines (empty when clean) plus a human-readable report.

    A headline regresses when it drops strictly more than ``threshold``
    relative to the baseline value; rows absent from the baseline (new
    contenders) and non-positive baselines are skipped.
    """
    experiment = str(payload.get("experiment", ""))
    if experiment not in HEADLINE_KEYS:
        raise SystemExit(
            f"no headline registered for experiment {experiment!r}; "
            f"have {sorted(HEADLINE_KEYS)}"
        )
    headlines = extract_headlines(payload)
    baseline = last_baseline(history, experiment, config_signature(payload))
    if baseline is None:
        report = (f"{experiment}: no passing baseline for this configuration "
                  f"({len(headlines)} headline rows) — nothing to compare")
        return [], report
    regressions: list[str] = []
    lines = [f"{experiment}: vs baseline {baseline['sha'][:12]} "
             f"({baseline['timestamp']})"]
    for row, value in sorted(headlines.items()):
        old = baseline["headlines"].get(row)
        if old is None or old <= 0:
            lines.append(f"  {row}: {value:.3f} (no baseline row)")
            continue
        change = (value - old) / old
        marker = ""
        if change < -threshold:
            marker = "  << REGRESSION"
            regressions.append(
                f"{row}: {HEADLINE_KEYS[experiment]} {old:.3f} -> {value:.3f} "
                f"({change:+.1%}, limit -{threshold:.0%})"
            )
        lines.append(f"  {row}: {old:.3f} -> {value:.3f} ({change:+.1%}){marker}")
    return regressions, "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Check a benchmark artifact's headline ratios against "
                    "the committed history; non-zero exit on regression.",
    )
    parser.add_argument("artifact", help="benchmark JSON artifact (e.g. BENCH_serve.json)")
    parser.add_argument("--history", default=HISTORY_PATH,
                        help=f"history JSONL path (default {HISTORY_PATH})")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="tolerated relative drop (default 0.25)")
    parser.add_argument("--append", action="store_true",
                        help="record this run in the history (flagged failed "
                             "on regression)")
    args = parser.parse_args(argv)

    artifact = Path(args.artifact)
    if not artifact.exists():
        print(f"artifact {artifact} does not exist", file=sys.stderr)
        return 2
    payload = json.loads(artifact.read_text())
    history = load_history(args.history)
    regressions, report = compare_artifact(payload, history, args.threshold)
    print(report)
    if args.append:
        append_record(make_record(payload, passed=not regressions),
                      path=args.history)
        print(f"recorded run in {args.history} (passed={not regressions})")
    if regressions:
        print(f"\n{len(regressions)} headline regression(s):", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
