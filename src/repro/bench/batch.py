"""E17/E18 — batch-query throughput: per-key loops vs. vectorized batches.

SOSD and "Benchmarking Learned Indexes" (Marcus et al.) report lookup
throughput over large query batches because that is how index-serving
systems are actually driven.  In this pure-Python reproduction the
per-key query path is dominated by interpreter overhead, which buries
the algorithmic differences the survey taxonomy is about; the batch API
(:meth:`repro.core.interfaces.OneDimIndex.lookup_batch` and its
multi-dimensional counterparts) amortizes that overhead into numpy
kernels.  E17 quantifies the gap for the one-dimensional indexes;
E18 extends the measurement to the multi-dimensional space (projected
curves, learned grids, LISA shards) across uniform/clustered/skewed
spatial data.  Both emit machine-readable artifacts
(``BENCH_batch.json`` / ``BENCH_batch_md.json``) so later PRs can track
the performance trajectory.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import numpy as np

from repro.bench.runner import (
    MULTI_DIM_FACTORIES,
    ONE_DIM_FACTORIES,
    build_index,
    measure_batch_lookups,
    measure_lookups,
)
from repro.core.interfaces import MultiDimIndex
from repro.data import load_1d, load_nd, point_lookups, range_queries_nd

__all__ = ["run_e17", "run_e18", "DEFAULT_E17_INDEXES", "DEFAULT_E18_INDEXES"]

#: Contenders with vectorized fast paths plus the loop-fallback B+-tree
#: as a control showing the fallback neither breaks nor regresses.
DEFAULT_E17_INDEXES = ("binary-search", "rmi", "pgm", "radix-spline", "b+tree")

#: Multi-d contenders with vectorized fast paths (projected curve, learned
#: grid, uniform grid, learned shards) plus the loop-fallback KD-tree as
#: the control.
DEFAULT_E18_INDEXES = ("zm-index", "flood", "grid", "lisa", "kd-tree")

#: Spatial distributions driving the multi-d batch measurement.
DEFAULT_E18_DATASETS = ("uniform", "clusters", "skew")


def _environment_metadata() -> dict:
    """Interpreter/library versions recorded in the bench artifacts."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def run_e17(n: int = 100000, batch: int = 10000, dataset: str = "uniform",
            indexes=None, seed: int = 1, out: str | None = "BENCH_batch.json",
            smoke: bool = False) -> list[dict]:
    """E17: batched vs. per-key lookup throughput per index.

    Args:
        n: number of keys to index.
        batch: number of point queries answered per measurement.
        dataset: 1-d dataset name (see :func:`repro.data.load_1d`).
        indexes: contender names from ``ONE_DIM_FACTORIES`` (sequence or
            comma-separated string); defaults to the vectorized hot
            paths plus a loop-fallback control.
        seed: RNG seed for data and queries.
        out: path of the JSON artifact, or ``None``/"" to skip writing.
        smoke: shrink to a seconds-scale CI configuration.

    Returns:
        One row per index with scalar/batch ops/sec and the speedup.
    """
    if smoke:
        n = min(n, 5000)
        batch = min(batch, 1000)
    if isinstance(indexes, str):  # e.g. --param indexes=rmi,pgm
        indexes = [name for name in indexes.split(",") if name]
    names = list(indexes) if indexes else list(DEFAULT_E17_INDEXES)
    unknown = [name for name in names if name not in ONE_DIM_FACTORIES]
    if unknown:
        raise KeyError(f"unknown 1-d indexes {unknown!r}; have {sorted(ONE_DIM_FACTORIES)}")

    keys = load_1d(dataset, n, seed=seed)
    queries = point_lookups(keys, batch, seed=seed + 1)

    rows = []
    for name in names:
        index, build_s = build_index(ONE_DIM_FACTORIES[name], keys)
        scalar = measure_lookups(index, queries)
        batched = measure_batch_lookups(index, queries)
        scalar_ops = 1e6 / scalar["lookup_us"] if scalar["lookup_us"] else 0.0
        batch_ops = batched["ops_per_s"]
        rows.append({
            "index": name,
            "dataset": dataset,
            "n": n,
            "batch": batch,
            "scalar_ops_per_s": scalar_ops,
            "batch_ops_per_s": batch_ops,
            "speedup": batch_ops / scalar_ops if scalar_ops else 0.0,
            "hits_scalar": scalar["hits"],
            "hits_batch": batched["hits"],
            "build_s": build_s,
        })

    if out:
        payload = {
            "experiment": "E17",
            "dataset": dataset,
            "n": n,
            "batch": batch,
            "seed": seed,
            "environment": _environment_metadata(),
            "results": {
                row["index"]: {
                    "scalar_ops_per_s": row["scalar_ops_per_s"],
                    "batch_ops_per_s": row["batch_ops_per_s"],
                    "speedup": row["speedup"],
                }
                for row in rows
            },
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    return rows


def run_e18(n: int = 100000, batch: int = 10000, dims: int = 2,
            datasets=None, indexes=None, seed: int = 1,
            range_batch: int = 200, scalar_sample: int = 2000,
            out: str | None = "BENCH_batch_md.json",
            smoke: bool = False) -> list[dict]:
    """E18: batched vs. per-point query throughput for multi-d indexes.

    Mirrors E17 in the multi-dimensional space: for each (dataset, index)
    pair it measures scalar point-query ops/sec (a Python loop of
    ``point_query`` calls over a sample of the batch) against batched
    ops/sec (one ``point_query_batch`` call over the full batch).  For
    indexes that override ``range_query_batch`` it additionally measures
    batched vs. looped range-query throughput over a small box workload.
    The KD-tree rides along as the loop-fallback control — its "speedup"
    is the overhead of the generic fallback, expected ~1x.

    Args:
        n: number of points to index.
        batch: number of point queries per batched measurement.
        dims: dimensionality of the spatial data.
        datasets: spatial dataset names (see :func:`repro.data.load_nd`);
            sequence or comma-separated string.
        indexes: contender names from ``MULTI_DIM_FACTORIES`` (sequence
            or comma-separated string).
        seed: RNG seed for data and queries.
        range_batch: number of range queries for the range-batch probe.
        scalar_sample: cap on the scalar-loop sample (the slow side);
            throughput extrapolates, parity is covered by the test suite.
        out: path of the JSON artifact, or ``None``/"" to skip writing.
        smoke: shrink to a seconds-scale CI configuration.

    Returns:
        One row per (dataset, index) with scalar/batch ops/sec and speedups.
    """
    if smoke:
        n = min(n, 4000)
        batch = min(batch, 800)
        range_batch = min(range_batch, 40)
        scalar_sample = min(scalar_sample, 400)
        if datasets is None:
            datasets = ("uniform",)
    if isinstance(datasets, str):
        datasets = [name for name in datasets.split(",") if name]
    if isinstance(indexes, str):
        indexes = [name for name in indexes.split(",") if name]
    dataset_names = list(datasets) if datasets else list(DEFAULT_E18_DATASETS)
    names = list(indexes) if indexes else list(DEFAULT_E18_INDEXES)
    unknown = [name for name in names if name not in MULTI_DIM_FACTORIES]
    if unknown:
        raise KeyError(f"unknown multi-d indexes {unknown!r}; have {sorted(MULTI_DIM_FACTORIES)}")

    rows = []
    for dataset in dataset_names:
        points = load_nd(dataset, n, dims=dims, seed=seed)
        queries = point_lookups(points, batch, seed=seed + 1)
        boxes = range_queries_nd(points, range_batch, selectivity=0.0005, seed=seed + 2)
        box_lows = np.vstack([lo for lo, _ in boxes]) if boxes else np.empty((0, dims))
        box_highs = np.vstack([hi for _, hi in boxes]) if boxes else np.empty((0, dims))
        for name in names:
            index, build_s = build_index(MULTI_DIM_FACTORIES[name], points)
            sample = queries[: min(scalar_sample, len(queries))]
            scalar = measure_lookups(index, sample, is_multi_dim=True)
            batched = measure_batch_lookups(index, queries, is_multi_dim=True)
            scalar_ops = 1e6 / scalar["lookup_us"] if scalar["lookup_us"] else 0.0
            batch_ops = batched["ops_per_s"]
            row = {
                "index": name,
                "dataset": dataset,
                "n": n,
                "dims": dims,
                "batch": batch,
                "scalar_ops_per_s": scalar_ops,
                "batch_ops_per_s": batch_ops,
                "speedup": batch_ops / scalar_ops if scalar_ops else 0.0,
                "hits_batch": batched["hits"],
                "build_s": build_s,
            }
            # Range-batch probe only where an override exists: the generic
            # fallback is the same loop as the scalar side, so timing it
            # would just measure noise.
            if type(index).range_query_batch is not MultiDimIndex.range_query_batch:
                row.update(_measure_range_batch(index, box_lows, box_highs))
            rows.append(row)

    if out:
        payload = {
            "experiment": "E18",
            "datasets": dataset_names,
            "n": n,
            "dims": dims,
            "batch": batch,
            "range_batch": range_batch,
            "seed": seed,
            "environment": _environment_metadata(),
            "results": {
                f"{row['dataset']}/{row['index']}": {
                    "scalar_ops_per_s": row["scalar_ops_per_s"],
                    "batch_ops_per_s": row["batch_ops_per_s"],
                    "speedup": row["speedup"],
                    **({"range_speedup": row["range_speedup"]}
                       if "range_speedup" in row else {}),
                }
                for row in rows
            },
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    return rows


def _measure_range_batch(index, lows: np.ndarray, highs: np.ndarray) -> dict:
    """Looped vs. batched range-query throughput for one built index."""
    import time

    m = lows.shape[0]
    if m == 0:
        return {}
    t0 = time.perf_counter()
    loop_results = [index.range_query(lows[i], highs[i]) for i in range(m)]
    loop_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    batch_results = index.range_query_batch(lows, highs)
    batch_s = time.perf_counter() - t0
    loop_ops = m / loop_s if loop_s else 0.0
    batch_ops = m / batch_s if batch_s else 0.0
    return {
        "range_scalar_ops_per_s": loop_ops,
        "range_batch_ops_per_s": batch_ops,
        "range_speedup": batch_ops / loop_ops if loop_ops else 0.0,
        "range_hits": sum(len(r) for r in batch_results),
        "range_hits_scalar": sum(len(r) for r in loop_results),
    }
