"""E17 — batch-query throughput: per-key loops vs. vectorized batches.

SOSD and "Benchmarking Learned Indexes" (Marcus et al.) report lookup
throughput over large query batches because that is how index-serving
systems are actually driven.  In this pure-Python reproduction the
per-key query path is dominated by interpreter overhead, which buries
the algorithmic differences the survey taxonomy is about; the batch API
(:meth:`repro.core.interfaces.OneDimIndex.lookup_batch`) amortizes that
overhead into numpy kernels.  E17 quantifies the gap: for each index it
measures scalar ops/sec (a Python loop of ``lookup`` calls) against
batched ops/sec (one ``lookup_batch`` call), and emits the results as a
machine-readable ``BENCH_batch.json`` so later PRs can track the
performance trajectory.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.bench.runner import (
    ONE_DIM_FACTORIES,
    build_index,
    measure_batch_lookups,
    measure_lookups,
)
from repro.data import load_1d, point_lookups

__all__ = ["run_e17", "DEFAULT_E17_INDEXES"]

#: Contenders with vectorized fast paths plus the loop-fallback B+-tree
#: as a control showing the fallback neither breaks nor regresses.
DEFAULT_E17_INDEXES = ("binary-search", "rmi", "pgm", "radix-spline", "b+tree")


def run_e17(n: int = 100000, batch: int = 10000, dataset: str = "uniform",
            indexes=None, seed: int = 1, out: str | None = "BENCH_batch.json",
            smoke: bool = False) -> list[dict]:
    """E17: batched vs. per-key lookup throughput per index.

    Args:
        n: number of keys to index.
        batch: number of point queries answered per measurement.
        dataset: 1-d dataset name (see :func:`repro.data.load_1d`).
        indexes: contender names from ``ONE_DIM_FACTORIES`` (sequence or
            comma-separated string); defaults to the vectorized hot
            paths plus a loop-fallback control.
        seed: RNG seed for data and queries.
        out: path of the JSON artifact, or ``None``/"" to skip writing.
        smoke: shrink to a seconds-scale CI configuration.

    Returns:
        One row per index with scalar/batch ops/sec and the speedup.
    """
    if smoke:
        n = min(n, 5000)
        batch = min(batch, 1000)
    if isinstance(indexes, str):  # e.g. --param indexes=rmi,pgm
        indexes = [name for name in indexes.split(",") if name]
    names = list(indexes) if indexes else list(DEFAULT_E17_INDEXES)
    unknown = [name for name in names if name not in ONE_DIM_FACTORIES]
    if unknown:
        raise KeyError(f"unknown 1-d indexes {unknown!r}; have {sorted(ONE_DIM_FACTORIES)}")

    keys = load_1d(dataset, n, seed=seed)
    queries = point_lookups(keys, batch, seed=seed + 1)

    rows = []
    for name in names:
        index, build_s = build_index(ONE_DIM_FACTORIES[name], keys)
        scalar = measure_lookups(index, queries)
        batched = measure_batch_lookups(index, queries)
        scalar_ops = 1e6 / scalar["lookup_us"] if scalar["lookup_us"] else 0.0
        batch_ops = batched["ops_per_s"]
        rows.append({
            "index": name,
            "dataset": dataset,
            "n": n,
            "batch": batch,
            "scalar_ops_per_s": scalar_ops,
            "batch_ops_per_s": batch_ops,
            "speedup": batch_ops / scalar_ops if scalar_ops else 0.0,
            "hits_scalar": scalar["hits"],
            "hits_batch": batched["hits"],
            "build_s": build_s,
        })

    if out:
        payload = {
            "experiment": "E17",
            "dataset": dataset,
            "n": n,
            "batch": batch,
            "seed": seed,
            "results": {
                row["index"]: {
                    "scalar_ops_per_s": row["scalar_ops_per_s"],
                    "batch_ops_per_s": row["batch_ops_per_s"],
                    "speedup": row["speedup"],
                }
                for row in rows
            },
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    return rows
