"""Generic experiment plumbing: index factories and measurement loops.

The factory registries below enumerate the contenders of every
experiment; each entry is ``name -> zero-argument constructor`` so
experiments can instantiate fresh indexes per run.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.baselines import (
    BloomFilter,
    BPlusTreeIndex,
    GridIndex,
    HashIndex,
    KDTreeIndex,
    LinearScanIndex,
    LSMTreeIndex,
    QuadTreeIndex,
    RTreeIndex,
    SkipListIndex,
    SortedArrayIndex,
)
from repro.core.interfaces import (
    MembershipFilter,
    MultiDimIndex,
    MutableOneDimIndex,
    OneDimIndex,
)
from repro.multidim.spatial_lbf import SpatialLearnedBloomFilter
from repro.multidim import (
    AIRTreeIndex,
    RSMIIndex,
    FloodIndex,
    LearnedKDIndex,
    LISAIndex,
    MLIndex,
    QdTreeIndex,
    SPRIGIndex,
    TsunamiIndex,
    ZMIndex,
)
from repro.onedim import (
    ALEXIndex,
    NFLIndex,
    BourbonLSM,
    DynamicPGMIndex,
    FITingTreeIndex,
    HistTreeIndex,
    HybridRMIIndex,
    InterpolationBTreeIndex,
    LearnedBloomFilter,
    LearnedHashIndex,
    LearnedSkipList,
    LIPPIndex,
    PartitionedLearnedBloomFilter,
    PGMIndex,
    RadixSplineIndex,
    RMIIndex,
    SandwichedLearnedBloomFilter,
    SNARFFilter,
    XIndexStyleIndex,
)

__all__ = [
    "ONE_DIM_FACTORIES",
    "MUTABLE_ONE_DIM_FACTORIES",
    "MULTI_DIM_FACTORIES",
    "MUTABLE_MULTI_DIM_FACTORIES",
    "FILTER_FACTORIES",
    "build_index",
    "measure_lookups",
    "measure_batch_lookups",
    "measure_inserts",
    "measure_range_queries",
]

#: All 1-d indexes with lookup support (learned + traditional baselines).
ONE_DIM_FACTORIES: dict[str, Callable[[], OneDimIndex]] = {
    "linear-scan": LinearScanIndex,
    "binary-search": SortedArrayIndex,
    "b+tree": BPlusTreeIndex,
    "skiplist": SkipListIndex,
    "hash": HashIndex,
    "lsm": LSMTreeIndex,
    "rmi": RMIIndex,
    "hybrid-rmi": HybridRMIIndex,
    "radix-spline": RadixSplineIndex,
    "hist-tree": HistTreeIndex,
    "pgm": PGMIndex,
    "dynamic-pgm": DynamicPGMIndex,
    "fiting-tree": FITingTreeIndex,
    "alex": ALEXIndex,
    "lipp": LIPPIndex,
    "xindex": XIndexStyleIndex,
    "ifb-tree": InterpolationBTreeIndex,
    "bourbon": BourbonLSM,
    "learned-skiplist": LearnedSkipList,
    "nfl": NFLIndex,
    "learned-hash": LearnedHashIndex,
}

#: The mutable subset (insert/delete benchmarks).
MUTABLE_ONE_DIM_FACTORIES: dict[str, Callable[[], MutableOneDimIndex]] = {
    "linear-scan": LinearScanIndex,
    "b+tree": BPlusTreeIndex,
    "skiplist": SkipListIndex,
    "lsm": LSMTreeIndex,
    "dynamic-pgm": DynamicPGMIndex,
    "fiting-tree": FITingTreeIndex,
    "alex": ALEXIndex,
    "lipp": LIPPIndex,
    "xindex": XIndexStyleIndex,
    "ifb-tree": InterpolationBTreeIndex,
    "bourbon": BourbonLSM,
    "learned-skiplist": LearnedSkipList,
    "nfl": NFLIndex,
    "learned-hash": LearnedHashIndex,
}

#: All multi-dimensional indexes.
MULTI_DIM_FACTORIES: dict[str, Callable[[], MultiDimIndex]] = {
    "r-tree": RTreeIndex,
    "kd-tree": KDTreeIndex,
    "quadtree": QuadTreeIndex,
    "grid": GridIndex,
    "zm-index": ZMIndex,
    "ml-index": MLIndex,
    "flood": FloodIndex,
    "tsunami": TsunamiIndex,
    "qd-tree": QdTreeIndex,
    "learned-kd": LearnedKDIndex,
    "sprig": SPRIGIndex,
    "lisa": LISAIndex,
    "ai+r-tree": AIRTreeIndex,
    "rsmi": RSMIIndex,
}

#: Mutable multi-dimensional subset.
MUTABLE_MULTI_DIM_FACTORIES: dict[str, Callable[[], MultiDimIndex]] = {
    "r-tree": RTreeIndex,
    "kd-tree": KDTreeIndex,
    "quadtree": QuadTreeIndex,
    "grid": GridIndex,
    "lisa": LISAIndex,
    "ai+r-tree": AIRTreeIndex,
    "rsmi": RSMIIndex,
}

#: Approximate-membership filters (Bloom family + learned range filters).
#: Every concrete :class:`MembershipFilter` must appear here (or carry an
#: ``implemented=`` registry entry) so the contract linter's RPR001 rule
#: and the registry-completeness test can prove nothing escapes the
#: uniform filter API.
FILTER_FACTORIES: dict[str, Callable[[], MembershipFilter]] = {
    "bloom": BloomFilter,
    "learned-bloom": LearnedBloomFilter,
    "sandwiched-lbf": SandwichedLearnedBloomFilter,
    "partitioned-lbf": PartitionedLearnedBloomFilter,
    "snarf": SNARFFilter,
    "spatial-lbf": SpatialLearnedBloomFilter,
}


def build_index(factory: Callable[[], object], data, values=None) -> tuple[object, float]:
    """Build an index and return ``(index, build_seconds)``."""
    index = factory()
    start = time.perf_counter()
    index.build(data, values)
    elapsed = time.perf_counter() - start
    index.stats.build_seconds = elapsed
    return index, elapsed


def measure_lookups(index, queries: np.ndarray, is_multi_dim: bool = False) -> dict:
    """Run point queries and return latency + cost-counter aggregates."""
    index.stats.reset_counters()
    start = time.perf_counter()
    hits = 0
    if is_multi_dim:
        for q in queries:
            if index.point_query(q) is not None:
                hits += 1
    else:
        for q in queries:
            if index.lookup(float(q)) is not None:
                hits += 1
    elapsed = time.perf_counter() - start
    n = len(queries)
    return {
        "lookup_us": elapsed / n * 1e6 if n else 0.0,
        "hits": hits,
        "cmp_per_op": index.stats.comparisons / n if n else 0.0,
        "scanned_per_op": index.stats.keys_scanned / n if n else 0.0,
        "nodes_per_op": index.stats.nodes_visited / n if n else 0.0,
    }


def measure_batch_lookups(index, queries: np.ndarray, is_multi_dim: bool = False) -> dict:
    """Run one batched point-query call and return latency aggregates.

    The counterpart of :func:`measure_lookups` for the batch API: a
    single ``lookup_batch`` / ``point_query_batch`` call answers the
    whole query array, so the reported per-op latency amortizes the
    Python call overhead that dominates the scalar loop.
    """
    index.stats.reset_counters()
    qs = np.asarray(queries)
    start = time.perf_counter()
    if is_multi_dim:
        results = index.point_query_batch(qs)
    else:
        results = index.lookup_batch(qs)
    elapsed = time.perf_counter() - start
    n = len(qs)
    hits = int(sum(1 for r in results if r is not None))
    return {
        "lookup_us": elapsed / n * 1e6 if n else 0.0,
        "ops_per_s": n / elapsed if elapsed > 0 else 0.0,
        "hits": hits,
        "cmp_per_op": index.stats.comparisons / n if n else 0.0,
        "scanned_per_op": index.stats.keys_scanned / n if n else 0.0,
    }


def measure_inserts(index, keys: np.ndarray, is_multi_dim: bool = False) -> dict:
    """Run inserts and return throughput."""
    index.stats.reset_counters()
    start = time.perf_counter()
    if is_multi_dim:
        for i, k in enumerate(keys):
            index.insert(k, i)
    else:
        for i, k in enumerate(keys):
            index.insert(float(k), i)
    elapsed = time.perf_counter() - start
    n = len(keys)
    return {
        "insert_us": elapsed / n * 1e6 if n else 0.0,
        "inserts_per_s": n / elapsed if elapsed > 0 else 0.0,
    }


def measure_range_queries(index, ranges, is_multi_dim: bool = False) -> dict:
    """Run range queries and return latency + result sizes."""
    index.stats.reset_counters()
    start = time.perf_counter()
    results = 0
    for lo, hi in ranges:
        results += len(index.range_query(lo, hi))
    elapsed = time.perf_counter() - start
    n = len(ranges)
    return {
        "range_us": elapsed / n * 1e6 if n else 0.0,
        "avg_results": results / n if n else 0.0,
        "scanned_per_op": index.stats.keys_scanned / n if n else 0.0,
    }
