"""In-memory B+-tree.

The B-tree is the traditional index the original learned-index paper set
out to replace, and the hybrid branch of the taxonomy keeps it as a
component (Hybrid-RMI leaves, IFB-tree nodes).  This implementation is a
classic order-``fanout`` B+-tree: internal nodes route, leaves hold the
``(key, value)`` pairs and are chained for range scans.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Sequence

import numpy as np

from repro.core.interfaces import MutableOneDimIndex
from repro.core.state import IndexState, export_index_state

__all__ = ["BPlusTreeIndex"]


class _Node:
    """A B+-tree node; ``leaf`` nodes carry values and a next pointer."""

    __slots__ = ("keys", "children", "values", "leaf", "next")

    def __init__(self, leaf: bool) -> None:
        self.keys: list[float] = []
        self.children: list[_Node] = []
        self.values: list[object] = []
        self.leaf = leaf
        self.next: _Node | None = None


class BPlusTreeIndex(MutableOneDimIndex):
    """A B+-tree with configurable fanout (default 64).

    Args:
        fanout: maximum number of keys per node; nodes split at fanout
            and merge-by-borrowing is replaced with lazy deletion (keys
            are removed from leaves; underflow is tolerated), which keeps
            the structure simple while preserving search correctness.
    """

    name = "b+tree"

    def __init__(self, fanout: int = 64) -> None:
        super().__init__()
        if fanout < 4:
            raise ValueError("fanout must be >= 4")
        self.fanout = fanout
        self._root = _Node(leaf=True)
        self._size = 0
        self._height = 1

    # -- construction ----------------------------------------------------
    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "BPlusTreeIndex":
        """Bulk-load bottom-up from sorted keys."""
        arr, vals = self._prepare(keys, values)
        self._size = int(arr.size)
        self._built = True
        self._load_sorted(arr, vals)
        return self

    def _load_sorted(self, arr: np.ndarray, vals: list[object]) -> None:
        """Bottom-up bulk load of already-sorted pairs (iterative)."""
        if arr.size == 0:
            self._root = _Node(leaf=True)
            self._height = 1
            return

        # Build leaves at ~2/3 fill to leave insert headroom.
        per_leaf = max(2, (2 * self.fanout) // 3)
        leaves: list[_Node] = []
        for start in range(0, arr.size, per_leaf):
            leaf = _Node(leaf=True)
            leaf.keys = [float(k) for k in arr[start:start + per_leaf]]
            leaf.values = vals[start:start + per_leaf]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)

        level: list[_Node] = leaves
        # Track the minimum leaf key under each node: internal separators
        # must be subtree minima, not the child's own first separator.
        level_mins: list[float] = [leaf.keys[0] for leaf in leaves]
        height = 1
        while len(level) > 1:
            parents: list[_Node] = []
            parent_mins: list[float] = []
            per_node = max(2, (2 * self.fanout) // 3)
            for start in range(0, len(level), per_node):
                group = level[start:start + per_node]
                mins = level_mins[start:start + per_node]
                parent = _Node(leaf=False)
                parent.children = group
                parent.keys = mins[1:]
                parents.append(parent)
                parent_mins.append(mins[0])
            level = parents
            level_mins = parent_mins
            height += 1
        self._root = level[0]
        self._height = height
        self._update_size_estimate()

    # -- state export/restore ---------------------------------------------
    def export_state(self) -> IndexState:
        """Flatten the leaf chain into (keys, values) columns.

        The generic exporter would pickle the node graph, whose leaf
        ``next`` chain recurses once per leaf and overflows pickle's
        recursion limit beyond a few thousand keys; flattening keeps
        the export iterative and puts the key column into a shareable
        array.
        """
        self._require_built()
        keys: list[float] = []
        values: list[object] = []
        for key, value in self.items():
            keys.append(key)
            values.append(value)
        root = self._root
        try:
            self._root = _Node(leaf=True)  # detach the node graph
            self._chain_flat = (np.asarray(keys, dtype=np.float64), values)
            return export_index_state(self)
        finally:
            del self._chain_flat
            self._root = root

    @classmethod
    def from_state(cls, state: IndexState,
                   arrays: list[np.ndarray] | None = None) -> "BPlusTreeIndex":
        """Rebuild the node graph bottom-up from the flattened columns."""
        instance = super().from_state(state, arrays)
        assert isinstance(instance, BPlusTreeIndex)
        keys_arr, values = instance.__dict__.pop("_chain_flat")
        instance._load_sorted(np.asarray(keys_arr, dtype=np.float64),
                              list(values))
        return instance

    def _update_size_estimate(self) -> None:
        nodes = 0
        keys = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            nodes += 1
            keys += len(node.keys)
            if not node.leaf:
                stack.extend(node.children)
        self.stats.size_bytes = nodes * 64 + keys * 16
        self.stats.extra["height"] = self._height
        self.stats.extra["nodes"] = nodes

    # -- search -----------------------------------------------------------
    def _find_leaf(self, key: float) -> _Node:
        node = self._root
        while not node.leaf:
            self.stats.nodes_visited += 1
            idx = bisect.bisect_right(node.keys, key)
            self.stats.comparisons += max(1, len(node.keys).bit_length())
            node = node.children[idx]
        self.stats.nodes_visited += 1
        return node

    def lookup(self, key: float) -> object | None:
        self._require_built()
        key = float(key)
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        self.stats.comparisons += max(1, len(leaf.keys).bit_length())
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            self.stats.keys_scanned += 1
            return leaf.values[idx]
        return None

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low:
            return []
        leaf: _Node | None = self._find_leaf(float(low))
        out: list[tuple[float, object]] = []
        idx = bisect.bisect_left(leaf.keys, float(low))
        while leaf is not None:
            while idx < len(leaf.keys):
                k = leaf.keys[idx]
                if k > high:
                    return out
                out.append((k, leaf.values[idx]))
                self.stats.keys_scanned += 1
                idx += 1
            leaf = leaf.next
            idx = 0
            if leaf is not None:
                self.stats.nodes_visited += 1
        return out

    # -- updates ----------------------------------------------------------
    def insert(self, key: float, value: object | None = None) -> None:
        self._require_built()
        key = float(key)
        split = self._insert_into(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Node(leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1

    def _insert_into(self, node: _Node, key: float, value: object) -> tuple[float, _Node] | None:
        if node.leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx] = value
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            self._size += 1
            if len(node.keys) > self.fanout:
                return self._split_leaf(node)
            return None
        idx = bisect.bisect_right(node.keys, key)
        split = self._insert_into(node.children[idx], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.keys) > self.fanout:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node) -> tuple[float, _Node]:
        mid = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> tuple[float, _Node]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return sep, right

    def delete(self, key: float) -> bool:
        """Lazy delete: remove from the leaf, tolerate underflow."""
        self._require_built()
        key = float(key)
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            del leaf.keys[idx]
            del leaf.values[idx]
            self._size -= 1
            return True
        return False

    # -- iteration ----------------------------------------------------------
    def items(self) -> Iterator[tuple[float, object]]:
        """Yield all pairs in key order via the leaf chain."""
        node = self._root
        while not node.leaf:
            node = node.children[0]
        leaf: _Node | None = node
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    @property
    def height(self) -> int:
        """Tree height (1 = a single leaf)."""
        return self._height

    def __len__(self) -> int:
        return self._size
