"""Hash index baseline.

Point-query champion, range-query nonstarter — included so benchmarks can
show both sides.  Backed by Python's dict (itself an open-addressing hash
table) plus a sorted key copy for the (slow) range path, mirroring how a
hash index in a real system needs a secondary structure for ranges.
"""

from __future__ import annotations

import bisect
from typing import Sequence

from repro.core.interfaces import MutableOneDimIndex

__all__ = ["HashIndex"]


class HashIndex(MutableOneDimIndex):
    """Dict-backed hash index; ranges fall back to a sorted key list."""

    name = "hash"

    def __init__(self) -> None:
        super().__init__()
        self._table: dict[float, object] = {}
        self._sorted_keys: list[float] = []
        self._sorted_dirty = False

    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "HashIndex":
        arr, vals = self._prepare(keys, values)
        self._table = {float(k): v for k, v in zip(arr, vals)}
        self._sorted_keys = sorted(self._table)
        self._sorted_dirty = False
        self._built = True
        self.stats.size_bytes = 48 * len(self._table)
        return self

    def lookup(self, key: float) -> object | None:
        self._require_built()
        self.stats.comparisons += 1
        return self._table.get(float(key))

    def _ensure_sorted(self) -> None:
        if self._sorted_dirty:
            self._sorted_keys = sorted(self._table)
            self._sorted_dirty = False

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low:
            return []
        self._ensure_sorted()
        first = bisect.bisect_left(self._sorted_keys, float(low))
        out: list[tuple[float, object]] = []
        for i in range(first, len(self._sorted_keys)):
            k = self._sorted_keys[i]
            if k > high:
                break
            out.append((k, self._table[k]))
            self.stats.keys_scanned += 1
        return out

    def insert(self, key: float, value: object | None = None) -> None:
        self._require_built()
        key = float(key)
        if key not in self._table:
            self._sorted_dirty = True
        self._table[key] = value
        self.stats.size_bytes = 48 * len(self._table)

    def delete(self, key: float) -> bool:
        self._require_built()
        key = float(key)
        if key in self._table:
            del self._table[key]
            self._sorted_dirty = True
            self.stats.size_bytes = 48 * len(self._table)
            return True
        return False

    def __len__(self) -> int:
        return len(self._table)
