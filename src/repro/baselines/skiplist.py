"""Probabilistic skip list (Pugh 1990).

The skip list is the traditional structure behind the learned S3 index and
many LSM memtables.  Towers are built with geometric heights from a
deterministic RNG so tests are reproducible.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.interfaces import MutableOneDimIndex
from repro.core.state import IndexState, export_index_state

__all__ = ["SkipListIndex"]

_MAX_LEVEL = 32


class _SkipNode:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: float, value: object, level: int) -> None:
        self.key = key
        self.value = value
        self.forward: list[_SkipNode | None] = [None] * level


class SkipListIndex(MutableOneDimIndex):
    """A skip list with p = 1/2 towers and a deterministic seed."""

    name = "skiplist"

    def __init__(self, seed: int = 42) -> None:
        super().__init__()
        self._rng = np.random.default_rng(seed)
        self._head = _SkipNode(-np.inf, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0

    def _random_level(self) -> int:
        """Level-bounded coin-flip loop: caps at ``_MAX_LEVEL``."""
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < 0.5:
            level += 1
        return level

    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "SkipListIndex":
        arr, vals = self._prepare(keys, values)
        self._head = _SkipNode(-np.inf, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0
        self._built = True
        # Insert in sorted order; appending to the tail is cheap because
        # the search path is short for already-largest keys.
        for key, value in zip(arr, vals):
            self.insert(float(key), value)
        self.stats.size_bytes = self._size * 40
        return self

    def _find_predecessors(self, key: float) -> list[_SkipNode]:
        """Predecessor pointers for ``key`` at every level.

        Level-bounded descent: the outer loop walks the tower height and
        each level's forward scan advances a shared cursor — the classic
        expected-O(log n) skip-list search.
        """
        update = [self._head] * _MAX_LEVEL
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            while node.forward[lvl] is not None and node.forward[lvl].key < key:
                node = node.forward[lvl]
                self.stats.comparisons += 1
            update[lvl] = node
        return update

    def lookup(self, key: float) -> object | None:
        self._require_built()
        key = float(key)
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        self.stats.nodes_visited += 1
        if node is not None and node.key == key:
            self.stats.keys_scanned += 1
            return node.value
        return None

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low:
            return []
        update = self._find_predecessors(float(low))
        node = update[0].forward[0]
        out: list[tuple[float, object]] = []
        while node is not None and node.key <= high:
            out.append((node.key, node.value))
            self.stats.keys_scanned += 1
            node = node.forward[0]
        return out

    def insert(self, key: float, value: object | None = None) -> None:
        """Level-bounded splice: expected-O(log n) predecessor search,
        then a tower update of at most ``_MAX_LEVEL`` pointers."""
        self._require_built()
        key = float(key)
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is not None and node.key == key:
            node.value = value
            return
        level = self._random_level()
        if level > self._level:
            self._level = level
        new_node = _SkipNode(key, value, level)
        for lvl in range(level):
            new_node.forward[lvl] = update[lvl].forward[lvl]
            update[lvl].forward[lvl] = new_node
        self._size += 1
        self.stats.size_bytes = self._size * 40

    def delete(self, key: float) -> bool:
        self._require_built()
        key = float(key)
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is None or node.key != key:
            return False
        for lvl in range(len(node.forward)):
            if update[lvl].forward[lvl] is node:
                update[lvl].forward[lvl] = node.forward[lvl]
        self._size -= 1
        self.stats.size_bytes = self._size * 40
        return True

    def items(self) -> Iterator[tuple[float, object]]:
        """Yield all pairs in key order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    # -- built-state export: the chain flattens to arrays ------------------
    #: Node-holding attributes nulled out during export (subclasses extend).
    _STATE_NODE_ATTRS: tuple[str, ...] = ("_head",)

    def export_state(self) -> IndexState:
        """Flatten the tower chain into (keys, levels, values) columns.

        The generic exporter would pickle the linked ``_SkipNode`` chain,
        which recurses once per node and overflows pickle's recursion
        limit beyond a few hundred keys; flattening keeps the export
        iterative and puts the key column into a shareable array.
        """
        self._require_built()
        keys: list[float] = []
        levels: list[int] = []
        values: list[object] = []
        node = self._head.forward[0]
        while node is not None:
            keys.append(node.key)
            levels.append(len(node.forward))
            values.append(node.value)
            node = node.forward[0]
        saved = {name: getattr(self, name) for name in self._STATE_NODE_ATTRS}
        try:
            for name in self._STATE_NODE_ATTRS:
                setattr(self, name, None)
            self._chain_flat = (
                np.asarray(keys, dtype=np.float64),
                np.asarray(levels, dtype=np.int64),
                values,
            )
            return export_index_state(self)
        finally:
            del self._chain_flat
            for name, value in saved.items():
                setattr(self, name, value)

    @classmethod
    def from_state(cls, state: IndexState,
                   arrays: list[np.ndarray] | None = None) -> "SkipListIndex":
        """Rebuild the tower chain from the flattened columns."""
        instance = super().from_state(state, arrays)
        assert isinstance(instance, SkipListIndex)
        keys_arr, levels_arr, values = instance.__dict__.pop("_chain_flat")
        head = _SkipNode(-np.inf, None, _MAX_LEVEL)
        tails = [head] * _MAX_LEVEL
        for key, level, value in zip(keys_arr, levels_arr, values):
            node = _SkipNode(float(key), value, int(level))
            for lvl in range(int(level)):
                tails[lvl].forward[lvl] = node
                tails[lvl] = node
        instance._head = head
        instance._restore_from_chain()
        return instance

    def _restore_from_chain(self) -> None:
        """Hook: rebuild derived node references after :meth:`from_state`."""

    def __len__(self) -> int:
        return self._size
