"""Traditional index structures: baselines and hybrid-index substrates."""

from repro.baselines.bloom import BloomFilter, optimal_bits, optimal_hashes
from repro.baselines.btree import BPlusTreeIndex
from repro.baselines.gridfile import GridIndex
from repro.baselines.hash_index import HashIndex
from repro.baselines.kdtree import KDTreeIndex
from repro.baselines.linear_scan import LinearScanIndex
from repro.baselines.lsm import LSMTreeIndex, SortedRun, TOMBSTONE
from repro.baselines.quadtree import QuadTreeIndex
from repro.baselines.rtree import RTreeIndex
from repro.baselines.skiplist import SkipListIndex
from repro.baselines.sorted_array import SortedArrayIndex

__all__ = [
    "BloomFilter",
    "optimal_bits",
    "optimal_hashes",
    "BPlusTreeIndex",
    "GridIndex",
    "HashIndex",
    "KDTreeIndex",
    "LinearScanIndex",
    "LSMTreeIndex",
    "SortedRun",
    "TOMBSTONE",
    "QuadTreeIndex",
    "RTreeIndex",
    "SkipListIndex",
    "SortedArrayIndex",
]
