"""Unindexed linear scan — the deliberate O(n)-per-lookup control.

Every complexity argument in the repo needs a known-linear reference
point: the scaling witness (:mod:`repro.bench.scaling`) fits counted
work per operation against each factory's declared
:class:`~repro.core.taxonomy.ComplexityClass`, and this structure is
the 1-d factory that *must* come out O(n).  It stores keys and values
in insertion order with no auxiliary structure at all; a lookup scans
the whole key array.  The scan itself is a single vectorized numpy
comparison (so experiments that loop over every factory stay fast),
but the *counted* work — ``stats.keys_scanned`` — is honestly ``n``
per query, which is what machine-independent analysis measures.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.interfaces import MutableOneDimIndex, as_object_array

__all__ = ["LinearScanIndex"]


class LinearScanIndex(MutableOneDimIndex):
    """Full-array scan per query: O(n) lookup, O(n) upsert, no index."""

    name = "linear-scan"

    def __init__(self) -> None:
        super().__init__()
        self._keys: np.ndarray = np.empty(0, dtype=np.float64)
        self._values: np.ndarray = as_object_array([])

    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "LinearScanIndex":
        arr, vals = self._prepare(keys, values)
        self._keys = arr
        self._values = as_object_array(vals)
        self._built = True
        self.stats.size_bytes = 16 * int(arr.size)
        return self

    def _scan(self, key: float) -> int:
        """Index of the first occurrence of ``key``, or -1; scans all n."""
        self.stats.keys_scanned += int(self._keys.size)
        hits = np.nonzero(self._keys == key)[0]
        return int(hits[0]) if hits.size else -1

    def lookup(self, key: float) -> object | None:
        self._require_built()
        idx = self._scan(float(key))
        if idx < 0:
            return None
        return self._values[idx]

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low:
            return []
        arr = self._keys
        self.stats.keys_scanned += int(arr.size)
        idx = np.nonzero((arr >= float(low)) & (arr <= float(high)))[0]
        order = idx[np.argsort(arr[idx], kind="stable")]
        return [(float(arr[i]), self._values[i]) for i in order]

    def insert(self, key: float, value: object | None = None) -> None:
        self._require_built()
        key = float(key)
        idx = self._scan(key)
        if idx >= 0:
            self._thaw("_values")
            self._values[idx] = value
            return
        self._keys = np.append(self._keys, key)
        self._values = np.append(self._values, as_object_array([value]))
        self.stats.size_bytes = 16 * int(self._keys.size)

    def delete(self, key: float) -> bool:
        self._require_built()
        idx = self._scan(float(key))
        if idx < 0:
            return False
        self._keys = np.delete(self._keys, idx)
        self._values = np.delete(self._values, idx)
        self.stats.size_bytes = 16 * int(self._keys.size)
        return True

    def __len__(self) -> int:
        return int(self._keys.size)
