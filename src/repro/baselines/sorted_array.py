"""Sorted array with binary search — the canonical 1-D baseline.

Every learned one-dimensional index is, at heart, a way to beat binary
search over this exact layout.  The benchmark harness uses it both as the
performance baseline and as the correctness oracle for all other indexes.
"""

from __future__ import annotations

import bisect
import math
from typing import Sequence

import numpy as np

from repro.core.interfaces import MutableOneDimIndex, as_object_array

__all__ = ["SortedArrayIndex"]


class SortedArrayIndex(MutableOneDimIndex):
    """Binary search over a sorted key array, with aligned values.

    Inserts and deletes are O(n) (array shifts) — that is exactly the
    trade-off traditional sorted layouts make and what the delta-buffer
    learned indexes avoid.
    """

    name = "sorted-array"

    def __init__(self) -> None:
        super().__init__()
        self._keys: list[float] = []
        self._values: list[object] = []
        #: numpy mirror of ``_keys``/``_values`` for the batch path,
        #: rebuilt lazily after inserts/deletes invalidate it.
        self._keys_np: np.ndarray | None = None
        self._values_np: np.ndarray | None = None

    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "SortedArrayIndex":
        arr, vals = self._prepare(keys, values)
        self._keys = [float(k) for k in arr]
        self._values = vals
        self._keys_np = arr
        self._values_np = as_object_array(vals)
        self._built = True
        self.stats.size_bytes = 16 * len(self._keys)
        return self

    def _locate(self, key: float) -> int:
        """Binary-search index of ``key`` (first >=), counting comparisons."""
        lo, hi = 0, len(self._keys)
        while lo < hi:
            mid = (lo + hi) // 2
            self.stats.comparisons += 1
            if self._keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def lookup(self, key: float) -> object | None:
        self._require_built()
        idx = self._locate(key)
        if idx < len(self._keys) and self._keys[idx] == key:
            self.stats.keys_scanned += 1
            return self._values[idx]
        return None

    def lookup_batch(self, keys) -> np.ndarray:
        """Vectorized batch lookup: one ``np.searchsorted`` for the batch."""
        self._require_built()
        qs = np.asarray(keys, dtype=np.float64)
        if qs.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        out = np.full(qs.size, None, dtype=object)
        if self._keys_np is None:
            self._keys_np = np.asarray(self._keys, dtype=np.float64)
            self._values_np = as_object_array(self._values)
        arr = self._keys_np
        n = arr.size
        if n == 0 or qs.size == 0:
            return out
        pos = np.searchsorted(arr, qs, side="left")
        hit = (pos < n) & (arr[np.minimum(pos, n - 1)] == qs)
        hit_idx = np.nonzero(hit)[0]
        self.stats.comparisons += qs.size * int(math.ceil(math.log2(max(n, 2))))
        self.stats.keys_scanned += int(hit_idx.size)
        out[hit_idx] = self._values_np[pos[hit_idx]]
        return out

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low:
            return []
        first = self._locate(low)
        out: list[tuple[float, object]] = []
        i = first
        while i < len(self._keys) and self._keys[i] <= high:
            out.append((self._keys[i], self._values[i]))
            self.stats.keys_scanned += 1
            i += 1
        return out

    def insert(self, key: float, value: object | None = None) -> None:
        self._require_built()
        key = float(key)
        self._keys_np = self._values_np = None
        idx = bisect.bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            self._values[idx] = value
            return
        self._keys.insert(idx, key)
        self._values.insert(idx, value)
        self.stats.size_bytes = 16 * len(self._keys)

    def delete(self, key: float) -> bool:
        self._require_built()
        key = float(key)
        idx = bisect.bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            self._keys_np = self._values_np = None
            del self._keys[idx]
            del self._values[idx]
            self.stats.size_bytes = 16 * len(self._keys)
            return True
        return False

    def __len__(self) -> int:
        return len(self._keys)

    def keys_array(self) -> np.ndarray:
        """The sorted keys as a numpy array (for oracles in tests)."""
        return np.asarray(self._keys, dtype=np.float64)
