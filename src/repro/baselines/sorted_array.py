"""Sorted array with binary search — the canonical 1-D baseline.

Every learned one-dimensional index is, at heart, a way to beat binary
search over this exact layout.  The benchmark harness uses it both as the
performance baseline and as the correctness oracle for all other indexes.
"""

from __future__ import annotations

import bisect
from typing import Sequence

import numpy as np

from repro.core.interfaces import MutableOneDimIndex

__all__ = ["SortedArrayIndex"]


class SortedArrayIndex(MutableOneDimIndex):
    """Binary search over a sorted key array, with aligned values.

    Inserts and deletes are O(n) (array shifts) — that is exactly the
    trade-off traditional sorted layouts make and what the delta-buffer
    learned indexes avoid.
    """

    name = "sorted-array"

    def __init__(self) -> None:
        super().__init__()
        self._keys: list[float] = []
        self._values: list[object] = []

    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "SortedArrayIndex":
        arr, vals = self._prepare(keys, values)
        self._keys = [float(k) for k in arr]
        self._values = vals
        self._built = True
        self.stats.size_bytes = 16 * len(self._keys)
        return self

    def _locate(self, key: float) -> int:
        """Binary-search index of ``key`` (first >=), counting comparisons."""
        lo, hi = 0, len(self._keys)
        while lo < hi:
            mid = (lo + hi) // 2
            self.stats.comparisons += 1
            if self._keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def lookup(self, key: float) -> object | None:
        self._require_built()
        idx = self._locate(key)
        if idx < len(self._keys) and self._keys[idx] == key:
            self.stats.keys_scanned += 1
            return self._values[idx]
        return None

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low:
            return []
        first = self._locate(low)
        out: list[tuple[float, object]] = []
        i = first
        while i < len(self._keys) and self._keys[i] <= high:
            out.append((self._keys[i], self._values[i]))
            self.stats.keys_scanned += 1
            i += 1
        return out

    def insert(self, key: float, value: object | None = None) -> None:
        self._require_built()
        key = float(key)
        idx = bisect.bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            self._values[idx] = value
            return
        self._keys.insert(idx, key)
        self._values.insert(idx, value)
        self.stats.size_bytes = 16 * len(self._keys)

    def delete(self, key: float) -> bool:
        self._require_built()
        key = float(key)
        idx = bisect.bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            del self._keys[idx]
            del self._values[idx]
            self.stats.size_bytes = 16 * len(self._keys)
            return True
        return False

    def __len__(self) -> int:
        return len(self._keys)

    def keys_array(self) -> np.ndarray:
        """The sorted keys as a numpy array (for oracles in tests)."""
        return np.asarray(self._keys, dtype=np.float64)
