"""KD-tree over points (bulk build, range, kNN, inserts).

The KD-tree is both a baseline for the multi-dimensional benchmarks and
the traditional component of the learned-KD hybrid (Approach 1 of the
survey: augment a traditional index with ML models).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Sequence

import numpy as np

from repro.core.interfaces import MutableMultiDimIndex

__all__ = ["KDTreeIndex"]


class _KDNode:
    __slots__ = ("point", "value", "axis", "left", "right", "deleted")

    def __init__(self, point: np.ndarray, value: object, axis: int) -> None:
        self.point = point
        self.value = value
        self.axis = axis
        self.left: _KDNode | None = None
        self.right: _KDNode | None = None
        self.deleted = False


class KDTreeIndex(MutableMultiDimIndex):
    """Median-split KD-tree; deletes are tombstones (no rebalance)."""

    name = "kd-tree"

    def __init__(self) -> None:
        super().__init__()
        self._root: _KDNode | None = None
        self._size = 0

    def build(self, points: np.ndarray, values: Sequence[object] | None = None) -> "KDTreeIndex":
        pts, vals = self._prepare_points(points, values)
        self.dims = int(pts.shape[1]) if pts.size else 0
        self._size = int(pts.shape[0])
        self._built = True
        if pts.shape[0] == 0:
            self._root = None
            return self
        self._extent = float(np.max(pts.max(axis=0) - pts.min(axis=0))) or 1.0
        order = list(range(pts.shape[0]))
        self._root = self._build_recursive(pts, vals, order, 0)
        self.stats.size_bytes = self._size * (8 * self.dims + 40)
        return self

    def _build_recursive(self, pts: np.ndarray, vals: list, idxs: list[int], depth: int) -> _KDNode | None:
        if not idxs:
            return None
        axis = depth % self.dims
        idxs.sort(key=lambda i: float(pts[i, axis]))
        mid = len(idxs) // 2
        node = _KDNode(pts[idxs[mid]].copy(), vals[idxs[mid]], axis)
        node.left = self._build_recursive(pts, vals, idxs[:mid], depth + 1)
        node.right = self._build_recursive(pts, vals, idxs[mid + 1:], depth + 1)
        return node

    # -- queries ------------------------------------------------------------
    def point_query(self, point: Sequence[float]) -> object | None:
        self._require_built()
        q = np.asarray(point, dtype=np.float64)
        node = self._root
        while node is not None:
            self.stats.nodes_visited += 1
            if not node.deleted and np.array_equal(node.point, q):
                return node.value
            axis = node.axis
            self.stats.comparisons += 1
            if q[axis] < node.point[axis]:
                node = node.left
            elif q[axis] > node.point[axis]:
                node = node.right
            else:
                # Equal on the split axis: the match may be on either side.
                result = self._exhaustive_find(node.left, q)
                if result is not None:
                    return result
                node = node.right
        return None

    def _exhaustive_find(self, node: _KDNode | None, q: np.ndarray) -> object | None:
        if node is None:
            return None
        self.stats.nodes_visited += 1
        if not node.deleted and np.array_equal(node.point, q):
            return node.value
        axis = node.axis
        if q[axis] < node.point[axis]:
            return self._exhaustive_find(node.left, q)
        if q[axis] > node.point[axis]:
            return self._exhaustive_find(node.right, q)
        result = self._exhaustive_find(node.left, q)
        if result is not None:
            return result
        return self._exhaustive_find(node.right, q)

    def range_query(self, low: Sequence[float], high: Sequence[float]) -> list[tuple[tuple[float, ...], object]]:
        self._require_built()
        lo = np.asarray(low, dtype=np.float64)
        hi = np.asarray(high, dtype=np.float64)
        out: list[tuple[tuple[float, ...], object]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            self.stats.nodes_visited += 1
            axis = node.axis
            coord = float(node.point[axis])
            if not node.deleted and np.all(node.point >= lo) and np.all(node.point <= hi):
                out.append((tuple(float(c) for c in node.point), node.value))
                self.stats.keys_scanned += 1
            if coord >= lo[axis]:
                stack.append(node.left)
            if coord <= hi[axis]:
                stack.append(node.right)
        return out

    def knn_query(self, point: Sequence[float], k: int) -> list[tuple[tuple[float, ...], object]]:
        """Classic branch-and-bound kNN with a bounded max-heap."""
        self._require_built()
        if k <= 0 or self._root is None:
            return []
        q = np.asarray(point, dtype=np.float64)
        heap: list[tuple[float, int, tuple, object]] = []  # max-heap via -dist
        counter = itertools.count()

        def visit(node: _KDNode | None) -> None:
            if node is None:
                return
            self.stats.nodes_visited += 1
            if not node.deleted:
                d = float(np.sum((node.point - q) ** 2))
                if len(heap) < k:
                    heapq.heappush(heap, (-d, next(counter), tuple(float(c) for c in node.point), node.value))
                elif d < -heap[0][0]:
                    heapq.heapreplace(heap, (-d, next(counter), tuple(float(c) for c in node.point), node.value))
            axis = node.axis
            diff = float(q[axis] - node.point[axis])
            near, far = (node.left, node.right) if diff < 0 else (node.right, node.left)
            visit(near)
            if len(heap) < k or diff * diff < -heap[0][0]:
                visit(far)

        visit(self._root)
        ordered = sorted(heap, key=lambda h: -h[0])
        return [(p, v) for _, _, p, v in ordered]

    # -- updates --------------------------------------------------------------
    def insert(self, point: Sequence[float], value: object | None = None) -> None:
        self._require_built()
        p = np.asarray(point, dtype=np.float64)
        if self.dims == 0:
            self.dims = int(p.size)
            self._extent = 1.0
        if self._root is None:
            self._root = _KDNode(p.copy(), value, 0)
            self._size = 1
            return
        # Equal-axis ties can hide an existing copy of the point in the
        # *other* subtree of the descent path, so check exhaustively first.
        existing = self._find_node(self._root, p)
        if existing is not None:
            existing.value = value
            if existing.deleted:
                existing.deleted = False
                self._size += 1
            return
        node = self._root
        while True:
            axis = node.axis
            if p[axis] < node.point[axis]:
                if node.left is None:
                    node.left = _KDNode(p.copy(), value, (axis + 1) % self.dims)
                    break
                node = node.left
            else:
                if node.right is None:
                    node.right = _KDNode(p.copy(), value, (axis + 1) % self.dims)
                    break
                node = node.right
        self._size += 1

    def delete(self, point: Sequence[float]) -> bool:
        """Tombstone delete: mark the node, keep the structure."""
        self._require_built()
        q = np.asarray(point, dtype=np.float64)
        node = self._find_node(self._root, q)
        if node is None or node.deleted:
            return False
        node.deleted = True
        self._size -= 1
        return True

    def _find_node(self, node: _KDNode | None, q: np.ndarray) -> _KDNode | None:
        if node is None:
            return None
        if np.array_equal(node.point, q):
            return node
        axis = node.axis
        if q[axis] < node.point[axis]:
            return self._find_node(node.left, q)
        if q[axis] > node.point[axis]:
            return self._find_node(node.right, q)
        found = self._find_node(node.left, q)
        return found if found is not None else self._find_node(node.right, q)

    def __len__(self) -> int:
        return self._size
