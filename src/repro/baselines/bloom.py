"""Standard Bloom filter (Bloom 1970).

The baseline for the learned Bloom filter family, and the backup filter
*inside* every learned Bloom filter (the learned variants must guarantee
no false negatives, which only the classical filter can provide for keys
the model rejects).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.core.interfaces import MembershipFilter

__all__ = ["BloomFilter", "optimal_bits", "optimal_hashes"]


def optimal_bits(n: int, fpr: float) -> int:
    """Bits needed for ``n`` keys at target false-positive rate ``fpr``."""
    if n <= 0:
        return 8
    if not 0.0 < fpr < 1.0:
        raise ValueError("fpr must be in (0, 1)")
    return max(8, int(math.ceil(-n * math.log(fpr) / (math.log(2) ** 2))))


def optimal_hashes(bits: int, n: int) -> int:
    """Optimal number of hash functions for ``bits`` and ``n`` keys."""
    if n <= 0:
        return 1
    return max(1, int(round(bits / n * math.log(2))))


class BloomFilter(MembershipFilter):
    """A classic Bloom filter over float keys.

    Construct either with an explicit bit budget (``bits``) or a target
    false-positive rate (``target_fpr``) resolved at :meth:`build` time.
    Hashing uses two independent 64-bit mixes combined as
    ``h1 + i * h2`` (Kirsch-Mitzenmacher double hashing).
    """

    name = "bloom"

    def __init__(self, bits: int | None = None, target_fpr: float = 0.01,
                 num_hashes: int | None = None, seed: int = 1234567) -> None:
        super().__init__()
        self._bits_requested = bits
        self._target_fpr = target_fpr
        self._num_hashes_requested = num_hashes
        self._seed = seed
        self._bits = 0
        self._num_hashes = 1
        self._array = np.zeros(1, dtype=bool)
        self._count = 0

    def build(self, keys: Iterable[float]) -> "BloomFilter":
        key_list = [float(k) for k in keys]
        n = len(key_list)
        self._bits = self._bits_requested or optimal_bits(n, self._target_fpr)
        self._num_hashes = self._num_hashes_requested or optimal_hashes(self._bits, n)
        self._array = np.zeros(self._bits, dtype=bool)
        self._count = 0
        for key in key_list:
            self.add(key)
        self.stats.size_bytes = (self._bits + 7) // 8
        return self

    def _hash_pair(self, key: float) -> tuple[int, int]:
        # Mix the IEEE-754 bit pattern of the key with two different
        # 64-bit constants (splitmix64-style finalisers).
        raw = np.float64(key).view(np.uint64)
        x = (int(raw) ^ self._seed) & 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
        h1 = (x ^ (x >> 31)) & 0xFFFFFFFFFFFFFFFF
        y = (int(raw) + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        y = (y ^ (y >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
        y = (y ^ (y >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
        h2 = (y ^ (y >> 31)) | 1
        return h1, h2

    def add(self, key: float) -> None:
        """Insert ``key`` into the filter."""
        h1, h2 = self._hash_pair(float(key))
        for i in range(self._num_hashes):
            self._array[(h1 + i * h2) % self._bits] = True
        self._count += 1

    def might_contain(self, key: float) -> bool:
        if self._bits == 0:
            return False
        h1, h2 = self._hash_pair(float(key))
        for i in range(self._num_hashes):
            self.stats.comparisons += 1
            if not self._array[(h1 + i * h2) % self._bits]:
                return False
        return True

    @property
    def bits(self) -> int:
        """Size of the bit array."""
        return self._bits

    @property
    def num_hashes(self) -> int:
        """Number of hash probes per key."""
        return self._num_hashes

    def __len__(self) -> int:
        return self._count
