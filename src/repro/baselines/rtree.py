"""R-tree (Guttman 1984) with STR bulk loading.

The R-tree is the traditional multi-dimensional index that most learned
spatial indexes either replace (pure) or enhance (hybrid, e.g. the
"AI+R"-tree).  This implementation indexes points (degenerate rectangles):

* :meth:`RTreeIndex.build` bulk-loads with Sort-Tile-Recursive packing,
  the standard way to get well-shaped leaves from static data;
* :meth:`RTreeIndex.insert` follows Guttman's ChooseLeaf with quadratic
  split;
* range queries descend overlapping subtrees; kNN uses best-first search
  over a priority queue of minimum distances.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Sequence

import numpy as np

from repro.core.interfaces import MutableMultiDimIndex

__all__ = ["RTreeIndex"]


class _RNode:
    """An R-tree node with its bounding box."""

    __slots__ = ("leaf", "entries", "mbr_lo", "mbr_hi")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        # Leaf entries: (point ndarray, value).  Internal entries: _RNode.
        self.entries: list = []
        self.mbr_lo: np.ndarray | None = None
        self.mbr_hi: np.ndarray | None = None

    def recompute_mbr(self) -> None:
        if not self.entries:
            self.mbr_lo = self.mbr_hi = None
            return
        if self.leaf:
            pts = np.array([p for p, _ in self.entries])
            self.mbr_lo = pts.min(axis=0)
            self.mbr_hi = pts.max(axis=0)
        else:
            self.mbr_lo = np.min([c.mbr_lo for c in self.entries], axis=0)
            self.mbr_hi = np.max([c.mbr_hi for c in self.entries], axis=0)

    def extend_mbr(self, lo: np.ndarray, hi: np.ndarray) -> None:
        if self.mbr_lo is None:
            self.mbr_lo = lo.copy()
            self.mbr_hi = hi.copy()
        else:
            self.mbr_lo = np.minimum(self.mbr_lo, lo)
            self.mbr_hi = np.maximum(self.mbr_hi, hi)


def _enlargement(node: _RNode, point: np.ndarray) -> float:
    lo = np.minimum(node.mbr_lo, point)
    hi = np.maximum(node.mbr_hi, point)
    new_area = float(np.prod(hi - lo))
    old_area = float(np.prod(node.mbr_hi - node.mbr_lo))
    return new_area - old_area


def _min_dist_sq(lo: np.ndarray, hi: np.ndarray, q: np.ndarray) -> float:
    clamped = np.clip(q, lo, hi)
    diff = q - clamped
    return float(diff @ diff)


class RTreeIndex(MutableMultiDimIndex):
    """Point R-tree with STR packing and Guttman dynamic inserts.

    Args:
        max_entries: node capacity M (default 32).
        min_entries: minimum fill m used by the quadratic split
            (default ``max_entries // 3``).
    """

    name = "r-tree"

    def __init__(self, max_entries: int = 32, min_entries: int | None = None) -> None:
        super().__init__()
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self.max_entries = max_entries
        self.min_entries = min_entries or max(2, max_entries // 3)
        self._root = _RNode(leaf=True)
        self._size = 0

    # -- construction (STR) ------------------------------------------------
    def build(self, points: np.ndarray, values: Sequence[object] | None = None) -> "RTreeIndex":
        pts, vals = self._prepare_points(points, values)
        self.dims = int(pts.shape[1]) if pts.size else 0
        self._size = int(pts.shape[0])
        self._built = True
        if pts.shape[0] == 0:
            self._root = _RNode(leaf=True)
            return self
        self._extent = float(np.max(pts.max(axis=0) - pts.min(axis=0))) or 1.0
        entries = [(pts[i], vals[i]) for i in range(pts.shape[0])]
        leaves = self._str_pack_leaves(entries)
        self._root = self._pack_upward(leaves)
        self._refresh_stats()
        return self

    def _str_pack_leaves(self, entries: list) -> list[_RNode]:
        """Sort-Tile-Recursive packing of leaf entries."""
        cap = self.max_entries
        d = self.dims

        def tile(items: list, dim: int) -> list[list]:
            if dim == d - 1:
                items = sorted(items, key=lambda e: float(e[0][dim]))
                return [items[i:i + cap] for i in range(0, len(items), cap)]
            # Number of slabs along this dimension.
            remaining_dims = d - dim
            n = len(items)
            leaves_needed = int(np.ceil(n / cap))
            slabs = max(1, int(np.ceil(leaves_needed ** (1.0 / remaining_dims))))
            per_slab = int(np.ceil(n / slabs))
            items = sorted(items, key=lambda e: float(e[0][dim]))
            groups: list[list] = []
            for i in range(0, n, per_slab):
                groups.extend(tile(items[i:i + per_slab], dim + 1))
            return groups

        leaves = []
        for group in tile(entries, 0):
            node = _RNode(leaf=True)
            node.entries = group
            node.recompute_mbr()
            leaves.append(node)
        return leaves

    def _pack_upward(self, nodes: list[_RNode]) -> _RNode:
        while len(nodes) > 1:
            parents = []
            # Sort by MBR centre along the first dimension for locality.
            nodes = sorted(nodes, key=lambda n: float(n.mbr_lo[0] + n.mbr_hi[0]))
            for i in range(0, len(nodes), self.max_entries):
                parent = _RNode(leaf=False)
                parent.entries = nodes[i:i + self.max_entries]
                parent.recompute_mbr()
                parents.append(parent)
            nodes = parents
        return nodes[0]

    def _refresh_stats(self) -> None:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.leaf:
                stack.extend(node.entries)
        self.stats.size_bytes = count * (32 + 16 * max(self.dims, 1)) + self._size * 8 * max(self.dims, 1)
        self.stats.extra["nodes"] = count

    # -- queries -------------------------------------------------------------
    def point_query(self, point: Sequence[float]) -> object | None:
        self._require_built()
        q = np.asarray(point, dtype=np.float64)
        return self._point_search(self._root, q)

    def _point_search(self, node: _RNode, q: np.ndarray) -> object | None:
        """MBR-pruned descent for an exact point.

        Fanout-bounded: each node holds at most ``max_entries`` entries,
        so the leaf scan and the per-node child loop are O(1); the
        recursion depth follows the balanced-tree premise.
        """
        self.stats.nodes_visited += 1
        if node.mbr_lo is None:
            return None
        if np.any(q < node.mbr_lo) or np.any(q > node.mbr_hi):
            return None
        if node.leaf:
            for p, v in node.entries:
                self.stats.keys_scanned += 1
                if np.array_equal(p, q):
                    return v
            return None
        for child in node.entries:
            result = self._point_search(child, q)
            if result is not None:
                return result
        return None

    def range_query(self, low: Sequence[float], high: Sequence[float]) -> list[tuple[tuple[float, ...], object]]:
        self._require_built()
        lo = np.asarray(low, dtype=np.float64)
        hi = np.asarray(high, dtype=np.float64)
        out: list[tuple[tuple[float, ...], object]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.nodes_visited += 1
            if node.mbr_lo is None:
                continue
            if np.any(node.mbr_hi < lo) or np.any(node.mbr_lo > hi):
                continue
            if node.leaf:
                for p, v in node.entries:
                    self.stats.keys_scanned += 1
                    if np.all(p >= lo) and np.all(p <= hi):
                        out.append((tuple(float(c) for c in p), v))
            else:
                stack.extend(node.entries)
        return out

    def knn_query(self, point: Sequence[float], k: int) -> list[tuple[tuple[float, ...], object]]:
        """Best-first kNN over a min-heap of node/point distances."""
        self._require_built()
        if k <= 0 or self._size == 0:
            return []
        q = np.asarray(point, dtype=np.float64)
        counter = itertools.count()
        heap: list[tuple[float, int, object, bool]] = []
        heapq.heappush(heap, (0.0, next(counter), self._root, False))
        out: list[tuple[tuple[float, ...], object]] = []
        while heap and len(out) < k:
            dist, _, item, is_point = heapq.heappop(heap)
            if is_point:
                p, v = item
                out.append((tuple(float(c) for c in p), v))
                continue
            node = item
            self.stats.nodes_visited += 1
            if node.mbr_lo is None:
                continue
            if node.leaf:
                for p, v in node.entries:
                    self.stats.keys_scanned += 1
                    d = float(np.sum((p - q) ** 2))
                    heapq.heappush(heap, (d, next(counter), (p, v), True))
            else:
                for child in node.entries:
                    d = _min_dist_sq(child.mbr_lo, child.mbr_hi, q)
                    heapq.heappush(heap, (d, next(counter), child, False))
        return out

    # -- updates ---------------------------------------------------------------
    def insert(self, point: Sequence[float], value: object | None = None) -> None:
        self._require_built()
        p = np.asarray(point, dtype=np.float64)
        if self.dims == 0:
            self.dims = p.size
            self._extent = 1.0
        if self._replace_if_present(self._root, p, value):
            return
        split = self._insert_into(self._root, p, value)
        if split is not None:
            new_root = _RNode(leaf=False)
            new_root.entries = [self._root, split]
            new_root.recompute_mbr()
            self._root = new_root
        self._size += 1

    def _replace_if_present(self, node: _RNode, p: np.ndarray, value: object) -> bool:
        """Overwrite the value of an existing exact point, if any.

        Fanout-bounded like :meth:`_point_search`: at most
        ``max_entries`` entries per visited node.
        """
        if node.mbr_lo is None:
            return False
        if np.any(p < node.mbr_lo) or np.any(p > node.mbr_hi):
            return False
        if node.leaf:
            for i, (existing, _) in enumerate(node.entries):
                if np.array_equal(existing, p):
                    node.entries[i] = (existing, value)
                    return True
            return False
        return any(self._replace_if_present(child, p, value) for child in node.entries)

    def _insert_into(self, node: _RNode, p: np.ndarray, value: object) -> _RNode | None:
        node.extend_mbr(p, p)
        if node.leaf:
            node.entries.append((p, value))
            if len(node.entries) > self.max_entries:
                return self._split_leaf(node)
            return None
        # Guttman ChooseLeaf: child needing least enlargement.
        best = min(node.entries, key=lambda c: (_enlargement(c, p), float(np.prod(c.mbr_hi - c.mbr_lo))))
        split = self._insert_into(best, p, value)
        if split is not None:
            node.entries.append(split)
            if len(node.entries) > self.max_entries:
                return self._split_internal(node)
        return None

    def _split_leaf(self, node: _RNode) -> _RNode:
        """Quadratic split of an overfull leaf; returns the new sibling.

        Fanout-bounded: redistributes one node's at most
        ``max_entries + 1`` entries between two leaves.
        """
        entries = node.entries
        seed_a, seed_b = self._pick_seeds([p for p, _ in entries])
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rest = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]
        for entry in rest:
            if len(group_a) <= len(group_b):
                group_a.append(entry)
            else:
                group_b.append(entry)
        node.entries = group_a
        node.recompute_mbr()
        sibling = _RNode(leaf=True)
        sibling.entries = group_b
        sibling.recompute_mbr()
        return sibling

    def _split_internal(self, node: _RNode) -> _RNode:
        """Fanout-bounded quadratic split, like :meth:`_split_leaf`."""
        entries = node.entries
        centres = [0.5 * (c.mbr_lo + c.mbr_hi) for c in entries]
        seed_a, seed_b = self._pick_seeds(centres)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rest = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]
        for entry in rest:
            if len(group_a) <= len(group_b):
                group_a.append(entry)
            else:
                group_b.append(entry)
        node.entries = group_a
        node.recompute_mbr()
        sibling = _RNode(leaf=False)
        sibling.entries = group_b
        sibling.recompute_mbr()
        return sibling

    @staticmethod
    def _pick_seeds(points: list[np.ndarray]) -> tuple[int, int]:
        """Pick the two most separated entries along any dimension."""
        arr = np.array(points)
        dim = int(np.argmax(arr.max(axis=0) - arr.min(axis=0)))
        return int(np.argmin(arr[:, dim])), int(np.argmax(arr[:, dim]))

    def delete(self, point: Sequence[float]) -> bool:
        """Remove an exact point; the tree is not rebalanced."""
        self._require_built()
        q = np.asarray(point, dtype=np.float64)
        return self._delete_from(self._root, q)

    def _delete_from(self, node: _RNode, q: np.ndarray) -> bool:
        if node.mbr_lo is None:
            return False
        if np.any(q < node.mbr_lo) or np.any(q > node.mbr_hi):
            return False
        if node.leaf:
            for i, (p, _) in enumerate(node.entries):
                if np.array_equal(p, q):
                    del node.entries[i]
                    node.recompute_mbr()
                    self._size -= 1
                    return True
            return False
        for child in node.entries:
            if self._delete_from(child, q):
                node.entries = [c for c in node.entries if c.entries]
                node.recompute_mbr()
                return True
        return False

    def __len__(self) -> int:
        return self._size
