"""A miniature LSM-tree (memtable + sorted runs + compaction).

This is the substrate for BOURBON, the learned LSM index: writes land in
an in-memory memtable; when it fills, it is flushed to an immutable
sorted run; when too many runs accumulate, they are merged (size-tiered
compaction).  Deletes use tombstones.  Lookups search the memtable, then
runs from newest to oldest.

BOURBON replaces the per-run binary search with a learned model; the hook
:meth:`LSMTreeIndex._make_run_index` exists exactly for that subclass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.interfaces import MutableOneDimIndex

__all__ = ["LSMTreeIndex", "SortedRun", "TOMBSTONE"]


class _Tombstone:
    """Sentinel marking a deleted key inside a run."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<tombstone>"


#: Sentinel value recorded for deleted keys until compaction drops them.
TOMBSTONE = _Tombstone()


@dataclass
class SortedRun:
    """An immutable sorted run: key array + aligned values.

    Attributes:
        keys: sorted float64 key array.
        values: payloads aligned with ``keys`` (may contain tombstones).
        model: optional learned model attached by BOURBON; ``None`` means
            plain binary search.
    """

    keys: np.ndarray
    values: list[object]
    model: object | None = None

    def __len__(self) -> int:
        return int(self.keys.size)


class LSMTreeIndex(MutableOneDimIndex):
    """Size-tiered LSM-tree over float keys.

    Args:
        memtable_limit: number of entries before the memtable flushes.
        max_runs: number of runs that triggers a full merge compaction.
    """

    name = "lsm"

    def __init__(self, memtable_limit: int = 4096, max_runs: int = 6) -> None:
        super().__init__()
        if memtable_limit < 1:
            raise ValueError("memtable_limit must be >= 1")
        if max_runs < 1:
            raise ValueError("max_runs must be >= 1")
        self.memtable_limit = memtable_limit
        self.max_runs = max_runs
        self._memtable: dict[float, object] = {}
        self._runs: list[SortedRun] = []  # oldest first

    # -- hooks -------------------------------------------------------------
    def _make_run_index(self, keys: np.ndarray) -> object | None:
        """Build an access-accelerating model for a new run (BOURBON hook)."""
        return None

    def _search_run(self, run: SortedRun, key: float) -> int:
        """Position of ``key`` in ``run.keys`` (first >= key)."""
        self.stats.comparisons += max(1, int(run.keys.size).bit_length())
        return int(np.searchsorted(run.keys, key, side="left"))

    # -- construction --------------------------------------------------------
    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "LSMTreeIndex":
        arr, vals = self._prepare(keys, values)
        self._memtable = {}
        self._runs = []
        self._built = True
        if arr.size:
            run = SortedRun(keys=arr.copy(), values=list(vals))
            run.model = self._make_run_index(run.keys)
            self._runs.append(run)
        self._refresh_size()
        return self

    def _refresh_size(self) -> None:
        total = sum(len(run) for run in self._runs) + len(self._memtable)
        self.stats.size_bytes = total * 16
        self.stats.extra["num_runs"] = len(self._runs)

    # -- writes ---------------------------------------------------------------
    def insert(self, key: float, value: object | None = None) -> None:
        self._require_built()
        self._memtable[float(key)] = value
        if len(self._memtable) >= self.memtable_limit:
            self._flush_memtable()

    def delete(self, key: float) -> bool:
        self._require_built()
        present = self.lookup(key) is not None
        self._memtable[float(key)] = TOMBSTONE
        if len(self._memtable) >= self.memtable_limit:
            self._flush_memtable()
        return present

    def _flush_memtable(self) -> None:
        if not self._memtable:
            return
        items = sorted(self._memtable.items())
        keys = np.array([k for k, _ in items], dtype=np.float64)
        values = [v for _, v in items]
        run = SortedRun(keys=keys, values=values)
        run.model = self._make_run_index(run.keys)
        self._runs.append(run)
        self._memtable = {}
        if len(self._runs) > self.max_runs:
            self._compact()
        self._refresh_size()

    def _compact(self) -> None:
        """Merge all runs into one, newest value wins, tombstones dropped.

        Compaction-bounded: runs once per ``max_runs`` flushes, so the
        O(n) merge amortizes across the inserts that filled those runs.
        """
        merged: dict[float, object] = {}
        for run in self._runs:  # oldest first; later runs overwrite
            for k, v in zip(run.keys, run.values):
                merged[float(k)] = v
        live = sorted((k, v) for k, v in merged.items() if v is not TOMBSTONE)
        keys = np.array([k for k, _ in live], dtype=np.float64)
        values = [v for _, v in live]
        run = SortedRun(keys=keys, values=values)
        run.model = self._make_run_index(run.keys)
        self._runs = [run] if keys.size else []
        self.stats.extra["compactions"] = self.stats.extra.get("compactions", 0) + 1

    def flush(self) -> None:
        """Force the memtable to diskless 'disk' (a new sorted run)."""
        self._require_built()
        self._flush_memtable()

    # -- reads -------------------------------------------------------------------
    def lookup(self, key: float) -> object | None:
        """Memtable probe, then per-run model-guided search, newest first.

        Compaction-bounded run list: ``_flush_memtable`` compacts once
        ``len(self._runs)`` exceeds ``max_runs``, so the loop visits at
        most ``max_runs + 1`` runs.
        """
        self._require_built()
        key = float(key)
        if key in self._memtable:
            value = self._memtable[key]
            return None if value is TOMBSTONE else value
        for run in reversed(self._runs):  # newest first
            self.stats.nodes_visited += 1
            idx = self._search_run(run, key)
            if idx < run.keys.size and run.keys[idx] == key:
                self.stats.keys_scanned += 1
                value = run.values[idx]
                return None if value is TOMBSTONE else value
        return None

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low:
            return []
        merged: dict[float, object] = {}
        for run in self._runs:  # oldest first so newer runs overwrite
            lo = int(np.searchsorted(run.keys, low, side="left"))
            hi = int(np.searchsorted(run.keys, high, side="right"))
            for i in range(lo, hi):
                merged[float(run.keys[i])] = run.values[i]
                self.stats.keys_scanned += 1
        for k, v in self._memtable.items():
            if low <= k <= high:
                merged[k] = v
        return sorted((k, v) for k, v in merged.items() if v is not TOMBSTONE)

    @property
    def num_runs(self) -> int:
        """Number of on-'disk' sorted runs."""
        return len(self._runs)

    def __len__(self) -> int:
        live: set[float] = set()
        dead: set[float] = set()
        for k, v in self._memtable.items():
            (dead if v is TOMBSTONE else live).add(k)
        for run in reversed(self._runs):
            for k, v in zip(run.keys, run.values):
                kf = float(k)
                if kf in live or kf in dead:
                    continue
                (dead if v is TOMBSTONE else live).add(kf)
        return len(live)
