"""Point-region quadtree (Samet 1984) for 2-d points.

A classic spatial baseline: the space is recursively split into four
quadrants once a cell exceeds its capacity.  Only 2-d data is supported
(the quadtree's fan-out is 2^d; for d > 2 use the KD-tree).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Sequence

import numpy as np

from repro.core.interfaces import MutableMultiDimIndex

__all__ = ["QuadTreeIndex"]


class _QuadNode:
    __slots__ = ("cx", "cy", "half_w", "half_h", "points", "children")

    def __init__(self, cx: float, cy: float, half_w: float, half_h: float) -> None:
        self.cx = cx
        self.cy = cy
        self.half_w = half_w
        self.half_h = half_h
        self.points: list[tuple[np.ndarray, object]] | None = []
        self.children: list["_QuadNode"] | None = None

    def contains(self, x: float, y: float) -> bool:
        return (self.cx - self.half_w <= x <= self.cx + self.half_w
                and self.cy - self.half_h <= y <= self.cy + self.half_h)

    def quadrant_of(self, x: float, y: float) -> int:
        return (2 if y >= self.cy else 0) + (1 if x >= self.cx else 0)

    def min_dist_sq(self, q: np.ndarray) -> float:
        dx = max(abs(float(q[0]) - self.cx) - self.half_w, 0.0)
        dy = max(abs(float(q[1]) - self.cy) - self.half_h, 0.0)
        return dx * dx + dy * dy


class QuadTreeIndex(MutableMultiDimIndex):
    """PR quadtree over 2-d points.

    Args:
        capacity: points per cell before it splits (default 16).
        max_depth: hard split depth limit; cells at the limit accept
            overflow (handles duplicate points gracefully).
    """

    name = "quadtree"

    def __init__(self, capacity: int = 16, max_depth: int = 24) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.max_depth = max_depth
        self._root: _QuadNode | None = None
        self._size = 0

    def build(self, points: np.ndarray, values: Sequence[object] | None = None) -> "QuadTreeIndex":
        pts, vals = self._prepare_points(points, values)
        if pts.size and pts.shape[1] != 2:
            raise ValueError("quadtree supports 2-d points only")
        self.dims = 2
        self._size = 0
        self._built = True
        if pts.shape[0] == 0:
            self._root = None
            return self
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        span = np.maximum(hi - lo, 1e-9)
        self._extent = float(span.max())
        centre = (lo + hi) / 2.0
        self._root = _QuadNode(float(centre[0]), float(centre[1]),
                               float(span[0] / 2) * 1.001, float(span[1] / 2) * 1.001)
        for i in range(pts.shape[0]):
            self._insert_point(pts[i], vals[i], count=True)
        self.stats.size_bytes = self._size * 40
        return self

    # -- insert helpers -----------------------------------------------------
    def _insert_point(self, p: np.ndarray, value: object, count: bool) -> None:
        """Level-bounded descent (root growth doubles the box each step,
        splits cap depth at ``max_depth``) followed by a capacity-bounded
        leaf scan — leaves split past ``capacity`` points."""
        root = self._root
        assert root is not None
        x, y = float(p[0]), float(p[1])
        # Grow the root while the point is outside its box.
        while not root.contains(x, y):
            root = self._grow_root(root, x, y)
        self._root = root
        node = root
        depth = 0
        while node.children is not None:
            node = node.children[node.quadrant_of(x, y)]
            depth += 1
        assert node.points is not None
        for i, (existing, _) in enumerate(node.points):
            if np.array_equal(existing, p):
                node.points[i] = (p.copy(), value)
                return
        node.points.append((p.copy(), value))
        if count:
            self._size += 1
        if len(node.points) > self.capacity and depth < self.max_depth:
            self._split(node)

    def _grow_root(self, root: _QuadNode, x: float, y: float) -> _QuadNode:
        """Double the root's box towards (x, y)."""
        new_half_w = root.half_w * 2
        new_half_h = root.half_h * 2
        cx = root.cx + (root.half_w if x > root.cx else -root.half_w)
        cy = root.cy + (root.half_h if y > root.cy else -root.half_h)
        new_root = _QuadNode(cx, cy, new_half_w, new_half_h)
        new_root.points = None
        new_root.children = [
            _QuadNode(cx - new_half_w / 2, cy - new_half_h / 2, new_half_w / 2, new_half_h / 2),
            _QuadNode(cx + new_half_w / 2, cy - new_half_h / 2, new_half_w / 2, new_half_h / 2),
            _QuadNode(cx - new_half_w / 2, cy + new_half_h / 2, new_half_w / 2, new_half_h / 2),
            _QuadNode(cx + new_half_w / 2, cy + new_half_h / 2, new_half_w / 2, new_half_h / 2),
        ]
        # Place the old root where it belongs among the new children.
        quadrant = new_root.quadrant_of(root.cx, root.cy)
        new_root.children[quadrant] = root
        return new_root

    def _split(self, node: _QuadNode) -> None:
        hw, hh = node.half_w / 2, node.half_h / 2
        node.children = [
            _QuadNode(node.cx - hw, node.cy - hh, hw, hh),
            _QuadNode(node.cx + hw, node.cy - hh, hw, hh),
            _QuadNode(node.cx - hw, node.cy + hh, hw, hh),
            _QuadNode(node.cx + hw, node.cy + hh, hw, hh),
        ]
        points = node.points or []
        node.points = None
        for p, v in points:
            child = node.children[node.quadrant_of(float(p[0]), float(p[1]))]
            assert child.points is not None
            child.points.append((p, v))

    # -- queries ---------------------------------------------------------------
    def point_query(self, point: Sequence[float]) -> object | None:
        """Quadrant descent to a leaf, then a capacity-bounded point scan
        (leaves split once they exceed ``leaf_capacity`` points)."""
        self._require_built()
        if self._root is None:
            return None
        q = np.asarray(point, dtype=np.float64)
        x, y = float(q[0]), float(q[1])
        node = self._root
        if not node.contains(x, y):
            return None
        while node.children is not None:
            self.stats.nodes_visited += 1
            node = node.children[node.quadrant_of(x, y)]
        assert node.points is not None
        for p, v in node.points:
            self.stats.keys_scanned += 1
            if np.array_equal(p, q):
                return v
        return None

    def range_query(self, low: Sequence[float], high: Sequence[float]) -> list[tuple[tuple[float, ...], object]]:
        self._require_built()
        if self._root is None:
            return []
        lo = np.asarray(low, dtype=np.float64)
        hi = np.asarray(high, dtype=np.float64)
        out: list[tuple[tuple[float, ...], object]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.nodes_visited += 1
            if (node.cx + node.half_w < lo[0] or node.cx - node.half_w > hi[0]
                    or node.cy + node.half_h < lo[1] or node.cy - node.half_h > hi[1]):
                continue
            if node.children is not None:
                stack.extend(node.children)
            else:
                assert node.points is not None
                for p, v in node.points:
                    self.stats.keys_scanned += 1
                    if lo[0] <= p[0] <= hi[0] and lo[1] <= p[1] <= hi[1]:
                        out.append(((float(p[0]), float(p[1])), v))
        return out

    def knn_query(self, point: Sequence[float], k: int) -> list[tuple[tuple[float, ...], object]]:
        """Best-first kNN over cells ordered by min distance."""
        self._require_built()
        if k <= 0 or self._root is None:
            return []
        q = np.asarray(point, dtype=np.float64)
        counter = itertools.count()
        heap: list = [(0.0, next(counter), self._root, False)]
        out: list[tuple[tuple[float, ...], object]] = []
        while heap and len(out) < k:
            dist, _, item, is_point = heapq.heappop(heap)
            if is_point:
                p, v = item
                out.append(((float(p[0]), float(p[1])), v))
                continue
            node = item
            self.stats.nodes_visited += 1
            if node.children is not None:
                for child in node.children:
                    heapq.heappush(heap, (child.min_dist_sq(q), next(counter), child, False))
            else:
                for p, v in node.points or []:
                    d = float(np.sum((p - q) ** 2))
                    heapq.heappush(heap, (d, next(counter), (p, v), True))
                    self.stats.keys_scanned += 1
        return out

    # -- updates ------------------------------------------------------------------
    def insert(self, point: Sequence[float], value: object | None = None) -> None:
        self._require_built()
        p = np.asarray(point, dtype=np.float64)
        if self._root is None:
            self.dims = 2
            self._extent = 1.0
            self._root = _QuadNode(float(p[0]), float(p[1]), 1.0, 1.0)
        existing = self.point_query(p)
        self._insert_point(p, value, count=existing is None)
        self.stats.size_bytes = self._size * 40

    def delete(self, point: Sequence[float]) -> bool:
        self._require_built()
        if self._root is None:
            return False
        q = np.asarray(point, dtype=np.float64)
        x, y = float(q[0]), float(q[1])
        node = self._root
        if not node.contains(x, y):
            return False
        while node.children is not None:
            node = node.children[node.quadrant_of(x, y)]
        assert node.points is not None
        for i, (p, _) in enumerate(node.points):
            if np.array_equal(p, q):
                del node.points[i]
                self._size -= 1
                return True
        return False

    def __len__(self) -> int:
        return self._size
