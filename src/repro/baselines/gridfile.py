"""Uniform grid index over d-dimensional points.

The simplest spatial partitioning: a fixed ``cells_per_dim^d`` lattice of
buckets.  It is both a baseline and the traditional component inside the
learned grid hybrids (Flood learns the per-dimension resolutions that
this structure takes as constants).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Sequence

import numpy as np

from repro.core.interfaces import MutableMultiDimIndex, as_object_array
from repro.core.state import IndexState, export_index_state

__all__ = ["GridIndex"]


class GridIndex(MutableMultiDimIndex):
    """Fixed uniform grid with per-cell point buckets.

    Args:
        cells_per_dim: lattice resolution in every dimension (default 16).
    """

    name = "grid"

    def __init__(self, cells_per_dim: int = 16) -> None:
        super().__init__()
        if cells_per_dim < 1:
            raise ValueError("cells_per_dim must be >= 1")
        self.cells_per_dim = cells_per_dim
        self._cells: dict[tuple[int, ...], list[tuple[np.ndarray, object]]] = {}
        #: Per-cell stacked (points, values) arrays for the batch paths;
        #: entries are dropped when the underlying bucket mutates.
        self._stacked: dict[tuple[int, ...], tuple[np.ndarray, np.ndarray]] = {}
        self._lo = np.zeros(1)
        self._hi = np.ones(1)
        self._size = 0

    def build(self, points: np.ndarray, values: Sequence[object] | None = None) -> "GridIndex":
        pts, vals = self._prepare_points(points, values)
        self.dims = int(pts.shape[1]) if pts.size else 0
        self._cells = {}
        self._stacked = {}
        self._size = int(pts.shape[0])
        self._built = True
        if pts.shape[0] == 0:
            return self
        self._lo = pts.min(axis=0)
        self._hi = pts.max(axis=0)
        span = self._hi - self._lo
        span[span == 0] = 1.0
        self._hi = self._lo + span
        self._extent = float(span.max())
        for i in range(pts.shape[0]):
            self._cells.setdefault(self._cell_of(pts[i]), []).append((pts[i].copy(), vals[i]))
        for cid, bucket in self._cells.items():  # warm the batch-path cache
            self._bucket_arrays(cid, bucket)
        self.stats.size_bytes = self._size * (8 * self.dims + 16) + len(self._cells) * 64
        self.stats.extra["cells"] = len(self._cells)
        return self

    # -- state export/restore ----------------------------------------------
    def export_state(self) -> IndexState:
        """Pack the per-cell buckets into CSR columns for export.

        The live structure holds one small ndarray per point plus one
        stacked pair per cell — roughly ``n`` distinct arrays, which
        the artifact store would write (and later memmap) as ``n``
        separate files.  Packing into a single ``(n, d)`` matrix plus
        per-cell counts keeps the artifact at a handful of files and
        makes the restore a pure slicing pass.
        """
        self._require_built()
        cells = self._cells
        stacked = self._stacked
        cids: list[tuple[int, ...]] = []
        counts: list[int] = []
        rows: list[np.ndarray] = []
        values: list[object] = []
        for cid, bucket in cells.items():
            cids.append(cid)
            counts.append(len(bucket))
            for p, v in bucket:
                rows.append(p)
                values.append(v)
        packed = (np.vstack(rows) if rows
                  else np.empty((0, max(self.dims, 1)), dtype=np.float64))
        try:
            self._cells = {}
            self._stacked = {}
            self._packed = (cids, np.asarray(counts, dtype=np.int64),
                            packed, values)
            return export_index_state(self)
        finally:
            del self._packed
            self._cells = cells
            self._stacked = stacked

    @classmethod
    def from_state(cls, state: IndexState,
                   arrays: list[np.ndarray] | None = None) -> "GridIndex":
        """Unpack the CSR columns back into per-cell buckets."""
        instance = super().from_state(state, arrays)
        assert isinstance(instance, GridIndex)
        cids, counts, packed, values = instance.__dict__.pop("_packed")
        cells: dict[tuple[int, ...], list[tuple[np.ndarray, object]]] = {}
        start = 0
        for cid, count in zip(cids, counts):
            end = start + int(count)
            cells[tuple(int(c) for c in cid)] = [
                (np.array(packed[j], dtype=np.float64), values[j])
                for j in range(start, end)
            ]
            start = end
        instance._cells = cells
        instance._stacked = {}
        return instance

    def _cell_of(self, p: np.ndarray) -> tuple[int, ...]:
        frac = (p - self._lo) / (self._hi - self._lo)
        idx = np.clip((frac * self.cells_per_dim).astype(int), 0, self.cells_per_dim - 1)
        return tuple(int(i) for i in idx)

    def point_query(self, point: Sequence[float]) -> object | None:
        self._require_built()
        q = np.asarray(point, dtype=np.float64)
        cell = self._cells.get(self._cell_of(q))
        self.stats.nodes_visited += 1
        if not cell:
            return None
        for p, v in cell:
            self.stats.keys_scanned += 1
            if np.array_equal(p, q):
                return v
        return None

    def _bucket_arrays(self, cid: tuple[int, ...],
                       bucket: list[tuple[np.ndarray, object]]) -> tuple[np.ndarray, np.ndarray]:
        """Stacked (points, values) arrays of one cell, cached per cell."""
        cached = self._stacked.get(cid)
        if cached is None:
            cached = (
                np.vstack([p for p, _ in bucket]),
                as_object_array([v for _, v in bucket]),
            )
            self._stacked[cid] = cached
        return cached

    def point_query_batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorized batch point queries (element-wise equal to scalar).

        Routes all queries to their cells with one clipped-lattice
        computation, groups them per cell, and matches each group against
        the stacked cell bucket with a single (chunked) equality kernel —
        the first matching bucket entry wins, exactly like the scalar
        scan order.
        """
        self._require_built()
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must have shape (m, d)")
        m = pts.shape[0]
        out = np.full(m, None, dtype=object)
        if m == 0 or not self._cells:
            return out
        frac = (pts - self._lo) / (self._hi - self._lo)
        ids = np.clip((frac * self.cells_per_dim).astype(int), 0, self.cells_per_dim - 1)
        flat = np.zeros(m, dtype=np.int64)
        for j in range(ids.shape[1]):
            flat = flat * self.cells_per_dim + ids[:, j]
        order = np.argsort(flat, kind="stable")
        sf = flat[order]
        starts = np.concatenate(([0], np.nonzero(np.diff(sf))[0] + 1, [m]))
        self.stats.nodes_visited += m
        for s, e in zip(starts[:-1], starts[1:]):
            gidx = order[s:e]
            cid = tuple(int(c) for c in ids[gidx[0]])
            bucket = self._cells.get(cid)
            if not bucket:
                continue
            bucket_pts, bucket_vals = self._bucket_arrays(cid, bucket)
            b = bucket_pts.shape[0]
            self.stats.keys_scanned += b * gidx.size
            chunk = max(1, 4_000_000 // b)
            for c0 in range(0, gidx.size, chunk):
                cidx = gidx[c0:c0 + chunk]
                eq = np.all(bucket_pts[None, :, :] == pts[cidx, None, :], axis=2)
                hit = eq.any(axis=1)
                out[cidx[hit]] = bucket_vals[eq.argmax(axis=1)[hit]]
        return out

    def range_query_batch(self, lows: np.ndarray, highs: np.ndarray) -> list[list[tuple[tuple[float, ...], object]]]:
        """Vectorized batch range queries (element-wise equal to scalar).

        Box corners are routed to cells vectorially; each visited bucket
        is stacked once per batch and filtered with a numpy mask instead
        of a per-point Python loop.
        """
        self._require_built()
        lo_arr = np.asarray(lows, dtype=np.float64)
        hi_arr = np.asarray(highs, dtype=np.float64)
        if lo_arr.ndim != 2 or hi_arr.shape != lo_arr.shape:
            raise ValueError("lows/highs must both have shape (m, d)")
        m = lo_arr.shape[0]
        results: list[list[tuple[tuple[float, ...], object]]] = [[] for _ in range(m)]
        if m == 0 or self._size == 0:
            return results
        empty = np.any(hi_arr < lo_arr, axis=1)
        for i in range(m):
            if empty[i]:
                continue
            lo, hi = lo_arr[i], hi_arr[i]
            lo_cell = self._cell_of(np.maximum(lo, self._lo))
            hi_cell = self._cell_of(np.minimum(hi, self._hi))
            out_i = results[i]
            for cell_idx in itertools.product(*(range(a, b + 1) for a, b in zip(lo_cell, hi_cell))):
                bucket = self._cells.get(cell_idx)
                self.stats.nodes_visited += 1
                if not bucket:
                    continue
                bucket_pts, bucket_vals = self._bucket_arrays(cell_idx, bucket)
                self.stats.keys_scanned += bucket_pts.shape[0]
                mask = np.all(bucket_pts >= lo, axis=1) & np.all(bucket_pts <= hi, axis=1)
                for j in np.nonzero(mask)[0]:
                    out_i.append((tuple(float(c) for c in bucket_pts[j]), bucket_vals[j]))
        return results

    def range_query(self, low: Sequence[float], high: Sequence[float]) -> list[tuple[tuple[float, ...], object]]:
        self._require_built()
        if self._size == 0:
            return []
        lo = np.asarray(low, dtype=np.float64)
        hi = np.asarray(high, dtype=np.float64)
        if np.any(hi < lo):
            return []
        lo_cell = self._cell_of(np.maximum(lo, self._lo))
        hi_cell = self._cell_of(np.minimum(hi, self._hi))
        ranges = [range(lo_cell[d], hi_cell[d] + 1) for d in range(self.dims)]
        out: list[tuple[tuple[float, ...], object]] = []
        for cell_idx in itertools.product(*ranges):
            bucket = self._cells.get(cell_idx)
            self.stats.nodes_visited += 1
            if not bucket:
                continue
            for p, v in bucket:
                self.stats.keys_scanned += 1
                if np.all(p >= lo) and np.all(p <= hi):
                    out.append((tuple(float(c) for c in p), v))
        return out

    def knn_query(self, point: Sequence[float], k: int) -> list[tuple[tuple[float, ...], object]]:
        """Expanding-ring kNN over grid cells around the query."""
        self._require_built()
        if k <= 0 or self._size == 0:
            return []
        q = np.asarray(point, dtype=np.float64)
        centre = self._cell_of(np.clip(q, self._lo, self._hi))
        cell_span = (self._hi - self._lo) / self.cells_per_dim
        best: list[tuple[float, int, tuple, object]] = []
        counter = itertools.count()
        ring = 0
        max_ring = self.cells_per_dim
        while ring <= max_ring:
            found_any = False
            for cell_idx in self._ring_cells(centre, ring):
                bucket = self._cells.get(cell_idx)
                if not bucket:
                    continue
                found_any = True
                for p, v in bucket:
                    d = float(np.sum((p - q) ** 2))
                    entry = (-d, next(counter), tuple(float(c) for c in p), v)
                    if len(best) < k:
                        heapq.heappush(best, entry)
                    elif d < -best[0][0]:
                        heapq.heapreplace(best, entry)
            if len(best) >= k:
                # Stop once the ring distance exceeds the kth best distance.
                ring_dist = max(ring - 1, 0) * float(cell_span.min())
                if ring_dist * ring_dist > -best[0][0]:
                    break
            ring += 1
            if not found_any and len(best) >= k:
                break
        ordered = sorted(best, key=lambda h: -h[0])
        return [(p, v) for _, _, p, v in ordered]

    def _ring_cells(self, centre: tuple[int, ...], ring: int):
        """Yield cell indices at Chebyshev distance ``ring`` from centre."""
        rng = range(-ring, ring + 1)
        for offset in itertools.product(rng, repeat=self.dims):
            if max(abs(o) for o in offset) != ring:
                continue
            idx = tuple(centre[d] + offset[d] for d in range(self.dims))
            if all(0 <= idx[d] < self.cells_per_dim for d in range(self.dims)):
                yield idx

    def insert(self, point: Sequence[float], value: object | None = None) -> None:
        self._require_built()
        p = np.asarray(point, dtype=np.float64)
        if self._size == 0 and not self._cells:
            self.dims = int(p.size)
            self._lo = p - 0.5
            self._hi = p + 0.5
            self._extent = 1.0
        cid = self._cell_of(np.clip(p, self._lo, self._hi))
        self._stacked.pop(cid, None)
        bucket = self._cells.setdefault(cid, [])
        for i, (existing, _) in enumerate(bucket):
            if np.array_equal(existing, p):
                bucket[i] = (p.copy(), value)
                return
        bucket.append((p.copy(), value))
        self._size += 1

    def delete(self, point: Sequence[float]) -> bool:
        self._require_built()
        p = np.asarray(point, dtype=np.float64)
        cid = self._cell_of(np.clip(p, self._lo, self._hi))
        bucket = self._cells.get(cid)
        if not bucket:
            return False
        for i, (existing, _) in enumerate(bucket):
            if np.array_equal(existing, p):
                del bucket[i]
                self._stacked.pop(cid, None)
                self._size -= 1
                return True
        return False

    def __len__(self) -> int:
        return self._size
