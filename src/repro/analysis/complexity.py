"""RPR3xx — complexity-contract rules (the asymptotics pillar).

The survey's thesis is asymptotic: a learned index must answer a point
query with O(1) model work plus an error-bounded last-mile search, not
a hidden scan.  Nothing syntactic distinguishes "vectorized lookup"
from "full-array scan per query" — both are three lines of numpy — so
this module derives a conservative per-operation complexity class for
every index hot path and checks it against the contract declared in
:mod:`repro.core.complexity`:

* **RPR301** — static cost model.  Walks loop nesting and the
  intraprocedural ``self.*`` call graph of each registered index's
  ``lookup``/``point_query``/``might_contain``/``insert`` hot path and
  classifies it O(1)/O(log n)/O(n)-per-op.  A method whose *derived*
  class exceeds its *declared* class is flagged.  The model is an upper
  bound on purpose: bisection-shaped ``while`` loops and pointer
  descents count O(log n); loops over error-bounded slices,
  ``range(<config attr>)``, and config-bounded attributes count O(1);
  everything else — including any full-array numpy reduction or
  comparison against a data-sized ``self`` attribute — counts O(n).
  A loop whose bound the AST cannot see (fixed-capacity leaf blocks,
  compaction-bounded run lists, expected-constant hash buckets) may be
  demoted to O(1) *only* by documenting the bound in the method
  docstring (``capacity-bounded``, ``tie-bounded``, ...); the runtime
  witness (:mod:`repro.bench.scaling`) keeps those documented claims
  honest empirically.

* **RPR302** — vectorization discipline in batch-kernel overrides.
  A ``*_batch`` override exists to amortize interpreter overhead; a
  Python loop over the query array inside one silently reverts to the
  scalar path while still claiming the vectorized name.  Flags loops
  iterating the batch parameter (or an ``np.asarray`` alias of it),
  ``np.append`` anywhere, list/array accumulation inside per-element
  loops, and per-iteration full-array masks against bare ``self``
  attributes.  The documented loop fallbacks on the abstract bases in
  ``core/interfaces.py`` are out of scope by design.

* **RPR303** — allocation discipline in the serving layer.  A serve
  hot path (coalescer flush, cache get/put, stats recorders) that
  appends to or inserts into a ``self`` container which nothing in the
  class ever shrinks or bounds grows without limit under load.
  Flags growth sites on attributes with no eviction/drain/bound
  evidence anywhere in the class.

Like the RPR1xx/RPR2xx families, everything here is provable-only:
the rules fire on evidence in the AST, and every escape hatch must
name its safety argument in a docstring the reviewer can audit.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import (
    AnalysisContext,
    _dotted_name,
    _index_classes,
    _methods,
    _mk,
    rule,
)
from repro.analysis.source import SourceFile

__all__ = ["derive_class_costs", "COST_CONSTANT", "COST_LOG", "COST_LINEAR"]

# Cost lattice: orders match ComplexityClass.order.
COST_CONSTANT = 0
COST_LOG = 1
COST_LINEAR = 2

_COST_LABELS = {COST_CONSTANT: "O(1)", COST_LOG: "O(log n)", COST_LINEAR: "O(n)"}

#: Docstring escape for loops whose bound the AST cannot prove: the
#: method must *name* the bound (capacity-bounded leaf, tie-bounded run,
#: compaction-bounded level list, occupancy-bounded bucket, ...).
_BOUNDED_RE = re.compile(
    r"(?:capacity|config|tie|duplicate|occupancy|compaction|level|fanout|"
    r"epsilon|error|probe)[- ]bounded",
    re.IGNORECASE,
)

#: Callables that are O(log n) in the size of their array argument.
_LOG_CALLS = {"searchsorted", "bisect_left", "bisect_right", "bisect", "insort",
              "insort_left", "insort_right"}

#: numpy reductions/scans that touch a whole array argument.  Names that
#: commonly take scalars too (min/max/abs/asarray/...) are deliberately
#: absent: the elementwise-compare check catches real full-array work on
#: data attributes without flagging scalar arithmetic.
_LINEAR_CALLS = {"where", "nonzero", "flatnonzero", "argwhere", "sort", "argsort",
                 "unique", "cumsum", "prod", "argmin", "argmax",
                 "count_nonzero", "lexsort", "partition", "argpartition",
                 "concatenate", "intersect1d", "union1d", "isin", "in1d",
                 "extract", "compress"}

#: Attribute accesses on an array that read metadata, not elements.
_METADATA_ATTRS = {"size", "shape", "ndim", "dtype", "nbytes", "itemsize"}

#: Attribute names that mark a ``while``-loop assignment as a tree/list
#: pointer descent (logarithmic under the balanced-structure premise).
_DESCENT_ATTRS = {"left", "right", "child", "children", "next", "down",
                  "parent", "less", "greater", "lo_child", "hi_child"}

#: Hot methods per ``_index_classes`` family; "derived" checks whichever
#: of these the subclass overrides.
_HOT_BY_FAMILY = {
    "onedim": ("lookup", "insert"),
    "multidim": ("point_query", "insert"),
    "filter": ("might_contain",),
    "derived": ("lookup", "point_query", "might_contain", "insert"),
}

#: Strictest-but-log default for classes with no declared contract
#: (fixtures, not-yet-registered code): learned-index expectations.
_DEFAULT_DECLARED = {"lookup": COST_LOG, "point_query": COST_LOG,
                     "might_contain": COST_LOG, "insert": COST_LOG}


@dataclass(frozen=True)
class Cost:
    """Derived cost with the evidence line/reason of its dominant term."""

    order: int
    line: int = 0
    reason: str = ""

    def join(self, other: "Cost") -> "Cost":
        """Max of two costs, keeping the dominant term's evidence."""
        return other if other.order > self.order else self

    @property
    def label(self) -> str:
        return _COST_LABELS[self.order]


def _is_self_attr(node: ast.expr) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name) and node.value.id == "self")


def _config_attrs(cls: ast.ClassDef) -> set[str]:
    """``self.<attr>`` names bound in ``__init__`` to config values.

    Config values are constructor parameters, constants, and arithmetic
    of those — sizes fixed before any data arrives, so loops bounded by
    them are O(1) in n.
    """
    init = _methods(cls).get("__init__")
    if init is None:
        return set()
    params = {a.arg for a in init.args.args + init.args.kwonlyargs} - {"self"}
    out: set[str] = set()
    for node in ast.walk(init):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        value = node.value
        if value is None or not _config_expr(value, params):
            continue
        for target in targets:
            if _is_self_attr(target):
                out.add(target.attr)
    return out


def _config_expr(node: ast.expr, params: set[str]) -> bool:
    """Whether an expression is built purely from config params/constants."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Name):
        return node.id in params
    if isinstance(node, ast.UnaryOp):
        return _config_expr(node.operand, params)
    if isinstance(node, ast.BinOp):
        return _config_expr(node.left, params) and _config_expr(node.right, params)
    if isinstance(node, ast.IfExp):
        return (_config_expr(node.body, params)
                and _config_expr(node.orelse, params))
    if isinstance(node, ast.Call):
        fn = _dotted_name(node.func) or ""
        if fn.rsplit(".", 1)[-1] in {"int", "float", "max", "min", "round", "len"}:
            return all(_config_expr(a, params) for a in node.args)
    return False


#: Roots that produce O(1)-or-dims-sized values even when computed
#: *from* the data: casts, counts, reductions, thresholds.
_SCALAR_ROOTS = {"float", "int", "bool", "len", "quantile", "percentile",
                 "mean", "median", "std", "var", "item", "ceil", "floor",
                 "log2", "sqrt", "min", "max", "sum"}


def _scalar_expr(node: ast.expr) -> bool:
    """Whether an expression is provably not data-sized.

    Covers scalar-producing calls (``int(...)``, reductions), array
    metadata reads (``x.size``, ``x.shape[k]``), and arithmetic/ternary
    combinations of those — the common shapes of thresholds, counts,
    and dimensionality attributes derived from the data.
    """
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Attribute):
        return node.attr in _METADATA_ATTRS
    if isinstance(node, ast.Subscript):
        # shape[k], or a subscript/slice of an already-bounded value
        # (e.g. quantile(...)[1:-1] keeps the config-sized result).
        return _scalar_expr(node.value)
    if isinstance(node, ast.UnaryOp):
        return _scalar_expr(node.operand)
    if isinstance(node, ast.BinOp):
        return _scalar_expr(node.left) and _scalar_expr(node.right)
    if isinstance(node, ast.IfExp):
        return _scalar_expr(node.body) and _scalar_expr(node.orelse)
    if isinstance(node, (ast.Compare, ast.BoolOp)):
        return True  # booleans
    if isinstance(node, ast.Call):
        return (_dotted_name(node.func) or "").rsplit(".", 1)[-1] in _SCALAR_ROOTS
    return False


def _dim_attrs(cls: ast.ClassDef) -> set[str]:
    """Attributes holding the dataset's *width* (``shape[k>=1]``).

    Dimensionality is bounded by the schema, not by n, so loops over
    ``range(self.dims)`` are O(1) in the survey's cost model.
    """

    def is_dim(node: ast.expr) -> bool:
        if isinstance(node, ast.Subscript):
            return (isinstance(node.value, ast.Attribute)
                    and node.value.attr == "shape"
                    and isinstance(node.slice, ast.Constant)
                    and isinstance(node.slice.value, int)
                    and node.slice.value >= 1)
        if isinstance(node, ast.Call):
            fn = (_dotted_name(node.func) or "").rsplit(".", 1)[-1]
            return (fn in {"int", "float"} and len(node.args) == 1
                    and is_dim(node.args[0]))
        if isinstance(node, ast.IfExp):
            return is_dim(node.body) and isinstance(node.orelse, ast.Constant)
        return False

    out: set[str] = set()
    for func in _methods(cls).values():
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and is_dim(node.value):
                for target in node.targets:
                    if _is_self_attr(target):
                        out.add(target.attr)
            elif isinstance(node, ast.AnnAssign) and node.value is not None \
                    and is_dim(node.value) and _is_self_attr(node.target):
                out.add(node.target.attr)
    return out


_HASH_MAKERS = {"dict", "set", "defaultdict", "Counter", "OrderedDict",
                "fromkeys"}


def _hashed_attrs(cls: ast.ClassDef) -> set[str]:
    """Attributes ever bound to a dict/set: ``in`` tests on them are O(1)."""
    out: set[str] = set()
    for func in _methods(cls).values():
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            hashed = isinstance(value, (ast.Dict, ast.Set, ast.DictComp,
                                        ast.SetComp)) or (
                isinstance(value, ast.Call)
                and (_dotted_name(value.func) or "").rsplit(".", 1)[-1]
                in _HASH_MAKERS)
            if not hashed:
                continue
            for target in targets:
                if _is_self_attr(target):
                    out.add(target.attr)
    return out


#: Hot-path methods whose parameters are single keys/points, not the
#: dataset — their params must not seed the data-size taint.
_SCALAR_PARAM_METHODS = {"lookup", "insert", "delete", "point_query",
                         "might_contain", "contains", "range_query",
                         "knn_query", "nearest"}


def _data_attrs(cls: ast.ClassDef) -> set[str]:
    """``self.<attr>`` names that hold data-sized payloads.

    Anything assigned (in any method) from an expression that mentions a
    ``build``/``_prepare`` parameter — directly or through a tainted
    local — is treated as O(n)-sized; bare uses of these attributes in
    comparisons or reductions then cost O(n).  Hot-path parameters (a
    single key or point) and provably scalar values
    (:func:`_scalar_expr`) do not taint.
    """
    out: set[str] = set()
    for name, func in _methods(cls).items():
        if name == "__init__":
            continue
        params = {a.arg for a in func.args.args + func.args.kwonlyargs} - {"self"}
        tainted = set() if name in _SCALAR_PARAM_METHODS else set(params)
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            if _scalar_expr(node.value):
                continue
            mentions = any(
                isinstance(sub, ast.Name) and sub.id in tainted
                for sub in ast.walk(node.value)
            )
            if not mentions:
                continue
            for target in node.targets:
                if _is_self_attr(target):
                    out.add(target.attr)
                elif isinstance(target, ast.Name):
                    tainted.add(target.id)
                elif isinstance(target, ast.Tuple):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            tainted.add(elt.id)
                        elif _is_self_attr(elt):
                            out.add(elt.attr)
    return out


class _ClassModel:
    """Shared per-class facts + memoized per-method cost derivation."""

    def __init__(self, cls: ast.ClassDef) -> None:
        self.cls = cls
        self.methods = _methods(cls)
        self.config = _config_attrs(cls) | _dim_attrs(cls)
        self.data = _data_attrs(cls)
        self.hashed = _hashed_attrs(cls)
        self._memo: dict[str, Cost] = {}

    # -- loop classification ------------------------------------------

    def _bounded_locals(self, func: ast.FunctionDef) -> set[str]:
        """Locals assigned from config attrs or constants (O(1) iterables)."""
        out: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                value = node.value
                if isinstance(value, ast.Constant) or (
                        _is_self_attr(value) and value.attr in self.config):
                    out.add(node.targets[0].id)
        return out

    def _iter_cost(self, node: ast.expr, func: ast.FunctionDef,
                   bounded: set[str]) -> int:
        """Cost class of iterating ``node`` once."""
        if isinstance(node, ast.Call):
            fn = (_dotted_name(node.func) or "").rsplit(".", 1)[-1]
            if fn == "range":
                if all(self._scalar_is_config(a, bounded) for a in node.args):
                    return COST_CONSTANT
                return COST_LINEAR
            if fn in {"enumerate", "reversed", "iter", "sorted", "zip", "list",
                      "tuple"}:
                inner = [self._iter_cost(a, func, bounded) for a in node.args]
                return max(inner) if inner else COST_LINEAR
            return COST_LINEAR
        if isinstance(node, ast.Subscript) and isinstance(node.slice, ast.Slice):
            if node.slice.lower is not None and node.slice.upper is not None:
                # Error-bounded window: predict ± epsilon slices.
                return COST_CONSTANT
            return COST_LINEAR
        if isinstance(node, (ast.Tuple, ast.List)):
            return COST_CONSTANT
        if _is_self_attr(node):
            return COST_CONSTANT if node.attr in self.config else COST_LINEAR
        if isinstance(node, ast.Name) and node.id in bounded:
            return COST_CONSTANT
        return COST_LINEAR

    def _scalar_is_config(self, node: ast.expr, bounded: set[str]) -> bool:
        """Whether a range() bound is config-sized (n-independent)."""
        if isinstance(node, ast.Constant):
            return True
        if isinstance(node, ast.Name):
            return node.id in bounded
        if _is_self_attr(node):
            return node.attr in self.config
        if isinstance(node, ast.BinOp):
            return (self._scalar_is_config(node.left, bounded)
                    and self._scalar_is_config(node.right, bounded))
        if isinstance(node, ast.UnaryOp):
            return self._scalar_is_config(node.operand, bounded)
        if isinstance(node, ast.Call):
            fn = (_dotted_name(node.func) or "").rsplit(".", 1)[-1]
            if fn in {"len", "int", "min", "max"}:
                return all(self._scalar_is_config(a, bounded) for a in node.args)
        return False

    @staticmethod
    def _while_is_log(node: ast.While) -> bool:
        """Halving or pointer-descent evidence inside a ``while`` body."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.BinOp) and isinstance(
                    sub.op, (ast.FloorDiv, ast.RShift)):
                return True
            if isinstance(sub, ast.AugAssign) and isinstance(
                    sub.op, (ast.FloorDiv, ast.RShift, ast.Mult)):
                return True
            if isinstance(sub, ast.Assign):
                value = sub.value
                if isinstance(value, ast.IfExp):
                    candidates = [value.body, value.orelse]
                else:
                    candidates = [value]
                for cand in candidates:
                    if isinstance(cand, ast.Attribute) \
                            and cand.attr in _DESCENT_ATTRS:
                        return True
                    if isinstance(cand, ast.Subscript) and isinstance(
                            cand.value, ast.Attribute) \
                            and cand.value.attr in _DESCENT_ATTRS:
                        return True
        return False

    # -- expression costs ---------------------------------------------

    def _call_cost(self, node: ast.Call, stack: tuple[str, ...]) -> Cost:
        dotted = _dotted_name(node.func) or ""
        leaf = dotted.rsplit(".", 1)[-1]
        if dotted.startswith("self.") and "." not in dotted[5:]:
            if leaf in self.methods:
                return _cost_at(self._method_cost(leaf, stack), node.lineno)
        if leaf in _LOG_CALLS:
            # Bisection over a config-sized attribute (partition edges,
            # segment boundaries) is O(log config) = O(1).
            if node.args and _is_self_attr(node.args[0]) \
                    and node.args[0].attr not in self.data:
                return Cost(COST_CONSTANT)
            return Cost(COST_LOG, node.lineno, f"{leaf}() bounded search")
        if leaf in _LINEAR_CALLS and self._touches_data(node):
            return Cost(COST_LINEAR, node.lineno,
                        f"{leaf}() over a data-sized self attribute")
        return Cost(COST_CONSTANT)

    def _touches_data(self, node: ast.AST) -> bool:
        """Whether an expression references a bare data-sized attribute.

        ``self._keys.size``-style metadata reads are exempt: they cost
        O(1) no matter how large the array is.
        """
        exempt: set[int] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and sub.attr in _METADATA_ATTRS:
                exempt.add(id(sub.value))
        for sub in ast.walk(node):
            if _is_self_attr(sub) and sub.attr in self.data \
                    and id(sub) not in exempt:
                return True
        return False

    def _elementwise(self, attr: str, line: int) -> Cost:
        return Cost(COST_LINEAR, line,
                    f"elementwise operation on self.{attr} (data-sized array)")

    def _expr_cost(self, node: ast.AST, stack: tuple[str, ...]) -> Cost:
        cost = Cost(COST_CONSTANT)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                cost = cost.join(self._call_cost(sub, stack))
            elif isinstance(sub, ast.Compare):
                # Pair each operator with its operands: identity tests
                # are O(1) whatever the operand; membership tests are
                # O(1) against dict/set attributes.
                operands = [sub.left, *sub.comparators]
                for i, op in enumerate(sub.ops):
                    if isinstance(op, (ast.Is, ast.IsNot)):
                        continue
                    if isinstance(op, (ast.In, ast.NotIn)):
                        container = operands[i + 1]
                        if _is_self_attr(container) \
                                and container.attr in self.data \
                                and container.attr not in self.hashed:
                            cost = cost.join(self._elementwise(
                                container.attr, sub.lineno))
                        continue
                    for operand in (operands[i], operands[i + 1]):
                        if _is_self_attr(operand) and operand.attr in self.data:
                            cost = cost.join(self._elementwise(
                                operand.attr, sub.lineno))
            elif isinstance(sub, ast.BinOp) and not isinstance(
                    sub.op, (ast.FloorDiv, ast.RShift)):
                for operand in (sub.left, sub.right):
                    if _is_self_attr(operand) and operand.attr in self.data:
                        cost = cost.join(self._elementwise(
                            operand.attr, sub.lineno))
        return cost

    # -- statement walk ------------------------------------------------

    def _body_cost(self, stmts: list[ast.stmt], func: ast.FunctionDef,
                   bounded: set[str], stack: tuple[str, ...]) -> Cost:
        cost = Cost(COST_CONSTANT)
        for stmt in stmts:
            if isinstance(stmt, ast.For):
                loop = Cost(self._iter_cost(stmt.iter, func, bounded),
                            stmt.lineno, "loop over a data-sized iterable")
                body = self._body_cost(stmt.body + stmt.orelse, func, bounded,
                                       stack)
                head = self._expr_cost(stmt.iter, stack)
                cost = cost.join(loop).join(body).join(head)
            elif isinstance(stmt, ast.While):
                order = COST_LOG if self._while_is_log(stmt) else COST_LINEAR
                loop = Cost(order, stmt.lineno,
                            "while-loop without halving/descent evidence"
                            if order == COST_LINEAR else "bounded descent")
                body = self._body_cost(stmt.body + stmt.orelse, func, bounded,
                                       stack)
                cost = cost.join(loop).join(body)
                cost = cost.join(self._expr_cost(stmt.test, stack))
            elif isinstance(stmt, (ast.If,)):
                cost = cost.join(self._expr_cost(stmt.test, stack))
                cost = cost.join(self._body_cost(stmt.body + stmt.orelse, func,
                                                 bounded, stack))
            elif isinstance(stmt, (ast.With,)):
                for item in stmt.items:
                    cost = cost.join(self._expr_cost(item.context_expr, stack))
                cost = cost.join(self._body_cost(stmt.body, func, bounded,
                                                 stack))
            elif isinstance(stmt, ast.Try):
                blocks = stmt.body + stmt.orelse + stmt.finalbody
                for handler in stmt.handlers:
                    blocks = blocks + handler.body
                cost = cost.join(self._body_cost(blocks, func, bounded, stack))
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                continue  # nested defs run when called, not here
            else:
                cost = cost.join(self._expr_cost(stmt, stack))
        return cost

    def _method_cost(self, name: str, stack: tuple[str, ...]) -> Cost:
        if name in self._memo:
            return self._memo[name]
        if name in stack:
            # Recursive descent: balanced-structure premise, same as the
            # pointer-chase while; the runtime witness audits it.
            return Cost(COST_LOG, self.methods[name].lineno,
                        "recursive descent")
        func = self.methods[name]
        bounded = self._bounded_locals(func)
        cost = self._body_cost(func.body, func, bounded, stack + (name,))
        doc = ast.get_docstring(func) or ""
        if cost.order == COST_LINEAR and _BOUNDED_RE.search(doc):
            # Documented-bound escape: the docstring names the bound the
            # AST cannot see; the scaling witness audits it at runtime.
            cost = Cost(COST_CONSTANT, func.lineno, "documented bound")
        self._memo[name] = cost
        return cost

    def method_cost(self, name: str) -> Cost:
        """Derived per-operation cost class of ``self.<name>()``."""
        return self._method_cost(name, ())


def _cost_at(cost: Cost, line: int) -> Cost:
    """Anchor a callee's cost at the call site when it has no line yet."""
    return cost if cost.line else Cost(cost.order, line, cost.reason)


def derive_class_costs(cls: ast.ClassDef, family: str) -> dict[str, Cost]:
    """Derived costs of the hot methods ``cls`` itself defines."""
    model = _ClassModel(cls)
    return {
        name: model.method_cost(name)
        for name in _HOT_BY_FAMILY[family]
        if name in model.methods
    }


def _declared_for(src: SourceFile, cls_name: str) -> dict[str, int] | None:
    """Declared contract orders for a class, from the authoritative table.

    Resolution is by qualname inferred from the file's repo-relative
    path, so it needs no live import; files outside ``src/repro``
    (fixtures, scratch code) resolve to ``None`` and get the strict
    learned-index default.
    """
    parts = Path(src.rel).parts
    if "repro" not in parts or not src.rel.endswith(".py"):
        return None
    module = ".".join(parts[parts.index("repro"):])[: -len(".py")]
    qualname = f"{module}.{cls_name}"
    from repro.core.complexity import CONTRACTS, HOT_METHODS
    contract = CONTRACTS.get(qualname)
    if contract is None:
        return None
    declared = {HOT_METHODS[fam]: contract.lookup.order for fam in HOT_METHODS}
    if contract.insert is not None:
        declared["insert"] = contract.insert.order
    else:
        declared.pop("insert", None)
    return declared


@rule(
    "RPR301",
    "complexity-contract",
    Severity.ERROR,
    "Each registered index declares the per-operation complexity class "
    "of its lookup/point_query/insert hot paths (core.complexity); a "
    "hot path whose statically derived class exceeds the declaration "
    "has silently become a scan.  Loops the AST cannot bound must "
    "document the bound (e.g. 'capacity-bounded') in the method "
    "docstring; the scaling witness verifies such claims empirically.",
    ("complexity",),
)
def check_complexity_contracts(ctx: AnalysisContext) -> Iterator[Finding]:
    for src in ctx.files:
        if src.tree is None or src.rel.endswith(str(Path("core") / "interfaces.py")):
            continue
        for cls, family in _index_classes(src):
            declared = _declared_for(src, cls.name)
            defaults = declared is None
            if defaults:
                declared = dict(_DEFAULT_DECLARED)
            costs = derive_class_costs(cls, family)
            for name, cost in costs.items():
                allowed = declared.get(name)
                if allowed is None or cost.order <= allowed:
                    continue
                origin = ("default learned-index contract" if defaults
                          else "declared contract")
                detail = f" ({cost.reason})" if cost.reason else ""
                yield _mk(
                    "RPR301", src, cost.line or cls.lineno, 0,
                    f"{cls.name}.{name} derives {cost.label} but the "
                    f"{origin} allows {_COST_LABELS[allowed]}{detail}",
                )


# ---------------------------------------------------------------------------
# RPR302 — batch-kernel vectorization discipline
# ---------------------------------------------------------------------------

#: Flat-output batch kernels whose overrides must stay vectorized.
#: ``range_query_batch`` is excluded: its ragged per-box output makes a
#: per-box assembly loop legitimate.
_FLAT_BATCH_METHODS = {"lookup_batch", "contains_batch", "point_query_batch"}

_ASARRAY_FNS = {"asarray", "ascontiguousarray", "asfarray", "array",
                "atleast_1d", "atleast_2d"}


def _batch_aliases(func: ast.FunctionDef) -> set[str]:
    """The batch parameter and locals derived from it via array casts."""
    params = [a.arg for a in func.args.args if a.arg != "self"]
    aliases = set(params[:1])  # the query batch is the first parameter
    if not aliases:
        return aliases
    changed = True
    while changed:
        changed = False
        for node in ast.walk(func):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            value = node.value
            name = None
            if isinstance(value, ast.Name):
                name = value.id
            elif isinstance(value, ast.Call):
                fn = (_dotted_name(value.func) or "").rsplit(".", 1)[-1]
                if fn in _ASARRAY_FNS and value.args \
                        and isinstance(value.args[0], ast.Name):
                    name = value.args[0].id
            if name in aliases and node.targets[0].id not in aliases:
                aliases.add(node.targets[0].id)
                changed = True
    return aliases


def _loops_over_batch(func: ast.FunctionDef,
                      aliases: set[str]) -> Iterator[ast.For]:
    """``for`` loops that iterate the query batch element by element."""
    for node in ast.walk(func):
        if not isinstance(node, ast.For):
            continue
        it = node.iter
        if isinstance(it, ast.Call):
            fn = (_dotted_name(it.func) or "").rsplit(".", 1)[-1]
            if fn in {"enumerate", "reversed", "iter", "zip"}:
                args = it.args
            elif fn == "range":
                args = it.args
            else:
                args = []
            for arg in args:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Name) and sub.id in aliases:
                        yield node
                        break
                else:
                    continue
                break
        elif isinstance(it, ast.Name) and it.id in aliases:
            yield node


@rule(
    "RPR302",
    "batch-kernel-vectorization",
    Severity.ERROR,
    "A *_batch override exists to amortize Python overhead across the "
    "whole query array; a per-element Python loop, np.append-style "
    "reallocation, or a fresh full-array mask per query inside one "
    "reverts to scalar cost while keeping the vectorized name.  The "
    "documented loop fallbacks on the abstract interfaces are the only "
    "sanctioned per-element paths.",
    ("complexity", "vectorization"),
)
def check_batch_vectorization(ctx: AnalysisContext) -> Iterator[Finding]:
    for src in ctx.files:
        if src.tree is None or src.rel.endswith(str(Path("core") / "interfaces.py")):
            continue
        for cls, _family in _index_classes(src):
            for name, func in _methods(cls).items():
                if name not in _FLAT_BATCH_METHODS:
                    continue
                aliases = _batch_aliases(func)
                batch_loops = list(_loops_over_batch(func, aliases))
                for loop in batch_loops:
                    yield _mk(
                        "RPR302", src, loop.lineno, loop.col_offset,
                        f"{cls.name}.{name} iterates the query batch in "
                        "a Python loop; the override must stay vectorized "
                        "(or be deleted to use the documented fallback)",
                    )
                # Reallocation growth inside any per-element batch loop.
                for loop in batch_loops:
                    for sub in ast.walk(loop):
                        if not isinstance(sub, ast.Call):
                            continue
                        fn = (_dotted_name(sub.func) or "").rsplit(".", 1)[-1]
                        if fn in {"append", "concatenate", "vstack", "hstack"}:
                            yield _mk(
                                "RPR302", src, sub.lineno, sub.col_offset,
                                f"{cls.name}.{name} accumulates results "
                                f"via {fn}() inside a per-element loop "
                                "(quadratic reallocation)",
                            )
                # np.append anywhere in a batch kernel is a scan in
                # disguise: it copies the whole array per call.
                for sub in ast.walk(func):
                    if isinstance(sub, ast.Call):
                        dotted = _dotted_name(sub.func) or ""
                        if dotted in {"np.append", "numpy.append"} and not any(
                                sub is s for loop in batch_loops
                                for s in ast.walk(loop)):
                            yield _mk(
                                "RPR302", src, sub.lineno, sub.col_offset,
                                f"{cls.name}.{name} calls np.append "
                                "(full-copy reallocation) in a batch kernel",
                            )
                # Per-iteration full-array masks: a compare against a bare
                # self attribute inside any loop re-touches all n keys
                # once per element.
                model = _ClassModel(cls)
                for node in ast.walk(func):
                    if not isinstance(node, (ast.For, ast.While)):
                        continue
                    for sub in ast.walk(node):
                        if not isinstance(sub, ast.Compare):
                            continue
                        for op in [sub.left, *sub.comparators]:
                            if _is_self_attr(op) and op.attr in model.data:
                                yield _mk(
                                    "RPR302", src, sub.lineno, sub.col_offset,
                                    f"{cls.name}.{name} builds a full-array "
                                    f"mask over self.{op.attr} inside a "
                                    "loop (one O(n) scan per element)",
                                )


# ---------------------------------------------------------------------------
# RPR303 — serve-layer allocation discipline
# ---------------------------------------------------------------------------

_GROW_METHODS = {"append", "appendleft", "add", "extend", "extendleft",
                 "insert", "setdefault", "update"}
_SHRINK_METHODS = {"pop", "popleft", "popitem", "clear", "remove", "discard",
                   "shrink", "evict", "trim"}


def _is_preallocation(value: ast.expr) -> bool:
    """Fixed-size container constructions: ``[None] * n``, comprehensions
    over a known quantity, ``dict.fromkeys(...)``, ``deque(maxlen=...)``."""
    if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Mult) \
            and (isinstance(value.left, (ast.List, ast.Tuple))
                 or isinstance(value.right, (ast.List, ast.Tuple))):
        return True
    if isinstance(value, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        fn = (_dotted_name(value.func) or "").rsplit(".", 1)[-1]
        if fn == "fromkeys":
            return True
        if any(kw.arg == "maxlen" for kw in value.keywords):
            return True
    return False


def _container_events(cls: ast.ClassDef) -> tuple[dict[str, list[ast.AST]],
                                                  set[str]]:
    """Growth sites per attribute, plus attributes with bound evidence.

    Bound evidence is anything that can shrink or cap the container:
    a shrink-method call, ``del self.x[...]``, reassignment outside
    ``__init__``, a ``len(self.x)`` comparison (capacity check), a
    ``maxlen=``-bounded constructor, or a fixed-size preallocation
    (``[None] * n``, a comprehension) whose subscript writes are slot
    updates, not growth.
    """
    grows: dict[str, list[ast.AST]] = {}
    bounded: set[str] = set()
    for name, func in _methods(cls).items():
        in_init = name == "__init__"
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                recv = node.func.value
                if _is_self_attr(recv):
                    if node.func.attr in _GROW_METHODS and not in_init:
                        grows.setdefault(recv.attr, []).append(node)
                    elif node.func.attr in _SHRINK_METHODS:
                        bounded.add(recv.attr)
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                value = node.value
                for target in targets:
                    if isinstance(target, ast.Subscript) \
                            and _is_self_attr(target.value) and not in_init:
                        grows.setdefault(target.value.attr, []).append(node)
                    elif _is_self_attr(target) and not in_init:
                        bounded.add(target.attr)  # rebound: reset/rotation
                    elif _is_self_attr(target) and value is not None \
                            and _is_preallocation(value):
                        bounded.add(target.attr)  # fixed slots, not growth
            if isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) \
                            and _is_self_attr(target.value):
                        bounded.add(target.value.attr)
            if isinstance(node, ast.Compare):
                for op in ast.walk(node):
                    if isinstance(op, ast.Call) \
                            and (_dotted_name(op.func) or "") == "len" \
                            and op.args and _is_self_attr(op.args[0]):
                        bounded.add(op.args[0].attr)
            if isinstance(node, ast.AugAssign) and _is_self_attr(node.target) \
                    and not in_init:
                # Only list-concatenation growth; scalar counters
                # (self.hits += 1) allocate nothing.
                if isinstance(node.op, ast.Add) and isinstance(
                        node.value, (ast.List, ast.Tuple, ast.ListComp)):
                    grows.setdefault(node.target.attr, []).append(node)
    return grows, bounded


@rule(
    "RPR303",
    "serve-allocation-discipline",
    Severity.ERROR,
    "Serving hot paths run for the life of the process: a self container "
    "that only ever grows (append/insert/augmented +=) with no shrink, "
    "eviction, capacity check, or bounded constructor anywhere in the "
    "class leaks memory linearly in request count.",
    ("complexity", "serve"),
)
def check_serve_allocation(ctx: AnalysisContext) -> Iterator[Finding]:
    for src in ctx.files:
        if src.tree is None or "serve" not in Path(src.rel).parts:
            continue
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            grows, bounded = _container_events(node)
            for attr, sites in sorted(grows.items()):
                if attr in bounded:
                    continue
                site = sites[0]
                yield _mk(
                    "RPR303", src, site.lineno, getattr(site, "col_offset", 0),
                    f"{node.name} grows self.{attr} on every call with no "
                    "shrink/eviction/capacity bound anywhere in the class",
                )
