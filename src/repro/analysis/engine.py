"""Analysis driver: collect files, run rules, apply suppressions, report.

``run_analysis`` is the programmatic entry point (used by the CLI and
the analyzer's own tests); it returns the kept findings plus the
suppressed count so reports can show both.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.analysis.registry_view import RegistryView, build_registry_view
from repro.analysis.rules import RULE_METADATA, RULES, AnalysisContext
from repro.analysis.source import SourceFile, SuppressionDirective

__all__ = ["AnalysisResult", "collect_files", "build_context", "run_analysis",
           "render_text", "render_json"]

_PARITY_TEST = Path("tests") / "core" / "test_batch_parity.py"


@dataclass
class AnalysisResult:
    """Outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_analyzed: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def collect_files(root: Path, paths: Sequence[Path] | None = None) -> list[Path]:
    """Python files to analyse: explicit ``paths`` or ``src/repro`` under root."""
    if paths:
        out: list[Path] = []
        for p in paths:
            if p.is_dir():
                out.extend(sorted(p.rglob("*.py")))
            else:
                out.append(p)
        return out
    return sorted((root / "src" / "repro").rglob("*.py"))


def build_context(
    root: Path,
    paths: Sequence[Path] | None = None,
    registry: RegistryView | None = None,
    use_registry: bool = True,
) -> AnalysisContext:
    """Load sources (and, for full-repo runs, the live registry)."""
    files = [SourceFile.load(p, root) for p in collect_files(root, paths)]
    parity: SourceFile | None = None
    if use_registry and registry is None and paths is None:
        registry = build_registry_view()
    if registry is not None:
        parity_path = root / _PARITY_TEST
        if parity_path.is_file():
            parity = SourceFile.load(parity_path, root)
    return AnalysisContext(root=root, files=files, registry=registry,
                           parity_test=parity)


def run_analysis(
    ctx: AnalysisContext, rule_ids: Iterable[str] | None = None
) -> AnalysisResult:
    """Run the selected rules (all by default) over ``ctx``."""
    selected = tuple(rule_ids) if rule_ids is not None else tuple(sorted(RULES))
    result = AnalysisResult(files_analyzed=len(ctx.files), rules_run=selected)
    by_path = {src.rel: src for src in ctx.files}
    if ctx.parity_test is not None:
        by_path.setdefault(ctx.parity_test.rel, ctx.parity_test)
    for rule_id in selected:
        for finding in RULES[rule_id](ctx):
            src = by_path.get(finding.path)
            if src is not None and src.is_suppressed(finding.rule_id, finding.line):
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)
    if "RPR012" in selected:
        _audit_stale_suppressions(ctx, result, selected)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    result.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return result


def _audit_stale_suppressions(ctx: AnalysisContext, result: AnalysisResult,
                              selected: tuple[str, ...]) -> None:
    """RPR012: flag directives that silenced nothing this run.

    Runs inside the engine because it needs every other rule's
    *suppressed* findings.  A directive is auditable for a rule id only
    when that rule actually ran (otherwise we cannot know whether it
    would have fired); unknown rule ids are stale unconditionally.
    """
    audited = set(selected) - {"RPR012"}
    hits: set[tuple[str, str, int]] = {
        (f.path, f.rule_id, f.line) for f in result.suppressed
    }

    def is_stale(src: SourceFile, d: SuppressionDirective, rule_id: str) -> bool:
        if rule_id not in RULES:
            return True
        if rule_id not in audited:
            return False
        return not any((src.rel, rule_id, line) in hits for line in d.covered)

    for src in ctx.files:
        for directive in src.directives:
            stale = [r for r in directive.rules if is_stale(src, directive, r)]
            if not stale:
                continue
            finding = Finding(
                rule_id="RPR012",
                severity=RULE_METADATA["RPR012"].severity,
                path=src.rel,
                line=directive.line,
                col=0,
                message=(
                    f"suppression of {', '.join(stale)} silences nothing "
                    "on the line(s) it covers; delete the stale directive"
                ),
            )
            if src.is_suppressed("RPR012", directive.line):
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)


def render_text(result: AnalysisResult) -> str:
    """Human-readable report."""
    lines = [f.render() for f in result.findings]
    lines.append(
        f"{len(result.findings)} finding(s), {len(result.suppressed)} "
        f"suppressed, {result.files_analyzed} file(s) analysed, "
        f"{len(result.rules_run)} rule(s)."
    )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Machine-readable report for CI artifacts."""
    payload = {
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "summary": {
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
            "files_analyzed": result.files_analyzed,
            "rules_run": list(result.rules_run),
            "exit_code": result.exit_code,
        },
        "rules": {
            rule_id: {
                "name": meta.name,
                "severity": meta.severity.value,
                "rationale": meta.rationale,
            }
            for rule_id, meta in sorted(RULE_METADATA.items())
            if rule_id in result.rules_run
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
