"""RPR206 — control-plane actuations must ride the store's locked methods.

The ``repro.tune`` control plane reshapes a live ``ShardedStore`` while
reader threads are mid-flight.  The store's re-partition methods
(``rebalance`` / ``rebuild_shard`` / ``retune_shard``) make that safe:
they take the shard locks in rank order, mutate, and bump the per-shard
generation counters so caches and batch snapshots self-invalidate.  A
control-plane module that reaches past that surface — writing
``store.generations`` itself, calling ``store.shards[i].compact()``
directly, or touching ``_bounds`` / ``_locks`` — reproduces the store's
locking discipline by hand, and one missed generation bump silently
serves stale cached results after a re-partition.

RPR206 enforces the contract from both sides:

* **tune-side** (files under a ``tune`` path segment): no writes to
  store bookkeeping attributes, no loads of store-private state, and no
  mutating calls on ``.shards[...]`` receivers — actuations go through
  the store's public re-partition methods only.
* **serve-side** (files under a ``serve`` path segment): every method
  in the ``rebalance`` / ``rebuild`` / ``retune`` family must lexically
  write a ``generations`` attribute (or delegate to a same-class
  family method) — the other half of the bargain the tune side relies
  on.

Both checks are purely syntactic, so the rule runs on fixture trees
without a registry, and the runtime lock-order witness
(``REPRO_SANITIZE=1``) cross-validates the discipline dynamically.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import AnalysisContext, _mk, rule
from repro.analysis.source import SourceFile

__all__ = ["rule_tuner_actuation_discipline"]

#: Store bookkeeping no control-plane code may write.
_STORE_BOOKKEEPING = frozenset({
    "generations", "shards", "_bounds", "_bounds_version",
    "_artifact_dirs", "_artifact_gens",
})

#: Store-private state no control-plane code may even read — holding or
#: inspecting these outside the store's own methods bypasses the
#: rank-ordered acquisition protocol.
_STORE_PRIVATE = frozenset({
    "_bounds", "_bounds_version", "_locks", "_artifact_dirs",
    "_artifact_gens",
})

#: Index mutators that re-shape a shard when called on it directly.
_SHARD_MUTATORS = frozenset({
    "build", "insert", "delete", "tune", "compact", "bulk_load", "merge",
})

#: Method-name family that owns re-partitioning on the serve side.
_REPARTITION_PREFIXES = ("rebalance", "rebuild", "retune")


def _attr_of_target(node: ast.expr) -> ast.Attribute | None:
    """The attribute being assigned for ``x.attr = ...`` / ``x.attr[i] = ...``."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node
    return None


def _mentions_shards(node: ast.expr) -> bool:
    """True when the expression reaches through a ``.shards`` attribute."""
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == "shards"
        for sub in ast.walk(node)
    )


def _in_segment(src: SourceFile, segment: str) -> bool:
    return segment in Path(src.rel).parts


def _tune_side(src: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(src.tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                attr = _attr_of_target(target)
                if attr is not None and attr.attr in _STORE_BOOKKEEPING:
                    yield _mk(
                        "RPR206", src, node.lineno, node.col_offset,
                        f"control-plane write to store bookkeeping "
                        f"'.{attr.attr}' — actuate through "
                        f"rebalance()/rebuild_shard()/retune_shard() so the "
                        f"generation bump and lock order stay with the store",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _SHARD_MUTATORS
                    and _mentions_shards(func.value)):
                yield _mk(
                    "RPR206", src, node.lineno, node.col_offset,
                    f"direct '.{func.attr}()' on a shard object bypasses "
                    f"the store's shard lock and generation bump — call the "
                    f"store's re-partition method instead",
                )
        elif isinstance(node, ast.Attribute) and node.attr in _STORE_PRIVATE:
            if isinstance(node.ctx, ast.Load):
                yield _mk(
                    "RPR206", src, node.lineno, node.col_offset,
                    f"control-plane access to store-private '.{node.attr}' — "
                    f"use the store's public surface (bounds, shard_sizes, "
                    f"re-partition methods)",
                )


def _writes_generations(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                attr = _attr_of_target(target)
                if attr is not None and attr.attr == "generations":
                    return True
        elif isinstance(node, ast.Call):
            # Delegation to a same-class family method keeps the bump
            # with whoever actually mutates.
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and func.attr.lstrip("_").startswith(_REPARTITION_PREFIXES)):
                return True
    return False


def _serve_side(src: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for item in node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if not item.name.lstrip("_").startswith(_REPARTITION_PREFIXES):
                continue
            if not _writes_generations(item):
                yield _mk(
                    "RPR206", src, item.lineno, item.col_offset,
                    f"{node.name}.{item.name} re-partitions without writing "
                    f"a generation counter — readers, caches and batch "
                    f"snapshots cannot detect the change",
                )


@rule(
    "RPR206",
    "tuner actuations must use lock-and-generation discipline",
    Severity.ERROR,
    "The self-tuning control plane mutates live shards; safety rests on "
    "every actuation flowing through the store's locked, "
    "generation-bumping re-partition methods.  Tune-side code that "
    "writes store bookkeeping, reads store-private lock state, or calls "
    "shard mutators directly re-implements that discipline by hand and "
    "one missed generation bump serves stale cache entries; serve-side "
    "re-partition methods that skip the generation write break the "
    "contract the control plane relies on.",
    tags=("concurrency", "tuning"),
)
def rule_tuner_actuation_discipline(ctx: AnalysisContext) -> Iterator[Finding]:
    for src in ctx.files:
        if _in_segment(src, "tune"):
            yield from _tune_side(src)
        if _in_segment(src, "serve"):
            yield from _serve_side(src)
