"""RPR101-RPR104: numeric-safety rules backed by the dataflow analyzer.

The kernel modules (``curves/``, ``onedim/``, ``multidim/``,
``models/``, ``bench/batch.py``) move SOSD-style 64-bit integer keys and
62-bit curve codes through numpy dtype boundaries; these rules use
:mod:`repro.analysis.dataflow` to flag the boundary crossings that
provably lose information:

* **RPR101** — shift/interleave results exceeding the int64 code budget,
  spread-table masks narrower than the budget admits, and vectorised
  curve kernels missing a code-budget guard (scoped to ``curves/``).
* **RPR102** — integer values provably wider than 53 bits flowing into a
  float64 cast with no ``2**53`` magnitude guard (the sanctioned guard
  is :func:`repro.core.numeric.exact_float64`).
* **RPR103** — ``searchsorted``/comparison operands mixing a float array
  with integers wider than 53 bits (the float side cannot represent the
  int side, so routing silently collapses distinct keys).
* **RPR104** — ``uint64``/``int64`` round-trips that can drop the top
  bit or wrap a negative value.

All four fire only on *provable* violations (a known magnitude bound
crossing a capacity); unknown widths stay silent, and the
``REPRO_SANITIZE=1`` runtime checks cover them dynamically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow import (
    AbstractValue,
    FunctionFacts,
    ModuleFacts,
    _const_int,
    analyze_module,
    bit_width,
    parse_spread_table,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import AnalysisContext, _mk, rule
from repro.analysis.source import SourceFile

__all__ = ["KERNEL_DIRS"]

#: Package subtrees whose numerics the RPR1xx family watches.
KERNEL_DIRS = ("curves", "onedim", "multidim", "models")

#: int64 codes must keep the sign bit clear: the shared curve budget.
_CODE_BUDGET_BITS = 62

_FLOAT64_SAFE_BITS = 53

_NUMPY_INT_DTYPES = {"int64", "uint64", "int32", "uint32", "intp"}

#: Per-module dataflow cache, keyed by SourceFile identity.
_FACTS_CACHE: dict[int, ModuleFacts] = {}


def _facts(src: SourceFile) -> ModuleFacts | None:
    if src.tree is None:
        return None
    cached = _FACTS_CACHE.get(id(src))
    if cached is None:
        cached = analyze_module(src.tree)
        _FACTS_CACHE[id(src)] = cached
    return cached


def _rel_parts(src: SourceFile) -> tuple[str, ...]:
    return tuple(src.rel.replace("\\", "/").split("/"))


def _in_kernel_scope(src: SourceFile, curves_only: bool = False) -> bool:
    """Whether RPR1xx rules apply to this file.

    Files outside ``src/repro`` (explicit CLI paths, test fixtures) are
    always in scope; inside the package only the kernel subtrees are.
    """
    parts = _rel_parts(src)
    if parts[:2] != ("src", "repro"):
        return True
    sub = parts[2:]
    if not sub:
        return False
    if curves_only:
        return sub[0] == "curves"
    if sub[0] in KERNEL_DIRS:
        return True
    return sub == ("bench", "batch.py")


def _int_capacity(dtype: str | None) -> int | None:
    """Magnitude bits an integer dtype can hold without corruption."""
    if dtype == "uint64":
        return 64
    if dtype in ("int64", "intp"):
        return 63
    if dtype == "uint32":
        return 32
    if dtype == "int32":
        return 31
    return None


def _astype_sites(fn: FunctionFacts) -> Iterator[tuple[ast.Call, str, AbstractValue]]:
    """Yield ``(call, target_dtype, operand_value)`` for every cast."""
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if name == "astype" and isinstance(func, ast.Attribute) and node.args:
            dtype = _dtype_name(node.args[0])
            if dtype is not None:
                yield node, dtype, fn.value_of(func.value)
        elif name in ("asarray", "array", "ascontiguousarray") and node.args:
            dtype_node = next((kw.value for kw in node.keywords
                               if kw.arg == "dtype"), None)
            dtype = _dtype_name(dtype_node) if dtype_node is not None else None
            if dtype is not None:
                yield node, dtype, fn.value_of(node.args[0])
        elif name in ("float64", "uint64", "int64") and len(node.args) == 1:
            yield node, name, fn.value_of(node.args[0])


def _dtype_name(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


@rule(
    "RPR101",
    "code-budget overflow",
    Severity.ERROR,
    "Interleaved curve codes must fit the shared d * bits <= 62 int64 "
    "budget; masks and shifts that provably exceed it (or fast-path mask "
    "tables narrower than the budget admits) silently corrupt codes.",
    tags=("numeric", "curves"),
)
def rule_code_budget(ctx: AnalysisContext) -> Iterator[Finding]:
    for src in ctx.files:
        if not _in_kernel_scope(src, curves_only=True):
            continue
        module = _facts(src)
        if module is None:
            continue
        # Fast-path mask tables: each dimensionality's input mask must
        # admit every in-budget coordinate width (floor(62 / d) bits).
        for assign in module.spread_assigns:
            parsed = parse_spread_table(assign)
            if parsed is None:
                continue
            _, table = parsed
            for dims, mask in sorted(table.masks.items()):
                admitted = _CODE_BUDGET_BITS // dims
                if mask.bit_length() < admitted:
                    yield _mk(
                        "RPR101", src, assign.lineno, assign.col_offset,
                        f"spread-table input mask for d={dims} keeps only "
                        f"{mask.bit_length()} bits but the {_CODE_BUDGET_BITS}-bit "
                        f"code budget admits {admitted}-bit coordinates; the "
                        "fast path would silently truncate in-budget inputs",
                    )
        for fn in module.functions:
            yield from _overflowing_arithmetic(src, fn)
            yield from _missing_budget_guard(src, fn)


def _overflowing_arithmetic(src: SourceFile, fn: FunctionFacts) -> Iterator[Finding]:
    for node in ast.walk(fn.node):
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.LShift, ast.Add, ast.Mult, ast.BitOr)):
            value = fn.value_of(node)
            capacity = _int_capacity(value.dtype) if value.is_int else None
            width = bit_width(value)
            if capacity is not None and width is not None and width > capacity:
                yield _mk(
                    "RPR101", src, node.lineno, node.col_offset,
                    f"{value.dtype} arithmetic result can need {width} bits "
                    f"(> {capacity}-bit capacity): the interleave/shift "
                    "pipeline can wrap past the code budget",
                )
    for call, dtype, operand in _astype_sites(fn):
        capacity = _int_capacity(dtype)
        width = bit_width(operand)
        if capacity is None or width is None or not operand.is_int:
            continue
        if width > capacity:
            yield _mk(
                "RPR101", src, call.lineno, call.col_offset,
                f"cast to {dtype} of an integer needing up to {width} bits "
                f"overflows its {capacity}-bit capacity",
            )


def _missing_budget_guard(src: SourceFile, fn: FunctionFacts) -> Iterator[Finding]:
    if fn.node.name.startswith("_"):
        return
    has_shift = any(
        isinstance(n, ast.BinOp) and isinstance(n.op, (ast.LShift, ast.RShift))
        and _const_int(n) is None  # mask literals like (1 << k) - 1 don't count
        for n in ast.walk(fn.node)
    )
    if not has_shift:
        return
    uses_spreading = bool(
        {"_spread", "_compact", "interleave_array"} & fn.called_names
    ) or any(dtype == "uint64" for _, dtype, _ in _astype_sites(fn))
    if not uses_spreading:
        return
    if fn.has_budget_guard:
        return
    yield _mk(
        "RPR101", src, fn.node.lineno, fn.node.col_offset,
        f"vectorised curve kernel '{fn.node.name}' shifts/spreads bits but "
        "never checks the d * bits <= 62 code budget "
        "(call repro.curves.capacity.require_code_budget or fits_code_budget)",
    )


@rule(
    "RPR102",
    "lossy float64 cast",
    Severity.ERROR,
    "Integer keys/codes wider than 53 bits lose precision under float64 "
    "casts, silently merging distinct keys; use "
    "repro.core.numeric.exact_float64 or an explicit 2^53 guard.",
    tags=("numeric",),
)
def rule_lossy_float_cast(ctx: AnalysisContext) -> Iterator[Finding]:
    for src in ctx.files:
        if not _in_kernel_scope(src):
            continue
        module = _facts(src)
        if module is None:
            continue
        for fn in module.functions:
            if fn.has_float64_guard:
                continue
            for call, dtype, operand in _astype_sites(fn):
                if dtype not in ("float64", "float32"):
                    continue
                width = bit_width(operand)
                if operand.is_int and width is not None and width > _FLOAT64_SAFE_BITS:
                    yield _mk(
                        "RPR102", src, call.lineno, call.col_offset,
                        f"integer values up to {width} bits wide are cast to "
                        f"{dtype} without a 2^{_FLOAT64_SAFE_BITS} magnitude "
                        "guard; distinct keys can merge — use "
                        "repro.core.numeric.exact_float64",
                    )


@rule(
    "RPR103",
    "mixed-dtype routing",
    Severity.ERROR,
    "searchsorted/comparisons mixing a float operand with >53-bit "
    "integers route through lossy implicit conversions, so lookups can "
    "land on the wrong run of keys.",
    tags=("numeric",),
)
def rule_mixed_dtype_routing(ctx: AnalysisContext) -> Iterator[Finding]:
    for src in ctx.files:
        if not _in_kernel_scope(src):
            continue
        module = _facts(src)
        if module is None:
            continue
        for fn in module.functions:
            for node in ast.walk(fn.node):
                pairs: list[tuple[AbstractValue, AbstractValue]] = []
                if isinstance(node, ast.Call):
                    name = node.func.attr if isinstance(node.func, ast.Attribute) \
                        else (node.func.id if isinstance(node.func, ast.Name) else None)
                    if name == "searchsorted" and len(node.args) >= 2:
                        pairs.append((fn.value_of(node.args[0]),
                                      fn.value_of(node.args[1])))
                elif isinstance(node, ast.Compare):
                    left = fn.value_of(node.left)
                    for comparator in node.comparators:
                        pairs.append((left, fn.value_of(comparator)))
                for a, b in pairs:
                    wide = _wide_int_against_float(a, b)
                    if wide is not None:
                        label = "searchsorted" if isinstance(node, ast.Call) \
                            else "comparison"
                        yield _mk(
                            "RPR103", src, node.lineno, node.col_offset,
                            f"{label} mixes a float operand with integers up "
                            f"to {wide} bits wide (> {_FLOAT64_SAFE_BITS}-bit "
                            "float64 precision): keep both sides integral or "
                            "cast via exact_float64",
                        )
                        break


def _wide_int_against_float(a: AbstractValue, b: AbstractValue) -> int | None:
    for int_side, float_side in ((a, b), (b, a)):
        if not (int_side.is_int and float_side.is_float):
            continue
        width = bit_width(int_side)
        if width is not None and width > _FLOAT64_SAFE_BITS:
            return width
    return None


@rule(
    "RPR104",
    "signed/unsigned round-trip",
    Severity.ERROR,
    "uint64 -> int64 casts with the top bit possibly set flip the sign, "
    "and int -> uint64 casts of possibly-negative values wrap to huge "
    "codes; both corrupt curve codes silently.",
    tags=("numeric",),
)
def rule_sign_roundtrip(ctx: AnalysisContext) -> Iterator[Finding]:
    for src in ctx.files:
        if not _in_kernel_scope(src):
            continue
        module = _facts(src)
        if module is None:
            continue
        for fn in module.functions:
            for call, dtype, operand in _astype_sites(fn):
                width = bit_width(operand)
                if not operand.is_int:
                    continue
                if dtype in ("int64", "intp") and operand.dtype == "uint64" \
                        and width is not None and width >= 64:
                    yield _mk(
                        "RPR104", src, call.lineno, call.col_offset,
                        f"uint64 value needing up to {width} bits is cast to "
                        "int64: the top bit becomes the sign bit and the code "
                        "goes negative",
                    )
                elif dtype in ("uint64", "uint32") and operand.maybe_negative \
                        and width is not None:
                    yield _mk(
                        "RPR104", src, call.lineno, call.col_offset,
                        f"possibly-negative integer (|x| <= 2^{width}) is cast "
                        f"to {dtype}: negative values wrap to huge codes; "
                        "clamp or validate non-negativity first",
                    )
