"""The RPR001-RPR010 contract rules.

Each rule is a function from an :class:`AnalysisContext` to an iterator
of findings, registered with its stable ID, severity, and rationale.
The contract rules (RPR001/RPR002) consult the live registry snapshot;
the remaining rules are purely syntactic so they also run on the test
fixtures and on arbitrary files passed to the CLI.

The rules encode the survey's uniform-API premise: cross-index results
in the paper are only comparable because every index answers the same
queries under the same measurement discipline (cost counters, seeded
randomness, floor-consistent cell routing).  See DESIGN.md for the
mapping from each rule to the failure it guards against.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

from repro.analysis.findings import Finding, RuleMeta, Severity
from repro.analysis.registry_view import BATCH_METHODS, RegistryView
from repro.analysis.source import SourceFile

__all__ = ["AnalysisContext", "RULES", "RULE_METADATA", "rule"]

#: Interface base-class names that mark an AST class as an index.
_ONE_DIM_BASES = {"OneDimIndex", "MutableOneDimIndex"}
_MULTI_DIM_BASES = {"MultiDimIndex", "MutableMultiDimIndex"}
_FILTER_BASES = {"MembershipFilter"}
_INDEX_BASES = _ONE_DIM_BASES | _MULTI_DIM_BASES | _FILTER_BASES

#: Query methods that answer user queries and therefore must account
#: their work in ``self.stats`` (RPR005) and check the built flag (RPR007).
_QUERY_METHODS = {
    "lookup",
    "contains",
    "range_query",
    "point_query",
    "knn_query",
    "might_contain",
    "lookup_batch",
    "contains_batch",
    "point_query_batch",
    "range_query_batch",
}

#: Function names that perform curve/cell routing: the scope of RPR003.
_ROUTING_NAME_RE = re.compile(r"quantize|cell|rout", re.IGNORECASE)

RuleFn = Callable[["AnalysisContext"], Iterator[Finding]]
RULES: dict[str, RuleFn] = {}
RULE_METADATA: dict[str, RuleMeta] = {}


def rule(rule_id: str, name: str, severity: Severity, rationale: str,
         tags: tuple[str, ...] = ()) -> Callable[[RuleFn], RuleFn]:
    """Register a rule function under its stable ID."""

    def decorate(fn: RuleFn) -> RuleFn:
        RULES[rule_id] = fn
        RULE_METADATA[rule_id] = RuleMeta(rule_id, name, severity, rationale, tags)
        return fn

    return decorate


@dataclass
class AnalysisContext:
    """Everything a rule may look at.

    ``registry`` is ``None`` when the CLI analyses explicit paths that
    are not the installed package (e.g. test fixtures) — the contract
    rules then skip silently and only the syntactic rules run.
    """

    root: Path
    files: list[SourceFile] = field(default_factory=list)
    registry: RegistryView | None = None
    #: Source of tests/core/test_batch_parity.py when found (RPR002).
    parity_test: SourceFile | None = None

    def file_for(self, filename: str) -> SourceFile | None:
        """The scanned file whose absolute path is ``filename``."""
        target = Path(filename).resolve()
        for src in self.files:
            if src.path.resolve() == target:
                return src
        return None


def _mk(rule_id: str, src: SourceFile, node_line: int, col: int, message: str) -> Finding:
    return Finding(
        rule_id=rule_id,
        severity=RULE_METADATA[rule_id].severity,
        path=src.rel,
        line=node_line,
        col=col,
        message=message,
    )


def _dotted_name(node: ast.expr) -> str | None:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _index_classes(src: SourceFile) -> Iterator[tuple[ast.ClassDef, str]]:
    """AST index classes in ``src`` with their interface family.

    Family is ``"onedim"``, ``"multidim"``, ``"filter"``, or
    ``"derived"`` (subclasses of another concrete index, whose family
    the AST alone cannot see).
    """
    if src.tree is None:
        return
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        base_names = {
            name.rsplit(".", 1)[-1]
            for name in (_dotted_name(b) for b in node.bases)
            if name is not None
        }
        if base_names & _ONE_DIM_BASES:
            yield node, "onedim"
        elif base_names & _MULTI_DIM_BASES:
            yield node, "multidim"
        elif base_names & _FILTER_BASES:
            yield node, "filter"
        elif any(b.endswith(("Index", "LSM", "SkipList", "Filter")) for b in base_names):
            yield node, "derived"


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _self_attr(node: ast.expr, attr: str | None = None) -> bool:
    """Whether ``node`` is ``self.<attr>`` (any attribute when None)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


# ---------------------------------------------------------------------------
# RPR001 — full abstract surface + registry membership
# ---------------------------------------------------------------------------
@rule(
    "RPR001",
    "contract-surface",
    Severity.ERROR,
    "Every concrete index class must implement the full abstract surface of "
    "its core.interfaces base and be reachable from the survey registry "
    "(core.registry implemented=...) or a bench factory dict — otherwise it "
    "silently escapes the uniform benchmark contract.",
    ("contract", "registry"),
)
def check_contract_surface(ctx: AnalysisContext) -> Iterator[Finding]:
    if ctx.registry is None:
        return
    for info in ctx.registry.classes:
        src = ctx.file_for(info.filename)
        if src is None:
            continue
        if info.missing_abstract:
            yield _mk(
                "RPR001", src, info.lineno, 0,
                f"{info.name} leaves abstract methods unimplemented: "
                f"{', '.join(info.missing_abstract)}",
            )
        if not info.in_registry and not info.factory_names:
            yield _mk(
                "RPR001", src, info.lineno, 0,
                f"{info.name} is neither an `implemented=` target in "
                f"core.registry nor constructible from a bench factory dict; "
                f"it escapes the uniform contract suites",
            )


# ---------------------------------------------------------------------------
# RPR002 — batch overrides covered by the parity suite
# ---------------------------------------------------------------------------
@rule(
    "RPR002",
    "batch-parity-coverage",
    Severity.ERROR,
    "Every lookup_batch/point_query_batch/range_query_batch override must be "
    "reachable from the factory dicts the batch-parity tests parametrize "
    "over, so a vectorized fast path can never silently diverge from the "
    "scalar semantics.",
    ("contract", "batch"),
)
def check_batch_parity_coverage(ctx: AnalysisContext) -> Iterator[Finding]:
    if ctx.registry is None:
        return
    for info in ctx.registry.classes:
        src = ctx.file_for(info.filename)
        if src is None:
            continue
        for meth in info.batch_overrides:
            dict_name = BATCH_METHODS[meth]
            members = ctx.registry.factory_members.get(dict_name, set())
            if info.qualname not in members:
                yield _mk(
                    "RPR002", src, info.lineno, 0,
                    f"{info.name} overrides {meth} but is not constructible "
                    f"from {dict_name}, so the batch-parity suite never "
                    f"exercises the override",
                )
    # Meta-check: the parity test must still parametrize over the dicts.
    if ctx.parity_test is not None:
        for dict_name in ("ONE_DIM_FACTORIES", "MULTI_DIM_FACTORIES"):
            if dict_name not in ctx.parity_test.text:
                yield _mk(
                    "RPR002", ctx.parity_test, 1, 0,
                    f"batch-parity test no longer references {dict_name}; "
                    f"override coverage is unverifiable",
                )


# ---------------------------------------------------------------------------
# RPR003 — floor-consistent curve/cell routing (the PR 2 bug class)
# ---------------------------------------------------------------------------
@rule(
    "RPR003",
    "no-round-in-routing",
    Severity.ERROR,
    "Curve quantisation and grid cell routing must use floor semantics: "
    "np.rint/round in routing code makes the curve layer and the grid layer "
    "disagree about which cell owns a point (the exact bug PR 2 fixed).",
    ("routing", "curves"),
)
def check_no_round_in_routing(ctx: AnalysisContext) -> Iterator[Finding]:
    for src in ctx.files:
        if src.tree is None:
            continue
        in_curves = "curves" in Path(src.rel).parts
        for func in ast.walk(src.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not in_curves and not _ROUTING_NAME_RE.search(func.name):
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                bad: str | None = None
                if isinstance(node.func, ast.Name) and node.func.id == "round":
                    bad = "round()"
                elif isinstance(node.func, ast.Attribute) and node.func.attr == "rint":
                    bad = f"{_dotted_name(node.func) or 'rint'}()"
                if bad is not None:
                    yield _mk(
                        "RPR003", src, node.lineno, node.col_offset,
                        f"{bad} in routing code ({func.name}); use floor "
                        f"semantics so curve and grid layers route to the "
                        f"same cell",
                    )


# ---------------------------------------------------------------------------
# RPR004 — no unseeded / global-state randomness in library code
# ---------------------------------------------------------------------------
_SEEDED_CONSTRUCTORS = {"Generator", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}


@rule(
    "RPR004",
    "no-unseeded-rng",
    Severity.ERROR,
    "Library code must take an explicit seed or Generator: legacy "
    "np.random.* global-state calls and zero-argument default_rng() make "
    "benchmark shapes unreproducible across runs.",
    ("reproducibility",),
)
def check_no_unseeded_rng(ctx: AnalysisContext) -> Iterator[Finding]:
    for src in ctx.files:
        if src.tree is None:
            continue
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            message: str | None = None
            if dotted is not None and (
                dotted.startswith("np.random.") or dotted.startswith("numpy.random.")
            ):
                leaf = dotted.rsplit(".", 1)[-1]
                if leaf == "seed":
                    message = f"{dotted}() reseeds global state; pass a Generator instead"
                elif leaf == "default_rng":
                    if not node.args and not node.keywords:
                        message = f"{dotted}() without a seed is unreproducible"
                elif leaf not in _SEEDED_CONSTRUCTORS:
                    message = (
                        f"{dotted}() uses numpy's global RNG state; take a "
                        f"seeded np.random.Generator instead"
                    )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id == "default_rng"
                and not node.args
                and not node.keywords
            ):
                message = "default_rng() without a seed is unreproducible"
            if message is not None:
                yield _mk("RPR004", src, node.lineno, node.col_offset, message)


# ---------------------------------------------------------------------------
# RPR005 — query scans must account work in self.stats
# ---------------------------------------------------------------------------
def _has_scan(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, (ast.For, ast.While, ast.ListComp, ast.SetComp,
                             ast.DictComp, ast.GeneratorExp)):
            return True
    return False


def _touches_stats(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and node.attr == "stats":
            return True
    return False


def _delegates(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether the method calls other ``self.*`` methods (which count)."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and _self_attr(node.func):
            if node.func.attr not in {"_require_built"}:  # type: ignore[union-attr]
                return True
    return False


@rule(
    "RPR005",
    "stats-accounting",
    Severity.WARNING,
    "Query methods that scan or compare stored data must touch self.stats: "
    "the survey's machine-independent cost counters are the only "
    "cross-machine-comparable benchmark output.",
    ("contract", "counters"),
)
def check_stats_accounting(ctx: AnalysisContext) -> Iterator[Finding]:
    for src in ctx.files:
        for cls, _family in _index_classes(src):
            for name, func in _methods(cls).items():
                if name not in _QUERY_METHODS:
                    continue
                if not _has_scan(func):
                    continue
                if _touches_stats(func) or _delegates(func):
                    continue
                yield _mk(
                    "RPR005", src, func.lineno, func.col_offset,
                    f"{cls.name}.{name} scans data but never touches "
                    f"self.stats; cost counters are part of the query "
                    f"contract",
                )


# ---------------------------------------------------------------------------
# RPR006 — no mutable default arguments
# ---------------------------------------------------------------------------
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "Counter",
                  "OrderedDict", "deque"}


@rule(
    "RPR006",
    "no-mutable-defaults",
    Severity.ERROR,
    "Mutable default arguments are shared across calls; a default buffer or "
    "config dict mutated by one index build leaks into the next.",
    ("correctness",),
)
def check_no_mutable_defaults(ctx: AnalysisContext) -> Iterator[Finding]:
    for src in ctx.files:
        if src.tree is None:
            continue
        for func in ast.walk(src.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(func.args.defaults) + [
                d for d in func.args.kw_defaults if d is not None
            ]
            for default in defaults:
                mutable = isinstance(
                    default,
                    (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp),
                ) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CALLS
                )
                if mutable:
                    yield _mk(
                        "RPR006", src, default.lineno, default.col_offset,
                        f"mutable default argument in {func.name}(); use "
                        f"None and allocate inside the function",
                    )


# ---------------------------------------------------------------------------
# RPR007 — built-flag discipline
# ---------------------------------------------------------------------------
def _sets_built(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and any(
            _self_attr(t, "_built") for t in node.targets
        ):
            return True
        if isinstance(node, ast.AnnAssign) and _self_attr(node.target, "_built"):
            return True
        # Delegation: super().build(...) or self.<anything>build<anything>(...)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if "build" in node.func.attr:
                value = node.func.value
                if _self_attr(node.func) or (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "super"
                ):
                    return True
    return False


def _checks_built(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and node.attr in ("_require_built", "_built"):
            return True
    return False


@rule(
    "RPR007",
    "built-flag-discipline",
    Severity.ERROR,
    "build() must set self._built (directly or via super().build) and scalar "
    "query entry points must call self._require_built(), so querying an "
    "unbuilt index raises NotBuiltError instead of returning garbage.",
    ("contract", "lifecycle"),
)
def check_built_flag(ctx: AnalysisContext) -> Iterator[Finding]:
    for src in ctx.files:
        for cls, family in _index_classes(src):
            if family == "filter":  # MembershipFilter has no built flag
                continue
            methods = _methods(cls)
            build = methods.get("build")
            if build is not None and not _sets_built(build):
                yield _mk(
                    "RPR007", src, build.lineno, build.col_offset,
                    f"{cls.name}.build() never sets self._built (and does "
                    f"not delegate to a build method that would)",
                )
            for name in ("lookup", "range_query", "point_query", "knn_query"):
                func = methods.get(name)
                if func is None:
                    continue
                if _checks_built(func) or _delegates(func):
                    continue
                yield _mk(
                    "RPR007", src, func.lineno, func.col_offset,
                    f"{cls.name}.{name} neither calls self._require_built() "
                    f"nor delegates to a method that does",
                )


# ---------------------------------------------------------------------------
# RPR008 — __all__ present and consistent
# ---------------------------------------------------------------------------
def _top_level_bindings(tree: ast.Module) -> tuple[set[str], bool]:
    """Names bound at module top level; bool is True on ``import *``."""
    bound: set[str] = set()
    star = False

    def visit(stmts: list[ast.stmt]) -> None:
        nonlocal star
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            bound.add(node.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                bound.add(stmt.target.id)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        star = True
                    else:
                        bound.add(alias.asname or alias.name)
            elif isinstance(stmt, (ast.If, ast.Try)):
                visit(stmt.body)
                visit(getattr(stmt, "orelse", []))
                for handler in getattr(stmt, "handlers", []):
                    visit(handler.body)
                visit(getattr(stmt, "finalbody", []))

    visit(tree.body)
    return bound, star


@rule(
    "RPR008",
    "dunder-all-consistency",
    Severity.WARNING,
    "Public modules must declare __all__ and every listed name must exist: "
    "a stale __all__ silently breaks `from module import *` users and the "
    "persistence layer's export discovery.",
    ("api",),
)
def check_dunder_all(ctx: AnalysisContext) -> Iterator[Finding]:
    for src in ctx.files:
        if src.tree is None:
            continue
        stem = Path(src.rel).stem
        if stem.startswith("_") and stem != "__init__":
            continue
        all_node: ast.Assign | None = None
        for stmt in src.tree.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
            ):
                all_node = stmt
                break
        if all_node is None:
            yield _mk(
                "RPR008", src, 1, 0,
                "public module defines no __all__; exports are undeclared",
            )
            continue
        if not isinstance(all_node.value, (ast.List, ast.Tuple)):
            continue  # computed __all__; out of scope for a static pass
        listed = [
            elt.value
            for elt in all_node.value.elts
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
        ]
        bound, star = _top_level_bindings(src.tree)
        if star:
            continue
        for name in listed:
            if name not in bound:
                yield _mk(
                    "RPR008", src, all_node.lineno, all_node.col_offset,
                    f"__all__ lists {name!r} but the module never binds it",
                )


# ---------------------------------------------------------------------------
# RPR009 — serving-layer shard-lock discipline
# ---------------------------------------------------------------------------
#: Index-mutating method names whose receivers the serving layer guards.
_MUTATING_METHODS = {"build", "insert", "delete"}
_LOCK_NAME_RE = re.compile(r"lock", re.IGNORECASE)
_LOCK_FREE_RE = re.compile(r"lock[- ]free", re.IGNORECASE)


def _mentions_lock(node: ast.expr) -> bool:
    """Whether an expression references anything lock-named."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and _LOCK_NAME_RE.search(sub.attr):
            return True
        if isinstance(sub, ast.Name) and _LOCK_NAME_RE.search(sub.id):
            return True
    return False


def _unlocked_mutations(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Mutating calls on held references not under a lock-named ``with``.

    A call ``<recv>.build/insert/delete(...)`` counts unless the
    receiver is plain ``self`` (delegation to a method that is itself
    checked) or some enclosing ``with`` statement's context expression
    mentions a lock.
    """
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(func):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
        ):
            continue
        receiver = node.func.value
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            continue
        cursor: ast.AST = node
        locked = False
        while cursor in parents:
            parent = parents[cursor]
            if isinstance(parent, ast.With) and any(
                _mentions_lock(item.context_expr) for item in parent.items
            ):
                locked = True
                break
            cursor = parent
        if not locked:
            yield node


@rule(
    "RPR009",
    "serve-shard-lock-discipline",
    Severity.ERROR,
    "Serving-layer classes hold index references that worker threads "
    "mutate concurrently: every build/insert/delete on a held index must "
    "run under the owning shard's lock (or the class/method must document "
    "its lock-free or lock-delegating safety argument), otherwise two "
    "workers can interleave a structural rebuild with a read.",
    ("serve", "concurrency"),
)
def check_serve_shard_locks(ctx: AnalysisContext) -> Iterator[Finding]:
    for src in ctx.files:
        if src.tree is None or "serve" not in Path(src.rel).parts:
            continue
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            class_doc = ast.get_docstring(node) or ""
            if _LOCK_FREE_RE.search(class_doc):
                continue  # documented lock-free read safety
            for func in _methods(node).values():
                method_doc = ast.get_docstring(func) or ""
                if _LOCK_NAME_RE.search(method_doc):
                    continue  # documents where the lock is taken
                for call in _unlocked_mutations(func):
                    target = _dotted_name(call.func) or call.func.attr
                    yield _mk(
                        "RPR009", src, call.lineno, call.col_offset,
                        f"{node.name}.{func.name} calls {target}() on a held "
                        "index outside a shard lock and without documenting "
                        "the locking contract",
                    )


# ---------------------------------------------------------------------------
# RPR010 — shared-state snapshot discipline (the PR 6 contract)
# ---------------------------------------------------------------------------
#: The one serving-layer module allowed to create/unlink shm segments.
_SHM_OWNER_STEM = "shm"
_DIGEST_NAME_RE = re.compile(r"sha256|digest|verify", re.IGNORECASE)
_STATE_PAIR = ("export_state", "from_state")


def _is_shared_memory_ctor(node: ast.Call) -> bool:
    """Whether a call constructs ``multiprocessing.shared_memory.SharedMemory``."""
    dotted = _dotted_name(node.func)
    return dotted is not None and dotted.rsplit(".", 1)[-1] == "SharedMemory"


def _creates_segment(node: ast.Call) -> bool:
    """A SharedMemory(...) call that can allocate a new OS segment."""
    if not _is_shared_memory_ctor(node):
        return False
    for kw in node.keywords:
        if kw.arg == "create":
            return not (
                isinstance(kw.value, ast.Constant) and kw.value.value is False
            )
    return bool(node.args)  # positional create flag; attach-by-name uses name=


def _maps_shared_buffer(node: ast.Call) -> bool:
    """An ``np.ndarray(..., buffer=...)`` view over externally owned bytes."""
    dotted = _dotted_name(node.func)
    if dotted is None or dotted.rsplit(".", 1)[-1] != "ndarray":
        return False
    return any(kw.arg == "buffer" for kw in node.keywords)


def _mentions_digest(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and _DIGEST_NAME_RE.search(node.attr):
            return True
        if isinstance(node, ast.Name) and _DIGEST_NAME_RE.search(node.id):
            return True
    return False


@rule(
    "RPR010",
    "shared-state-snapshot-discipline",
    Severity.ERROR,
    "The multi-process serving backend shares built indexes through "
    "shared-memory snapshots; that only stays safe if (a) segment "
    "creation/unlinking is confined to repro.serve.shm so ownership and "
    "leak auditing have one choke point, (b) every function that maps "
    "ndarray views over a shared buffer verifies the manifest digest "
    "before trusting the bytes, and (c) export_state/from_state are "
    "overridden in pairs — a class flattening its state on export but "
    "inheriting the generic restore (or vice versa) reconstructs garbage.",
    ("serve", "shm", "state"),
)
def check_shared_state_discipline(ctx: AnalysisContext) -> Iterator[Finding]:
    for src in ctx.files:
        if src.tree is None:
            continue
        rel_parts = Path(src.rel).parts
        in_serve = "serve" in rel_parts
        is_owner = in_serve and Path(src.rel).stem == _SHM_OWNER_STEM
        if in_serve and not is_owner:
            for node in ast.walk(src.tree):
                if isinstance(node, ast.Call) and _creates_segment(node):
                    yield _mk(
                        "RPR010", src, node.lineno, node.col_offset,
                        "SharedMemory segment created outside repro.serve.shm; "
                        "route creation through pack_state so ownership and "
                        "the repro_serve_ audit prefix stay in one place",
                    )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "unlink"
                    and re.search(
                        r"shm|segment|shared",
                        (_dotted_name(node.func.value) or "").lower(),
                    )
                ):
                    yield _mk(
                        "RPR010", src, node.lineno, node.col_offset,
                        "shared-memory unlink() outside repro.serve.shm; use "
                        "release_segment so retirement follows the "
                        "owner-unlinks-after-remap discipline",
                    )
        if in_serve:
            for func in ast.walk(src.tree):
                if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                maps = [n for n in ast.walk(func)
                        if isinstance(n, ast.Call) and _maps_shared_buffer(n)]
                if maps and not _mentions_digest(func):
                    yield _mk(
                        "RPR010", src, maps[0].lineno, maps[0].col_offset,
                        f"{func.name} maps ndarray views over a shared buffer "
                        "without verifying the manifest digest first; a "
                        "truncated or recycled segment would be served as "
                        "index data",
                    )
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            defined = {
                name for name in _STATE_PAIR if name in _methods(node)
            }
            if len(defined) == 1:
                present = next(iter(defined))
                missing = (_STATE_PAIR[1] if present == _STATE_PAIR[0]
                           else _STATE_PAIR[0])
                yield _mk(
                    "RPR010", src, node.lineno, node.col_offset,
                    f"{node.name} overrides {present} but not {missing}; the "
                    "export/restore pair must agree on the state layout or "
                    "reconstruction silently corrupts",
                )


# ---------------------------------------------------------------------------
# RPR011 — artifact digest-before-map discipline (the PR 7 contract)
# ---------------------------------------------------------------------------
#: File-to-ndarray mapping entry points: interpreting on-disk bytes as
#: typed array data (lazily or eagerly) without copying through a parser.
_FILE_MAP_CALLS = frozenset({"memmap", "fromfile"})
_PICKLE_LOAD_CALLS = frozenset({"load", "loads"})
_DISK_READ_METHODS = frozenset({"read", "read_bytes", "read_text"})


def _file_map_calls(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.Call]:
    """Calls in ``func`` that map file bytes into ndarrays."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if dotted is not None and dotted.rsplit(".", 1)[-1] in _FILE_MAP_CALLS:
                yield node


def _unpickles_from_disk(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> ast.Call | None:
    """The first pickle load in ``func``, if ``func`` also reads from disk.

    In-memory unpickling (bytes handed in by a caller who already
    verified them) is out of scope; the hazard this rule polices is
    trusting *file* bytes — so a pickle load only counts when the same
    function opens or reads a file.
    """
    pickle_call: ast.Call | None = None
    reads_disk = False
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_name(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            if parts[-1] in _PICKLE_LOAD_CALLS and "pickle" in parts[:-1]:
                if pickle_call is None:
                    pickle_call = node
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            reads_disk = True
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DISK_READ_METHODS
        ):
            reads_disk = True
    return pickle_call if reads_disk else None


@rule(
    "RPR011",
    "artifact-digest-before-map",
    Severity.ERROR,
    "The artifact store serves index bytes straight off disk (np.memmap "
    "views, raw np.fromfile reads, pickled payload blobs); that is only "
    "safe when every file is sha256-verified against the artifact "
    "manifest *before* any of its bytes are interpreted — mapping first "
    "and checking later (or never) serves a truncated or tampered file "
    "as index data, and unpickling unverified file bytes executes "
    "whatever the file says.  Mirrors RPR010's digest-before-map "
    "discipline for shared-memory segments.",
    ("artifact", "persistence", "integrity"),
)
def check_artifact_digest_discipline(ctx: AnalysisContext) -> Iterator[Finding]:
    for src in ctx.files:
        if src.tree is None:
            continue
        for func in ast.walk(src.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if _mentions_digest(func):
                continue
            for call in _file_map_calls(func):
                target = _dotted_name(call.func) or "memmap"
                yield _mk(
                    "RPR011", src, call.lineno, call.col_offset,
                    f"{func.name} maps file bytes into an ndarray via "
                    f"{target}() without digest-verifying the file first; "
                    "a corrupt or tampered artifact would be served as "
                    "index data",
                )
            pickle_call = _unpickles_from_disk(func)
            if pickle_call is not None:
                yield _mk(
                    "RPR011", src, pickle_call.lineno, pickle_call.col_offset,
                    f"{func.name} unpickles bytes read from disk without "
                    "digest-verifying them first; pickle executes code, so "
                    "loading an unverified payload runs whatever the file "
                    "contains",
                )


# ---------------------------------------------------------------------------
# RPR012 — stale-suppression audit
# ---------------------------------------------------------------------------
@rule(
    "RPR012",
    "stale-suppression",
    Severity.ERROR,
    "A `# lint: disable=` comment that no longer silences any finding "
    "is a standing invitation to reintroduce the violation unnoticed; "
    "as rules evolve, dead directives must be deleted to keep the "
    "zero-suppression invariant honest.  A directive naming an unknown "
    "rule id is always stale.",
    ("hygiene",),
)
def check_stale_suppressions(ctx: AnalysisContext) -> Iterator[Finding]:
    """Implemented in :func:`repro.analysis.engine.run_analysis`.

    The audit needs the *suppressed* findings of every other selected
    rule, which only the engine sees after running them; this function
    exists to give RPR012 a stable registration, metadata, and
    selectability like any other rule.
    """
    del ctx
    return iter(())
