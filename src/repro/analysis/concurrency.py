"""Interprocedural lock-discipline analysis: the RPR2xx rule family.

The RPR0xx rules check one node at a time; concurrency contracts cannot
be checked that way — whether ``self.generations[s] += 1`` is safe
depends on which locks every *caller* of the enclosing method holds.
This module builds a small interprocedural model of each class in the
scanned files:

* **lock discovery** — ``self.X = threading.Lock()`` (also ``RLock`` /
  ``Condition`` and the sanitizer factories ``make_lock`` /
  ``make_rlock`` / ``make_condition``), including shard-indexed
  families built with list comprehensions.  A lock attribute becomes a
  *group* node named ``ClassName.attr`` — the same identity the runtime
  witness (:mod:`repro.core.lockorder`) uses, so the two graphs diff
  cleanly.
* **held-set walking** — every statement of every method is visited
  with the ordered tuple of lexically held groups, resolving ``with
  self._locks[s]:`` directly and ``with cond:`` through the alias map
  of :func:`repro.analysis.dataflow.lock_aliases`.
* **entry-held fixpoint** — private helpers inherit the *intersection*
  of what their callers hold at every call site (must-hold semantics:
  sound for "is this access protected").  Thread and process entry
  points (:func:`repro.analysis.dataflow.thread_spawn_targets`) start
  with nothing held.
* **acquires-transitive fixpoint** — each method's may-acquire set
  closes over self-calls and calls through attributes whose class is
  inferable (``__init__`` annotations, ``AnnAssign``, direct
  constructor assignment), giving cross-class edges such as
  ``Coalescer._conds -> ServerStats._lock`` from
  ``self.stats.record_shed()`` under a condition.

The model feeds five rules: RPR201 (lock-order cycles — static
deadlock), RPR202 (guarded-elsewhere attributes accessed with no lock
held), RPR203 (``Condition.wait`` outside a predicate loop), RPR204
(generation counters not updated atomically with the mutation they
version), and RPR205 (shared-memory create/unlink reachable from a
worker-process entry point).  :func:`static_lock_graph` exports the
node/edge model for the CLI ``--lock-graph`` dump and for the tier-1
test that cross-validates it against the runtime witness graph.

Documented under-approximations (kept deliberately, see DESIGN.md):
calls like ``self._queues[shard].append(...)`` count as *reads* of the
attribute (container-interior mutation is invisible), and only
``self``-rooted state is tracked — aliasing through locals other than
the recognised lock aliases is out of scope.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.dataflow import lock_aliases, thread_spawn_targets
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import (
    _LOCK_FREE_RE,
    AnalysisContext,
    _creates_segment,
    _dotted_name,
    _methods,
    _mk,
    _self_attr,
    rule,
)
from repro.analysis.source import SourceFile

__all__ = [
    "ClassModel",
    "ProjectModel",
    "build_model",
    "static_lock_graph",
]

#: Constructor leaf names that create a lock, keyed to the lock kind.
_LOCK_CTORS = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
    "make_lock": "lock",
    "make_rlock": "rlock",
    "make_condition": "condition",
}

#: Method docstrings matching this deliberately-unlocked vocabulary are
#: RPR202 contract escapes (same convention as RPR009's lock mention).
_ESCAPE_RE = re.compile(r"lock|racy|snapshot|stale|single-thread", re.IGNORECASE)

#: Attributes versioning shard state (the result cache keys on these).
_GENERATION_RE = re.compile(r"generation", re.IGNORECASE)

#: Shared-memory-ish receivers whose ``.unlink()`` is segment removal.
_SEGMENT_NAME_RE = re.compile(r"shm|seg|mem", re.IGNORECASE)

#: Names that create or unlink segments when called from a worker role.
_SEGMENT_LIFECYCLE_FNS = {"pack_state", "pack_artifact", "release_segment"}

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NON_TYPE_IDENTS = {"None", "Optional", "Union"}

_FuncDef = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass(frozen=True)
class LockDecl:
    """One discovered lock attribute of a class."""

    attr: str
    kind: str  # "lock" | "rlock" | "condition"
    indexed: bool
    lineno: int


@dataclass(frozen=True)
class AttrSite:
    """One read or write of ``self.<attr>`` inside a method body."""

    attr: str
    lineno: int
    col: int
    write: bool
    held: tuple[str, ...]
    #: For generation writes under a lexical lock: whether the innermost
    #: ``with`` body also mutates other state (RPR204 atomicity check).
    co_mutation: bool = False


@dataclass(frozen=True)
class AcquireSite:
    """One ``with <lock>:`` entry, with the groups already held there."""

    group: str
    lineno: int
    col: int
    held: tuple[str, ...]


@dataclass(frozen=True)
class CallSite:
    """``self.<callee>(...)`` with the lexically held groups."""

    callee: str
    lineno: int
    held: tuple[str, ...]


@dataclass(frozen=True)
class ExtCallSite:
    """``self.<attr>.<method>(...)`` where ``attr``'s class is known."""

    cls: str
    method: str
    lineno: int
    held: tuple[str, ...]


@dataclass(frozen=True)
class WaitSite:
    """A ``.wait(...)`` call on a condition-kind lock receiver."""

    group: str
    lineno: int
    col: int
    in_while: bool


@dataclass
class MethodModel:
    """Everything the rules need to know about one method."""

    name: str
    node: _FuncDef
    docstring: str
    attr_sites: list[AttrSite] = field(default_factory=list)
    acquire_sites: list[AcquireSite] = field(default_factory=list)
    self_calls: list[CallSite] = field(default_factory=list)
    ext_calls: list[ExtCallSite] = field(default_factory=list)
    wait_sites: list[WaitSite] = field(default_factory=list)
    #: Groups held at *every* call site (must-hold intersection).
    entry_held: frozenset[str] = frozenset()
    #: Groups this method may acquire, transitively (may-acquire union).
    acquires_trans: frozenset[str] = frozenset()


@dataclass
class ClassModel:
    """Per-class lock/attribute/call model."""

    name: str
    src: SourceFile
    node: ast.ClassDef
    locks: dict[str, LockDecl] = field(default_factory=dict)
    methods: dict[str, MethodModel] = field(default_factory=dict)
    #: Inferred class name of typed attributes (for ext-call edges).
    attr_types: dict[str, str] = field(default_factory=dict)
    #: Methods handed to Thread/Process as ``target=self.X``.
    spawn_targets: set[str] = field(default_factory=set)

    def group(self, attr: str) -> str:
        return f"{self.name}.{attr}"


@dataclass(frozen=True)
class EdgeNote:
    """Provenance of one static lock-order edge."""

    src: SourceFile
    lineno: int
    text: str


@dataclass
class ProjectModel:
    """The whole-scan model shared by every RPR2xx rule."""

    classes: dict[str, ClassModel] = field(default_factory=dict)
    #: Lock-order edges ``(held_group, acquired_group) -> provenance``.
    edges: dict[tuple[str, str], list[EdgeNote]] = field(default_factory=dict)
    #: Module-level functions per module name, with their source file.
    module_funcs: dict[str, dict[str, tuple[SourceFile, _FuncDef]]] = \
        field(default_factory=dict)
    #: ``from X import name`` maps per module: local name -> (module, name).
    module_imports: dict[str, dict[str, tuple[str, str]]] = field(default_factory=dict)
    #: Worker-process entry points: (module, function-name, src, lineno).
    process_entries: list[tuple[str, str, SourceFile, int]] = field(default_factory=list)
    #: Worker-process entry methods: (class-name, method-name, src, lineno).
    process_entry_methods: list[tuple[str, str, SourceFile, int]] = \
        field(default_factory=list)

    def all_groups(self) -> frozenset[str]:
        return frozenset(
            cls.group(attr) for cls in self.classes.values() for attr in cls.locks
        )


# ---------------------------------------------------------------------------
# Lock discovery and attribute-type inference
# ---------------------------------------------------------------------------
def _leaf_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _lock_ctor_kind(value: ast.expr) -> tuple[str, bool] | None:
    """``(kind, indexed)`` when ``value`` constructs a lock (family)."""
    if isinstance(value, ast.Call):
        kind = _LOCK_CTORS.get(_leaf_name(value.func) or "")
        return (kind, False) if kind is not None else None
    if isinstance(value, ast.ListComp):
        inner = _lock_ctor_kind(value.elt)
        return (inner[0], True) if inner is not None and not inner[1] else None
    if isinstance(value, ast.List) and value.elts:
        kinds = [_lock_ctor_kind(elt) for elt in value.elts]
        if all(k is not None and not k[1] for k in kinds):
            first = kinds[0]
            assert first is not None
            return (first[0], True)
    return None


def _discover_locks(cls: ast.ClassDef) -> dict[str, LockDecl]:
    """``self.X = <lock ctor>`` declarations anywhere in the class."""
    locks: dict[str, LockDecl] = {}
    for method in _methods(cls).values():
        for node in ast.walk(method):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if target is None or value is None or not _self_attr(target):
                continue
            kind = _lock_ctor_kind(value)
            if kind is not None:
                assert isinstance(target, ast.Attribute)
                locks.setdefault(
                    target.attr, LockDecl(target.attr, kind[0], kind[1], node.lineno)
                )
    return locks


def _annotation_type_names(annotation: ast.expr) -> list[str]:
    """Candidate class names from a parameter/attribute annotation.

    Handles plain names, dotted names, PEP 604 unions, and string
    annotations (``store: "ShardedStore"``); ``None``/``Optional``/
    ``Union`` never name a concrete class.
    """
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return [
            ident for ident in _IDENT_RE.findall(annotation.value)
            if ident not in _NON_TYPE_IDENTS
        ]
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return (_annotation_type_names(annotation.left)
                + _annotation_type_names(annotation.right))
    leaf = _leaf_name(annotation)
    if leaf is not None and leaf not in _NON_TYPE_IDENTS:
        return [leaf]
    return []


def _attr_type_candidates(cls: ast.ClassDef) -> dict[str, list[str]]:
    """Possible class names per ``self.X``, resolved against the scan later."""
    candidates: dict[str, list[str]] = {}
    methods = _methods(cls)
    param_types: dict[str, list[str]] = {}
    init = methods.get("__init__")
    if init is not None:
        for arg in list(init.args.posonlyargs) + list(init.args.args) \
                + list(init.args.kwonlyargs):
            if arg.annotation is not None:
                param_types[arg.arg] = _annotation_type_names(arg.annotation)
    for method in methods.values():
        for node in ast.walk(method):
            if isinstance(node, ast.AnnAssign) and _self_attr(node.target):
                assert isinstance(node.target, ast.Attribute)
                candidates.setdefault(node.target.attr, []).extend(
                    _annotation_type_names(node.annotation)
                )
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and _self_attr(node.targets[0]):
                target = node.targets[0]
                assert isinstance(target, ast.Attribute)
                if isinstance(node.value, ast.Name) and node.value.id in param_types \
                        and method.name == "__init__":
                    candidates.setdefault(target.attr, []).extend(
                        param_types[node.value.id]
                    )
                elif isinstance(node.value, ast.Call):
                    leaf = _leaf_name(node.value.func)
                    if leaf is not None:
                        candidates.setdefault(target.attr, []).append(leaf)
    return candidates


# ---------------------------------------------------------------------------
# Held-set method walker
# ---------------------------------------------------------------------------
class _MethodWalker:
    """Visits one method body carrying the ordered held-group tuple."""

    def __init__(self, model: MethodModel, locks: dict[str, LockDecl],
                 class_name: str, attr_types: dict[str, str]) -> None:
        self.model = model
        self.locks = locks
        self.class_name = class_name
        self.attr_types = attr_types
        self.aliases = lock_aliases(model.node, frozenset(locks))
        self._with_bodies: list[list[ast.stmt]] = []

    def run(self) -> None:
        self._walk_body(self.model.node.body, (), False)

    # -- lock resolution ---------------------------------------------------
    def _lock_attr(self, expr: ast.expr) -> str | None:
        """The lock attribute acquired by ``expr``, if it is one."""
        node = expr
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) and _self_attr(node) \
                and node.attr in self.locks:
            return node.attr
        if isinstance(node, ast.Name) and node.id in self.aliases:
            return self.aliases[node.id]
        return None

    def _group_of(self, attr: str) -> str:
        return f"{self.class_name}.{attr}"

    # -- statement walking -------------------------------------------------
    def _walk_body(self, stmts: list[ast.stmt], held: tuple[str, ...],
                   in_while: bool) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt, held, in_while)

    def _walk_stmt(self, stmt: ast.AST, held: tuple[str, ...],
                   in_while: bool) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            new_held = held
            acquired_here = 0
            for item in stmt.items:
                attr = self._lock_attr(item.context_expr)
                if attr is not None:
                    group = self._group_of(attr)
                    self.model.acquire_sites.append(AcquireSite(
                        group, item.context_expr.lineno,
                        item.context_expr.col_offset, new_held,
                    ))
                    new_held = new_held + (group,)
                    acquired_here += 1
                else:
                    self._scan_expr(item.context_expr, held, in_while)
            if acquired_here:
                self._with_bodies.append(stmt.body)
            self._walk_body(stmt.body, new_held, in_while)
            if acquired_here:
                self._with_bodies.pop()
            return
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, held, in_while)
            self._walk_body(stmt.body, held, True)
            self._walk_body(stmt.orelse, held, in_while)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested callables run later on unknown threads: nothing held.
            self._walk_body(stmt.body, (), False)
            return
        if isinstance(stmt, ast.ClassDef):
            self._walk_body(stmt.body, (), False)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, held, in_while)
            elif isinstance(child, (ast.stmt, ast.excepthandler)) \
                    or type(child).__name__ == "match_case":
                self._walk_stmt(child, held, in_while)

    # -- expression scanning -----------------------------------------------
    def _scan_expr(self, expr: ast.expr, held: tuple[str, ...],
                   in_while: bool) -> None:
        stack: list[tuple[ast.AST, tuple[str, ...]]] = [(expr, held)]
        while stack:
            node, h = stack.pop()
            if isinstance(node, ast.Lambda):
                stack.append((node.body, ()))
                for default in node.args.defaults:
                    stack.append((default, h))
                for kw_default in node.args.kw_defaults:
                    if kw_default is not None:
                        stack.append((kw_default, h))
                continue
            self._note_node(node, h, in_while)
            for child in ast.iter_child_nodes(node):
                stack.append((child, h))

    def _note_node(self, node: ast.AST, held: tuple[str, ...],
                   in_while: bool) -> None:
        if isinstance(node, ast.Attribute) and _self_attr(node):
            write = isinstance(node.ctx, (ast.Store, ast.Del))
            self._record_site(node.attr, node.lineno, node.col_offset, write, held)
            return
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, (ast.Store, ast.Del)):
            base = node.value
            while isinstance(base, ast.Subscript):
                base = base.value
            if isinstance(base, ast.Attribute) and _self_attr(base):
                self._record_site(base.attr, node.lineno, node.col_offset, True, held)
            return
        if isinstance(node, ast.Call):
            self._note_call(node, held, in_while)

    def _record_site(self, attr: str, lineno: int, col: int, write: bool,
                     held: tuple[str, ...]) -> None:
        co_mutation = False
        if write and held and self._with_bodies and _GENERATION_RE.search(attr):
            co_mutation = _has_co_mutation(self._with_bodies[-1], attr)
        self.model.attr_sites.append(
            AttrSite(attr, lineno, col, write, held, co_mutation)
        )

    def _note_call(self, call: ast.Call, held: tuple[str, ...],
                   in_while: bool) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = func.value
        if func.attr == "wait":
            attr = self._lock_attr(receiver)
            if attr is not None and self.locks[attr].kind == "condition":
                self.model.wait_sites.append(WaitSite(
                    self._group_of(attr), call.lineno, call.col_offset, in_while,
                ))
                return
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            self.model.self_calls.append(CallSite(func.attr, call.lineno, held))
            return
        if isinstance(receiver, ast.Attribute) and _self_attr(receiver):
            typed = self.attr_types.get(receiver.attr)
            if typed is not None:
                self.model.ext_calls.append(
                    ExtCallSite(typed, func.attr, call.lineno, held)
                )


def _has_co_mutation(body: list[ast.stmt], gen_attr: str) -> bool:
    """Whether a locked region mutates anything besides the counter itself.

    Co-mutation means another ``self`` attribute is stored, or a method
    is called on a receiver other than bare ``self`` (e.g.
    ``self.shards[s].insert(...)``) — the mutation the generation bump
    is supposed to version.
    """
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Attribute) and _self_attr(node) \
                    and isinstance(node.ctx, (ast.Store, ast.Del)) \
                    and node.attr != gen_attr:
                return True
            if isinstance(node, ast.Subscript) \
                    and isinstance(node.ctx, (ast.Store, ast.Del)):
                base = node.value
                while isinstance(base, ast.Subscript):
                    base = base.value
                if isinstance(base, ast.Attribute) and _self_attr(base) \
                        and base.attr != gen_attr:
                    return True
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                recv = node.func.value
                if not (isinstance(recv, ast.Name) and recv.id == "self"):
                    return True
    return False


# ---------------------------------------------------------------------------
# Model construction: scan, fixpoints, edges
# ---------------------------------------------------------------------------
def _module_name(src: SourceFile) -> str:
    parts = list(src.rel.replace("\\", "/").removesuffix(".py").split("/"))
    if parts and parts[0] == "src":
        parts = parts[1:]
    return ".".join(parts)


def _is_private_helper(name: str) -> bool:
    return name.startswith("_") and not (name.startswith("__") and name.endswith("__"))


def _scan_file(src: SourceFile, project: ProjectModel) -> None:
    module = _module_name(src)
    funcs: dict[str, tuple[SourceFile, _FuncDef]] = {}
    imports: dict[str, tuple[str, str]] = {}
    for node in src.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            funcs[node.name] = (src, node)
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                imports[alias.asname or alias.name] = (node.module, alias.name)
    project.module_funcs[module] = funcs
    project.module_imports[module] = imports

    for node in ast.walk(src.tree):
        if isinstance(node, ast.ClassDef):
            cls = ClassModel(node.name, src, node, locks=_discover_locks(node))
            for kind, target, lineno in thread_spawn_targets(node):
                if target.startswith("self."):
                    cls.spawn_targets.add(target.removeprefix("self."))
                    if kind == "process":
                        project.process_entry_methods.append(
                            (node.name, target.removeprefix("self."), src, lineno)
                        )
            for name, method in _methods(node).items():
                cls.methods[name] = MethodModel(
                    name, method, ast.get_docstring(method) or ""
                )
            project.classes.setdefault(node.name, cls)

    # Module-level process entries (``Process(target=worker_fn)``): the
    # target may be spawned from inside a method, so scan the whole tree.
    for kind, target, lineno in thread_spawn_targets(src.tree):
        if kind == "process" and not target.startswith("self."):
            project.process_entries.append((module, target, src, lineno))


def _entry_held_fixpoint(project: ProjectModel) -> None:
    """Must-hold entry sets: optimistic top, decreasing intersection."""
    top = project.all_groups()
    for cls in project.classes.values():
        callers: dict[str, list[tuple[str, tuple[str, ...]]]] = {}
        for method in cls.methods.values():
            for call in method.self_calls:
                callers.setdefault(call.callee, []).append((method.name, call.held))
        eligible = {
            name for name in cls.methods
            if _is_private_helper(name)
            and name not in cls.spawn_targets
            and callers.get(name)
        }
        entry: dict[str, frozenset[str]] = {
            name: (top if name in eligible else frozenset()) for name in cls.methods
        }
        changed = True
        while changed:
            changed = False
            for name in eligible:
                meet: frozenset[str] | None = None
                for caller, held in callers[name]:
                    reaches = entry.get(caller, frozenset()) | frozenset(held)
                    meet = reaches if meet is None else (meet & reaches)
                new = meet if meet is not None else frozenset()
                if new != entry[name]:
                    entry[name] = new
                    changed = True
        for name, method in cls.methods.items():
            method.entry_held = entry[name]


def _acquires_fixpoint(project: ProjectModel) -> None:
    """May-acquire closure over self-calls and typed attribute calls."""
    acq: dict[tuple[str, str], frozenset[str]] = {}
    for cls in project.classes.values():
        for name, method in cls.methods.items():
            acq[(cls.name, name)] = frozenset(
                site.group for site in method.acquire_sites
            )
    changed = True
    while changed:
        changed = False
        for cls in project.classes.values():
            for name, method in cls.methods.items():
                new = set(acq[(cls.name, name)])
                for call in method.self_calls:
                    new |= acq.get((cls.name, call.callee), frozenset())
                for ext in method.ext_calls:
                    new |= acq.get((ext.cls, ext.method), frozenset())
                frozen = frozenset(new)
                if frozen != acq[(cls.name, name)]:
                    acq[(cls.name, name)] = frozen
                    changed = True
    for cls in project.classes.values():
        for name, method in cls.methods.items():
            method.acquires_trans = acq[(cls.name, name)]


def _collect_edges(project: ProjectModel) -> None:
    """May-order edges: lexical acquisitions plus call-site closures."""

    def add(held_group: str, acquired: str, note: EdgeNote) -> None:
        if held_group == acquired:
            return
        project.edges.setdefault((held_group, acquired), []).append(note)

    for cls in project.classes.values():
        for method in cls.methods.values():
            where = f"{cls.name}.{method.name}"
            for site in method.acquire_sites:
                note = EdgeNote(cls.src, site.lineno, f"{where}:{site.lineno}")
                for held_group in frozenset(site.held) | method.entry_held:
                    add(held_group, site.group, note)
            for call in method.self_calls:
                target = cls.methods.get(call.callee)
                if target is None:
                    continue
                note = EdgeNote(
                    cls.src, call.lineno,
                    f"{where}:{call.lineno} via {cls.name}.{call.callee}",
                )
                for held_group in frozenset(call.held) | method.entry_held:
                    for acquired in target.acquires_trans:
                        add(held_group, acquired, note)
            for ext in method.ext_calls:
                ext_cls = project.classes.get(ext.cls)
                target = ext_cls.methods.get(ext.method) if ext_cls else None
                if target is None:
                    continue
                note = EdgeNote(
                    cls.src, ext.lineno,
                    f"{where}:{ext.lineno} via {ext.cls}.{ext.method}",
                )
                for held_group in frozenset(ext.held) | method.entry_held:
                    for acquired in target.acquires_trans:
                        add(held_group, acquired, note)


def build_model(ctx: AnalysisContext) -> ProjectModel:
    """The interprocedural lock model for ``ctx`` (cached per context)."""
    project = ProjectModel()
    for src in ctx.files:
        _scan_file(src, project)
    known = set(project.classes)
    for cls in project.classes.values():
        for attr, names in _attr_type_candidates(cls.node).items():
            for name in names:
                if name in known:
                    cls.attr_types[attr] = name
                    break
    for cls in project.classes.values():
        for method in cls.methods.values():
            _MethodWalker(method, cls.locks, cls.name, cls.attr_types).run()
    _entry_held_fixpoint(project)
    _acquires_fixpoint(project)
    _collect_edges(project)
    return project


_MODEL_CACHE: list[tuple[AnalysisContext, ProjectModel]] = []


def _model(ctx: AnalysisContext) -> ProjectModel:
    for cached_ctx, cached in _MODEL_CACHE:
        if cached_ctx is ctx:
            return cached
    model = build_model(ctx)
    del _MODEL_CACHE[:]
    _MODEL_CACHE.append((ctx, model))
    return model


def static_lock_graph(ctx: AnalysisContext) -> dict[str, object]:
    """JSON-ready static lock graph: nodes, edges, provenance notes.

    Node identities match the runtime witness groups
    (:mod:`repro.core.lockorder`), so the tier-1 cross-validation test
    and the CI artifact diff can compare the two graphs directly.
    """
    model = _model(ctx)
    nodes: dict[str, dict[str, object]] = {}
    for cls in sorted(model.classes.values(), key=lambda c: c.name):
        for decl in sorted(cls.locks.values(), key=lambda d: d.attr):
            nodes[cls.group(decl.attr)] = {
                "class": cls.name,
                "attr": decl.attr,
                "kind": decl.kind,
                "indexed": decl.indexed,
                "path": cls.src.rel,
                "line": decl.lineno,
            }
    edges = [
        {
            "from": held_group,
            "to": acquired,
            "notes": sorted({note.text for note in notes}),
        }
        for (held_group, acquired), notes in sorted(model.edges.items())
    ]
    return {"nodes": nodes, "edges": edges}


# ---------------------------------------------------------------------------
# RPR201 — lock-order cycles (static deadlock detection)
# ---------------------------------------------------------------------------
def _reachable(edges: dict[str, set[str]], start: str) -> set[str]:
    seen: set[str] = set()
    stack = [start]
    while stack:
        node = stack.pop()
        for succ in edges.get(node, ()):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def _cycle_path(edges: dict[str, set[str]], start: str) -> list[str]:
    """A concrete ``start -> ... -> start`` walk (start lies on a cycle)."""
    parents: dict[str, str] = {}
    stack = [start]
    while stack:
        node = stack.pop()
        for succ in edges.get(node, ()):
            if succ == start:
                path = [start]
                while node != start:
                    path.append(node)
                    node = parents[node]
                path.append(start)
                return list(reversed(path))
            if succ not in parents:
                parents[succ] = node
                stack.append(succ)
    return [start, start]  # pragma: no cover - caller guarantees a cycle


@rule(
    "RPR201",
    "static lock-order cycle",
    Severity.ERROR,
    "Two threads acquiring the same lock groups in opposite orders can "
    "each hold one lock while blocking on the other — a deadlock that "
    "needs no failing run to exist.  The static acquisition-order graph "
    "(lexical nesting closed over self-calls and typed attribute calls) "
    "must stay acyclic; the REPRO_SANITIZE=1 runtime witness enforces "
    "the same invariant per-interleaving.",
    tags=("concurrency",),
)
def rule_lock_order_cycle(ctx: AnalysisContext) -> Iterator[Finding]:
    model = _model(ctx)
    succ: dict[str, set[str]] = {}
    for (held_group, acquired), _notes in model.edges.items():
        succ.setdefault(held_group, set()).add(acquired)
    reported: set[frozenset[str]] = set()
    for (held_group, acquired), notes in sorted(model.edges.items()):
        if held_group not in _reachable(succ, acquired):
            continue
        cycle = _cycle_path(succ, held_group)
        key = frozenset(cycle)
        if key in reported:
            continue
        reported.add(key)
        legs = []
        for a, b in zip(cycle, cycle[1:]):
            leg_notes = model.edges.get((a, b), [])
            where = leg_notes[0].text if leg_notes else "?"
            legs.append(f"{a} -> {b} at {where}")
        note = notes[0]
        yield _mk(
            "RPR201", note.src, note.lineno, 0,
            f"lock-order cycle {' -> '.join(cycle)}: {'; '.join(legs)}",
        )
    # Lexically nested re-acquisition of one non-reentrant group is a
    # self-deadlock with no second thread required.  Indexed families
    # are excluded: increasing-rank nesting is the sanctioned protocol,
    # which only the runtime witness can check (ranks are dynamic).
    for cls in model.classes.values():
        for method in cls.methods.values():
            for site in method.acquire_sites:
                if site.group not in site.held:
                    continue
                attr = site.group.rsplit(".", 1)[-1]
                decl = cls.locks.get(attr)
                if decl is None or decl.indexed or decl.kind == "rlock":
                    continue
                yield _mk(
                    "RPR201", cls.src, site.lineno, site.col,
                    f"nested acquisition of non-reentrant lock "
                    f"{site.group} in {cls.name}.{method.name} "
                    f"(already held here) self-deadlocks",
                )


# ---------------------------------------------------------------------------
# RPR202 — guarded-elsewhere state accessed with no lock held
# ---------------------------------------------------------------------------
@rule(
    "RPR202",
    "shared state accessed outside its lock",
    Severity.ERROR,
    "An attribute whose writes are lock-protected somewhere but which "
    "other call sites read or write bare is a data race: the bare "
    "access can observe (or publish) torn intermediate state.  Write "
    "sites define the discipline (lockset reasoning) — build-once "
    "attributes whose only writes are deliberately unlocked do not "
    "conscript every reader.  Deliberately racy snapshot reads escape "
    "by saying so in the method docstring (lock/racy/snapshot/stale/"
    "single-thread), mirroring RPR009's convention; lock-free classes "
    "escape via their class docstring.",
    tags=("concurrency",),
)
def rule_unguarded_shared_state(ctx: AnalysisContext) -> Iterator[Finding]:
    model = _model(ctx)
    for cls in sorted(model.classes.values(), key=lambda c: c.name):
        if not cls.locks:
            continue
        class_doc = ast.get_docstring(cls.node) or ""
        if _LOCK_FREE_RE.search(class_doc):
            continue
        sites: dict[str, list[tuple[MethodModel, AttrSite, frozenset[str]]]] = {}
        mutable: set[str] = set()
        for method in cls.methods.values():
            if method.name == "__init__":
                continue
            for site in method.attr_sites:
                if site.attr in cls.locks:
                    continue
                eff = frozenset(site.held) | method.entry_held
                sites.setdefault(site.attr, []).append((method, site, eff))
                if site.write:
                    mutable.add(site.attr)
        for attr in sorted(sites):
            if attr not in mutable:
                continue
            write_guards = sorted(set().union(frozenset(), *(
                eff for _m, s, eff in sites[attr] if s.write
            )))
            read_guards = sorted(set().union(frozenset(), *(
                eff for _m, s, eff in sites[attr] if not s.write
            )))
            if write_guards:
                # Lock-disciplined state: every bare access races the
                # locked writers.
                flagged = sites[attr]
                guards = write_guards
            elif read_guards:
                # Readers lock, writers don't: flag the bare writes
                # (the classic forgotten-lock mutation).
                flagged = [(m, s, eff) for m, s, eff in sites[attr] if s.write]
                guards = read_guards
            else:
                continue
            seen_lines: set[int] = set()
            for method, site, eff in flagged:
                if eff or site.lineno in seen_lines:
                    continue
                if _ESCAPE_RE.search(method.docstring):
                    continue
                seen_lines.add(site.lineno)
                yield _mk(
                    "RPR202", cls.src, site.lineno, site.col,
                    f"{cls.name}.{attr} is guarded by {', '.join(guards)} "
                    f"elsewhere but {'written' if site.write else 'read'} "
                    f"in {method.name} with no lock held",
                )


# ---------------------------------------------------------------------------
# RPR203 — Condition.wait outside a predicate loop
# ---------------------------------------------------------------------------
@rule(
    "RPR203",
    "condition wait without predicate loop",
    Severity.ERROR,
    "Condition.wait returns on spurious wakeups and notify_all storms; "
    "a wait not re-checked inside a while loop proceeds on a predicate "
    "that may already be false again.  wait_for re-checks internally "
    "and is exempt.",
    tags=("concurrency",),
)
def rule_wait_needs_loop(ctx: AnalysisContext) -> Iterator[Finding]:
    model = _model(ctx)
    for cls in sorted(model.classes.values(), key=lambda c: c.name):
        for method in cls.methods.values():
            for site in method.wait_sites:
                if site.in_while:
                    continue
                yield _mk(
                    "RPR203", cls.src, site.lineno, site.col,
                    f"{site.group}.wait() in {cls.name}.{method.name} is not "
                    f"inside a while loop re-checking its predicate; use "
                    f"'while not <pred>: cond.wait()' or cond.wait_for()",
                )


# ---------------------------------------------------------------------------
# RPR204 — generation bumps not atomic with the mutation they version
# ---------------------------------------------------------------------------
@rule(
    "RPR204",
    "generation counter not atomic with its mutation",
    Severity.ERROR,
    "The result cache keys invalidation on shard generation counters: a "
    "bump outside the shard lock, or in a different locked region than "
    "the write it versions, lets a reader cache pre-write state under a "
    "post-write generation (a permanently stale entry).",
    tags=("concurrency",),
)
def rule_generation_atomicity(ctx: AnalysisContext) -> Iterator[Finding]:
    model = _model(ctx)
    for cls in sorted(model.classes.values(), key=lambda c: c.name):
        if not cls.locks:
            continue
        for method in cls.methods.values():
            if method.name == "__init__":
                continue
            for site in method.attr_sites:
                if not site.write or not _GENERATION_RE.search(site.attr):
                    continue
                eff = frozenset(site.held) | method.entry_held
                if not eff:
                    yield _mk(
                        "RPR204", cls.src, site.lineno, site.col,
                        f"generation counter {cls.name}.{site.attr} updated "
                        f"in {method.name} with no lock held; bump it inside "
                        f"the lock that guards the mutation it versions",
                    )
                    continue
                if site.held:
                    atomic = site.co_mutation
                else:
                    atomic = _has_co_mutation(method.node.body, site.attr)
                if not atomic:
                    yield _mk(
                        "RPR204", cls.src, site.lineno, site.col,
                        f"generation counter {cls.name}.{site.attr} bumped in "
                        f"{method.name} without the mutation it versions in "
                        f"the same locked region; readers can pair pre-write "
                        f"state with a post-write generation",
                    )


# ---------------------------------------------------------------------------
# RPR205 — segment lifecycle reachable from a worker-process role
# ---------------------------------------------------------------------------
def _segment_ops(node: _FuncDef) -> Iterator[tuple[int, int, str]]:
    """(line, col, op) for segment create/unlink operations in ``node``."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        if _creates_segment(sub):
            yield sub.lineno, sub.col_offset, "creation (SharedMemory(create=True))"
            continue
        leaf = _leaf_name(sub.func)
        if leaf in _SEGMENT_LIFECYCLE_FNS:
            yield sub.lineno, sub.col_offset, f"lifecycle call {leaf}()"
            continue
        if isinstance(sub.func, ast.Attribute) and sub.func.attr == "unlink":
            recv = _dotted_name(sub.func.value) or _leaf_name(sub.func.value) or ""
            if _SEGMENT_NAME_RE.search(recv):
                yield sub.lineno, sub.col_offset, f"unlink ({recv}.unlink())"


def _rpr205_successors(
    project: ProjectModel, module: str, cls_name: str | None, node: _FuncDef,
) -> Iterator[tuple[str, str | None, str]]:
    """Callees of ``node`` as (module, class-or-None, name) keys."""
    imports = project.module_imports.get(module, {})
    funcs = project.module_funcs.get(module, {})
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        if isinstance(sub.func, ast.Name):
            name = sub.func.id
            if name in funcs:
                yield module, None, name
            elif name in imports:
                target_module, target_name = imports[name]
                if target_name in project.module_funcs.get(target_module, {}):
                    yield target_module, None, target_name
        elif isinstance(sub.func, ast.Attribute) and cls_name is not None:
            recv = sub.func.value
            if isinstance(recv, ast.Name) and recv.id == "self":
                owner = project.classes.get(cls_name)
                if owner is not None and sub.func.attr in owner.methods:
                    yield module, cls_name, sub.func.attr


@rule(
    "RPR205",
    "segment lifecycle crosses process roles",
    Severity.ERROR,
    "Exactly one process role may own a shared-memory segment's "
    "lifecycle: if worker-reachable code can create or unlink segments, "
    "a worker crash mid-operation leaks the segment or yanks it from "
    "under sibling processes.  Workers attach by name and close; the "
    "parent creates and unlinks (the cross-module extension of "
    "RPR010's single-owner check).",
    tags=("concurrency", "shared-memory"),
)
def rule_worker_segment_lifecycle(ctx: AnalysisContext) -> Iterator[Finding]:
    model = _model(ctx)
    entries: list[tuple[str, str | None, str, str]] = []
    for module, fname, _src, _line in model.process_entries:
        entries.append((module, None, fname, fname))
    for cls_name, mname, src, _line in model.process_entry_methods:
        entries.append((_module_name(src), cls_name, mname, f"{cls_name}.{mname}"))
    reported: set[tuple[str, int]] = set()
    for module, cls_name, fname, entry_label in entries:
        work = [(module, cls_name, fname)]
        visited: set[tuple[str, str | None, str]] = set()
        while work:
            mod, owner, name = work.pop()
            if (mod, owner, name) in visited:
                continue
            visited.add((mod, owner, name))
            if owner is not None:
                owner_cls = model.classes.get(owner)
                if owner_cls is None or name not in owner_cls.methods:
                    continue
                src, node = owner_cls.src, owner_cls.methods[name].node
            else:
                entry_fn = model.module_funcs.get(mod, {}).get(name)
                if entry_fn is None:
                    continue
                src, node = entry_fn
            for line, col, op in _segment_ops(node):
                if (src.rel, line) in reported:
                    continue
                reported.add((src.rel, line))
                yield _mk(
                    "RPR205", src, line, col,
                    f"shared-memory segment {op} is reachable from "
                    f"worker-process entry point {entry_label!r}; segment "
                    f"create/unlink must stay with the owning parent role "
                    f"(workers attach by name and close)",
                )
            work.extend(_rpr205_successors(model, mod, owner, node))
