"""CLI for the contract linter: ``python -m repro.analysis``.

Examples::

    python -m repro.analysis                      # lint src/repro, text report
    python -m repro.analysis --format json        # machine-readable report
    python -m repro.analysis --output report.json # JSON artifact + text report
    python -m repro.analysis --rules RPR003,RPR004 path/to/file.py
    python -m repro.analysis --select RPR1          # numeric-safety family only
    python -m repro.analysis --ignore RPR101,RPR104 # everything except these
    python -m repro.analysis --baseline old.json    # fail only on NEW findings
    python -m repro.analysis --lock-graph graph.json  # dump the static lock graph
    python -m repro.analysis --list-rules

Exit status is 0 when no unsuppressed finding remains, 1 otherwise.
With ``--baseline`` the gate is ratcheted instead: findings already
present in the baseline report are tolerated (printed, but not fatal)
and only findings *absent from the baseline* make the exit status
nonzero — the adoption path for turning a new rule family on against a
codebase with known, not-yet-fixed violations.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.concurrency import static_lock_graph
from repro.analysis.engine import build_context, render_json, render_text, run_analysis
from repro.analysis.findings import Finding
from repro.analysis.rules import RULE_METADATA, RULES


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based contract linter for the learned-index library.",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyse (default: src/repro under --root); "
             "explicit paths disable the live-registry rules RPR001/RPR002",
    )
    parser.add_argument(
        "--root", type=Path, default=Path.cwd(),
        help="repository root (default: current directory)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="also write the JSON report to this file (CI artifact)",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids or prefixes to run "
             "(e.g. --select RPR1 runs the whole numeric-safety family)",
    )
    parser.add_argument(
        "--ignore", default=None,
        help="comma-separated rule ids or prefixes to skip",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="JSON report from a previous run (--output/--format json); "
             "exit nonzero only on findings not present in it",
    )
    parser.add_argument(
        "--lock-graph", type=Path, default=None,
        help="write the static lock-acquisition graph (the RPR2xx model) "
             "to this file as JSON",
    )
    parser.add_argument(
        "--no-registry", action="store_true",
        help="skip the live-registry rules even on a full-repo run",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    return parser.parse_args(argv)


def _expand_rule_patterns(spec: str) -> set[str] | None:
    """Expand comma-separated ids/prefixes against the registered rules.

    ``RPR101`` selects that rule; ``RPR1`` selects the whole RPR1xx
    family.  Returns ``None`` (after printing to stderr) when a pattern
    matches nothing — a misspelled id should fail loudly, not silently
    lint with the wrong rule set.
    """
    expanded: set[str] = set()
    for pattern in (p.strip() for p in spec.split(",")):
        if not pattern:
            continue
        matches = {rule_id for rule_id in RULES if rule_id.startswith(pattern)}
        if not matches:
            print(f"no rule matches pattern: {pattern}", file=sys.stderr)
            return None
        expanded |= matches
    return expanded


def _finding_key(payload: dict[str, object]) -> tuple[object, ...]:
    """Stable identity of one finding across runs (the baseline unit)."""
    return tuple(payload.get(k) for k in ("rule", "path", "line", "col", "message"))


def _load_baseline(path: Path) -> set[tuple[object, ...]] | None:
    """Finding identities from a previous ``--format json`` report."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        findings = payload["findings"]
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot read baseline {path}: {exc!r}", file=sys.stderr)
        return None
    return {_finding_key(f) for f in findings}


def _apply_baseline(findings: list[Finding],
                    baseline: set[tuple[object, ...]]) -> int:
    """Ratcheted exit code: nonzero only for findings not in the baseline."""
    new = [f for f in findings if _finding_key(f.to_dict()) not in baseline]
    stale = baseline - {_finding_key(f.to_dict()) for f in findings}
    print(
        f"baseline: {len(new)} new finding(s), "
        f"{len(findings) - len(new)} baselined, {len(stale)} resolved."
    )
    return 1 if new else 0


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv)

    if args.list_rules:
        for rule_id, meta in sorted(RULE_METADATA.items()):
            print(f"{rule_id}  {meta.name:28s} {meta.severity.value:8s} {meta.rationale}")
        return 0

    rule_ids: list[str] | None = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rule_ids if r not in RULES]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    if args.select:
        selected = _expand_rule_patterns(args.select)
        if selected is None:
            return 2
        rule_ids = sorted(set(rule_ids or []) | selected) if args.rules \
            else sorted(selected)
    if args.ignore:
        ignored = _expand_rule_patterns(args.ignore)
        if ignored is None:
            return 2
        remaining = set(rule_ids if rule_ids is not None else RULES) - ignored
        if not remaining:
            print("--ignore removed every rule", file=sys.stderr)
            return 2
        rule_ids = sorted(remaining)

    paths = list(args.paths) or None
    ctx = build_context(
        args.root.resolve(),
        paths=paths,
        use_registry=not args.no_registry,
    )
    baseline: set[tuple[object, ...]] | None = None
    if args.baseline is not None:
        baseline = _load_baseline(args.baseline)
        if baseline is None:
            return 2

    result = run_analysis(ctx, rule_ids)

    if args.output is not None:
        args.output.write_text(render_json(result) + "\n", encoding="utf-8")
    if args.lock_graph is not None:
        graph = static_lock_graph(ctx)
        args.lock_graph.write_text(
            json.dumps(graph, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    print(render_json(result) if args.format == "json" else render_text(result))
    if baseline is not None:
        return _apply_baseline(result.findings, baseline)
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
