"""CLI for the contract linter: ``python -m repro.analysis``.

Examples::

    python -m repro.analysis                      # lint src/repro, text report
    python -m repro.analysis --format json        # machine-readable report
    python -m repro.analysis --output report.json # JSON artifact + text report
    python -m repro.analysis --rules RPR003,RPR004 path/to/file.py
    python -m repro.analysis --list-rules

Exit status is 0 when no unsuppressed finding remains, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.engine import build_context, render_json, render_text, run_analysis
from repro.analysis.rules import RULE_METADATA, RULES


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based contract linter for the learned-index library.",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyse (default: src/repro under --root); "
             "explicit paths disable the live-registry rules RPR001/RPR002",
    )
    parser.add_argument(
        "--root", type=Path, default=Path.cwd(),
        help="repository root (default: current directory)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="also write the JSON report to this file (CI artifact)",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--no-registry", action="store_true",
        help="skip the live-registry rules even on a full-repo run",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv)

    if args.list_rules:
        for rule_id, meta in sorted(RULE_METADATA.items()):
            print(f"{rule_id}  {meta.name:28s} {meta.severity.value:8s} {meta.rationale}")
        return 0

    rule_ids: list[str] | None = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rule_ids if r not in RULES]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    paths = list(args.paths) or None
    ctx = build_context(
        args.root.resolve(),
        paths=paths,
        use_registry=not args.no_registry,
    )
    result = run_analysis(ctx, rule_ids)

    if args.output is not None:
        args.output.write_text(render_json(result) + "\n", encoding="utf-8")
    print(render_json(result) if args.format == "json" else render_text(result))
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
