"""Finding and rule metadata types for the contract linter.

A :class:`Finding` is one rule violation anchored to a ``file:line``
position; the engine renders findings either as human-readable text
(``path:line:col: RPR0xx severity: message``) or as a machine-readable
JSON report for CI artifacts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Severity", "Finding", "RuleMeta"]


class Severity(enum.Enum):
    """How bad a violation is; both levels gate CI."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a ``file:line`` position."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """Human-readable one-liner, ``path:line:col: RPR0xx severity: msg``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.severity.value}: {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable representation for the ``--format json`` report."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class RuleMeta:
    """Stable identity and documentation of one lint rule."""

    rule_id: str
    name: str
    severity: Severity
    rationale: str
    tags: tuple[str, ...] = field(default=())
