"""Live-registry snapshot used by the contract rules.

The AST rules (RPR003-RPR008) are purely syntactic, but the contract
rules (RPR001/RPR002) need ground truth only the *live* package can
give: which classes are concrete, what abstract surface their
``core.interfaces`` base demands, which classes the survey registry
(``core.registry``) claims as implemented, and which classes the bench
factory dicts — the ones the batch-parity suite parametrizes over —
actually construct.  This module imports the package once and distils
that into plain dataclasses so rules (and rule tests, which build
synthetic views) never touch ``importlib`` themselves.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from dataclasses import dataclass, field

__all__ = ["IndexClassInfo", "RegistryView", "build_registry_view", "BATCH_METHODS"]

#: Batch-API methods whose overrides must be covered by the parity suite,
#: keyed to the factory dict the parity tests parametrize over.
BATCH_METHODS: dict[str, str] = {
    "lookup_batch": "ONE_DIM_FACTORIES",
    "contains_batch": "ONE_DIM_FACTORIES",
    "point_query_batch": "MULTI_DIM_FACTORIES",
    "range_query_batch": "MULTI_DIM_FACTORIES",
}

#: Packages holding concrete index implementations.
_IMPL_PACKAGES = ("repro.onedim", "repro.multidim", "repro.baselines")


@dataclass(frozen=True)
class IndexClassInfo:
    """Live facts about one concrete (or would-be concrete) index class."""

    qualname: str                       # "repro.onedim.rmi.RMIIndex"
    name: str                           # "RMIIndex"
    module: str                         # "repro.onedim.rmi"
    filename: str                       # absolute source path
    lineno: int
    family: str                         # interface base: OneDimIndex, ...
    missing_abstract: tuple[str, ...]   # unimplemented abstract methods
    batch_overrides: tuple[str, ...]    # batch methods defined on the class
    in_registry: bool                   # an IndexInfo.implemented target
    factory_names: tuple[str, ...]      # keys in the bench factory dicts


@dataclass
class RegistryView:
    """Everything the contract rules need from the live package."""

    classes: list[IndexClassInfo] = field(default_factory=list)
    #: factory-dict name -> class qualnames reachable from it.
    factory_members: dict[str, set[str]] = field(default_factory=dict)


def _interface_family(cls: type, bases: dict[str, type]) -> str | None:
    """Innermost ``core.interfaces`` family ``cls`` belongs to, if any."""
    for name in ("MultiDimIndex", "OneDimIndex", "MembershipFilter"):
        if issubclass(cls, bases[name]):
            return name
    return None


def build_registry_view() -> RegistryView:
    """Import the package and snapshot its contract-relevant state."""
    from repro.bench import runner
    from repro.core import interfaces, registry

    bases = {
        "OneDimIndex": interfaces.OneDimIndex,
        "MultiDimIndex": interfaces.MultiDimIndex,
        "MembershipFilter": interfaces.MembershipFilter,
    }
    base_classes = tuple(bases.values())

    implemented = {info.implemented for info in registry.REGISTRY if info.implemented}

    factory_dicts: dict[str, dict[str, object]] = {}
    for dict_name in (
        "ONE_DIM_FACTORIES",
        "MUTABLE_ONE_DIM_FACTORIES",
        "MULTI_DIM_FACTORIES",
        "MUTABLE_MULTI_DIM_FACTORIES",
        "FILTER_FACTORIES",
    ):
        factory_dicts[dict_name] = getattr(runner, dict_name, {})

    # name under which each class is constructible, per factory dict.
    factory_names: dict[str, list[str]] = {}
    factory_members: dict[str, set[str]] = {name: set() for name in factory_dicts}
    for dict_name, factories in factory_dicts.items():
        for key, factory in factories.items():
            cls = factory if inspect.isclass(factory) else type(factory())
            qual = f"{cls.__module__}.{cls.__qualname__}"
            factory_names.setdefault(qual, []).append(key)
            factory_members[dict_name].add(qual)

    view = RegistryView(factory_members=factory_members)
    for pkg_name in _IMPL_PACKAGES:
        pkg = importlib.import_module(pkg_name)
        for mod_info in pkgutil.iter_modules(pkg.__path__):
            module = importlib.import_module(f"{pkg_name}.{mod_info.name}")
            for attr, cls in sorted(vars(module).items()):
                if not inspect.isclass(cls) or cls.__module__ != module.__name__:
                    continue
                if not issubclass(cls, base_classes) or attr.startswith("_"):
                    continue
                family = _interface_family(cls, bases)
                if family is None:  # pragma: no cover - unreachable
                    continue
                qual = f"{cls.__module__}.{cls.__qualname__}"
                overrides = tuple(
                    meth for meth in BATCH_METHODS if meth in vars(cls)
                )
                try:
                    _, lineno = inspect.getsourcelines(cls)
                except OSError:  # pragma: no cover - source always on disk here
                    lineno = 1
                view.classes.append(
                    IndexClassInfo(
                        qualname=qual,
                        name=attr,
                        module=cls.__module__,
                        filename=inspect.getfile(cls),
                        lineno=lineno,
                        family=family,
                        missing_abstract=tuple(
                            sorted(getattr(cls, "__abstractmethods__", ()))
                        ),
                        batch_overrides=overrides,
                        in_registry=qual in implemented,
                        factory_names=tuple(factory_names.get(qual, ())),
                    )
                )
    return view
