"""Parsed source files and ``# lint: disable=`` suppression comments.

Suppressions are per-rule and per-line, mirroring the conventions of
flake8/ruff ``noqa`` comments but with an explicit rule list so nothing
can be silenced wholesale:

* ``x = round(y)  # lint: disable=RPR003 -- prediction clamp, not routing``
  silences RPR003 on that line only;
* a disable comment alone on a line silences the listed rules on the
  *next* line (for statements too long to carry a trailing comment).

The optional ``--`` suffix carries the human justification; the linter
does not parse it but the review convention (see README) requires it.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["SourceFile", "SuppressionDirective", "parse_directives",
           "parse_suppressions"]

_DISABLE_RE = re.compile(r"#\s*lint:\s*disable=([A-Z0-9, ]+)")


@dataclass(frozen=True)
class SuppressionDirective:
    """One ``# lint: disable=`` comment and the lines it covers.

    Kept alongside the flattened line->rules map so the stale-suppression
    audit (RPR012) can ask, per *directive*, whether it still silences
    anything — a question the flattened map cannot answer once two
    directives overlap.
    """

    line: int                 # line carrying the comment
    rules: tuple[str, ...]    # rule ids it names, sorted
    covered: tuple[int, ...]  # lines it suppresses (own line, maybe next)


def parse_directives(text: str) -> list[SuppressionDirective]:
    """All suppression directives in ``text``, with coverage.

    A trailing comment covers its own line; a comment alone on a line
    covers the following line (and its own, harmlessly).
    """
    directives: list[SuppressionDirective] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return directives
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DISABLE_RE.search(tok.string)
        if not match:
            continue
        rules = sorted({r.strip() for r in match.group(1).split(",") if r.strip()})
        line = tok.start[0]
        own_line = tok.line[: tok.start[1]].strip() == ""
        covered = (line, line + 1) if own_line else (line,)
        directives.append(
            SuppressionDirective(line=line, rules=tuple(rules), covered=covered)
        )
    return directives


def parse_suppressions(text: str) -> dict[int, set[str]]:
    """Map line number -> rule ids suppressed on that line."""
    suppressed: dict[int, set[str]] = {}
    for directive in parse_directives(text):
        for line in directive.covered:
            suppressed.setdefault(line, set()).update(directive.rules)
    return suppressed


@dataclass
class SourceFile:
    """One parsed Python file under analysis."""

    path: Path
    rel: str
    text: str
    tree: ast.Module | None
    syntax_error: str | None = None
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    directives: list[SuppressionDirective] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            rel = str(path)
        tree: ast.Module | None = None
        error: str | None = None
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            error = f"{exc.msg} (line {exc.lineno})"
        directives = parse_directives(text)
        suppressions: dict[int, set[str]] = {}
        for directive in directives:
            for line in directive.covered:
                suppressions.setdefault(line, set()).update(directive.rules)
        return cls(
            path=path,
            rel=rel,
            text=text,
            tree=tree,
            syntax_error=error,
            suppressions=suppressions,
            directives=directives,
        )

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is disabled on ``line`` of this file."""
        return rule_id in self.suppressions.get(line, ())
