"""Intraprocedural numeric dataflow over the stdlib AST.

The RPR1xx rules need to know, at every ``astype``/``searchsorted``/
shift site in the kernel modules, what *kind* of number flows in
(integer vs. float), which numpy dtype carries it, how large it can be,
and whether it can be negative.  This module computes that with a small
abstract interpreter:

* The abstract domain is :class:`AbstractValue` — ``(kind, dtype,
  max_abs, maybe_negative)`` where ``max_abs`` is an upper bound on the
  magnitude of any value the expression can take (``None`` = unknown).
  ``bit_width`` derives the familiar "bits needed" view from it.
* Constants are exact; arithmetic, shifts, and masks propagate bounds
  (``x & mask`` caps at the mask, ``x << k`` multiplies by ``2**k``,
  ``+`` adds bounds, ``*`` multiplies them).
* A small signature database records what the repository's own kernel
  primitives return — e.g. ``zencode_array``/``interleave_array`` yield
  int64 codes of at most :data:`~repro.curves.capacity.CODE_BUDGET_BITS`
  bits, ``quantize`` yields lattice coordinates of at most 31 bits —
  so facts cross function boundaries without interprocedural analysis.
* Parameter guards (``if bits < 1 or bits > 31: raise``) narrow the
  interval of the guarded parameter for the rest of the function.
* :func:`analyze_module` runs every function; methods get a second pass
  with a class-level attribute environment joined over all
  ``self.attr = ...`` assignments, so ``build`` artefacts keep their
  inferred dtypes inside the query methods.

The analysis is deliberately *under*-approximate in one direction: a
rule consuming these facts should only fire on **provable** violations
(known bound exceeding a capacity), never on unknowns — the
``REPRO_SANITIZE`` runtime checks cover what static bounds cannot.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Iterator

__all__ = [
    "AbstractValue",
    "TOP",
    "FunctionFacts",
    "ModuleFacts",
    "analyze_module",
    "bit_width",
    "thread_spawn_targets",
    "lock_aliases",
]

#: Upper bound (bits) assumed for array positions/sizes (searchsorted,
#: argsort, arange, len): far below the 2^53 float64-exact limit.
POSITION_BITS = 48

#: Attribute names whose values are known to be Python floats across the
#: repository (PLA :class:`~repro.models.pla.Segment` fields).
KNOWN_FLOAT_ATTRS = {"key", "slope", "anchor_pos", "intercept"}

#: Attribute names known to be small non-negative ints (array geometry,
#: segment slice bounds).
KNOWN_INT_ATTRS = {"size", "first", "last", "ndim"}

_INT_DTYPES = {"int64", "uint64", "int32", "int16", "int8",
               "uint32", "uint16", "uint8", "intp", "pyint"}
_FLOAT_DTYPES = {"float64", "float32", "pyfloat"}


@dataclass(frozen=True)
class AbstractValue:
    """One point of the numeric lattice.

    Attributes:
        kind: ``"int"``, ``"float"``, ``"bool"``, ``"other"`` or
            ``"unknown"``.
        dtype: numpy dtype name, ``"pyint"``/``"pyfloat"`` for Python
            scalars, or ``None`` when unknown.
        max_abs: upper bound on the magnitude of any value (``None`` =
            unbounded/unknown).
        maybe_negative: whether a negative value is possible.
    """

    kind: str = "unknown"
    dtype: str | None = None
    max_abs: int | None = None
    maybe_negative: bool = True

    @property
    def is_int(self) -> bool:
        return self.kind == "int"

    @property
    def is_float(self) -> bool:
        return self.kind == "float"


TOP = AbstractValue()


def bit_width(value: AbstractValue) -> int | None:
    """Bits needed for the magnitude bound, or ``None`` when unknown."""
    if value.max_abs is None:
        return None
    return int(value.max_abs).bit_length()


def _int(max_abs: int | None, dtype: str = "pyint",
         maybe_negative: bool = False) -> AbstractValue:
    return AbstractValue("int", dtype, max_abs, maybe_negative)


def _float(dtype: str = "float64") -> AbstractValue:
    return AbstractValue("float", dtype, None, True)


def join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound of two abstract values."""
    if a == b:
        return a
    if a.kind != b.kind:
        return TOP
    dtype = a.dtype if a.dtype == b.dtype else None
    if a.max_abs is None or b.max_abs is None:
        max_abs = None
    else:
        max_abs = max(a.max_abs, b.max_abs)
    return AbstractValue(a.kind, dtype, max_abs,
                         a.maybe_negative or b.maybe_negative)


# -- signature database -------------------------------------------------------

#: Return values of the repository's kernel primitives, by callee base name.
_SIGNATURES: dict[str, AbstractValue] = {
    # Curve encoders: int64 codes within the 62-bit budget.
    "zencode_array": _int((1 << 62) - 1, "int64"),
    "interleave_array": _int((1 << 62) - 1, "int64"),
    "hilbert_encode_array": _int((1 << 62) - 1, "int64"),
    # Lattice coordinates: at most 31 bits per dimension.
    "quantize": _int((1 << 31) - 1, "int64"),
    "deinterleave_array": _int((1 << 31) - 1, "int64"),
    # Scalar encoders return Python ints (possibly beyond 64 bits).
    "zencode": _int(None, "pyint"),
    "interleave": _int(None, "pyint"),
    "hilbert_encode": _int(None, "pyint"),
    # Positions and sizes.
    "searchsorted": _int((1 << POSITION_BITS) - 1, "int64"),
    "argsort": _int((1 << POSITION_BITS) - 1, "int64"),
    "arange": _int((1 << POSITION_BITS) - 1, "int64"),
    "len": _int((1 << POSITION_BITS) - 1, "pyint"),
    "lower_bound": _int((1 << POSITION_BITS) - 1, "pyint"),
    "bounded_binary_search": _int((1 << POSITION_BITS) - 1, "pyint"),
    "exponential_search": _int((1 << POSITION_BITS) - 1, "pyint"),
    "bounded_search_batch": _int((1 << POSITION_BITS) - 1, "int64"),
    # Sanctioned guarded cast (repro.core.numeric).
    "exact_float64": _float(),
    "dequantize": _float(),
    "segment_stream": AbstractValue("other"),
    "as_object_array": AbstractValue("other"),
}

#: numpy float-producing calls (result dtype float64 unless stated).
_FLOAT_CALLS = {"float64", "float32", "floor", "ceil", "rint", "sqrt",
                "log", "log2", "exp", "mean", "interp", "linspace"}

_DTYPE_NAMES = {
    "int64": "int64", "uint64": "uint64", "int32": "int32",
    "uint32": "uint32", "int16": "int16", "uint16": "uint16",
    "int8": "int8", "uint8": "uint8", "intp": "intp",
    "float64": "float64", "float32": "float32",
    "int": "pyint", "float": "pyfloat", "bool": "bool", "object": "object",
}


def _dtype_from_node(node: ast.expr | None) -> str | None:
    """Parse a dtype expression: ``np.int64``, ``int``, ``"int64"``..."""
    if node is None:
        return None
    if isinstance(node, ast.Attribute):
        return _DTYPE_NAMES.get(node.attr)
    if isinstance(node, ast.Name):
        return _DTYPE_NAMES.get(node.id)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _DTYPE_NAMES.get(node.value)
    return None


def _value_for_dtype(dtype: str | None, base: AbstractValue) -> AbstractValue:
    """Abstract value after casting ``base`` to ``dtype``."""
    if dtype is None:
        return TOP
    if dtype in _FLOAT_DTYPES:
        return AbstractValue("float", dtype, None, True)
    if dtype in _INT_DTYPES:
        max_abs = base.max_abs if base.is_int else None
        neg = base.maybe_negative if base.is_int else not dtype.startswith("u")
        return AbstractValue("int", dtype, max_abs, neg)
    if dtype == "bool":
        return AbstractValue("bool", "bool", 1, False)
    return AbstractValue("other", dtype, None, True)


def _callee_name(func: ast.expr) -> str | None:
    """Base name of a call target: ``np.searchsorted`` -> ``searchsorted``."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


# -- module-level constant environment ---------------------------------------


@dataclass
class SpreadTable:
    """A magic-mask spreading table: per-dimension input masks."""

    masks: dict[int, int] = field(default_factory=dict)

    def joined_mask(self) -> int | None:
        return max(self.masks.values()) if self.masks else None


def _const_int(node: ast.expr) -> int | None:
    """Evaluate an int constant, unwrapping ``np.uint64(...)`` wrappers."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.Call) and len(node.args) == 1:
        name = _callee_name(node.func)
        if name in _INT_DTYPES:
            return _const_int(node.args[0])
    if isinstance(node, ast.BinOp):
        left = _const_int(node.left)
        right = _const_int(node.right)
        if left is None or right is None:
            return None
        try:
            if isinstance(node.op, ast.LShift):
                return left << right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.Pow):
                return left ** right
        except (OverflowError, ValueError):
            return None
    return None


def parse_spread_table(node: ast.Assign) -> tuple[str, SpreadTable] | None:
    """Recognise module-level ``{d: ((steps...), in_mask)}`` mask tables."""
    if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
        return None
    if not isinstance(node.value, ast.Dict):
        return None
    table = SpreadTable()
    for key, value in zip(node.value.keys, node.value.values):
        if key is None:
            return None
        dims = _const_int(key)
        if dims is None or not isinstance(value, ast.Tuple) or len(value.elts) != 2:
            return None
        mask = _const_int(value.elts[1])
        if mask is None:
            return None
        table.masks[dims] = mask
    if not table.masks:
        return None
    return node.targets[0].id, table


# -- per-function results ------------------------------------------------------


@dataclass
class FunctionFacts:
    """Everything a rule needs about one analyzed function."""

    node: ast.FunctionDef
    qualname: str
    #: Abstract value of every evaluated expression, by ``id(node)``.
    values: dict[int, AbstractValue] = field(default_factory=dict)
    #: Call base names appearing anywhere in the body.
    called_names: set[str] = field(default_factory=set)
    #: Whether the function compares something against 2^53 (or references
    #: the FLOAT64_EXACT constants): an explicit magnitude guard.
    has_float64_guard: bool = False
    #: Whether the function mentions the shared code-budget helpers or an
    #: inline `* bits ... 62` comparison.
    has_budget_guard: bool = False

    def value_of(self, node: ast.expr) -> AbstractValue:
        return self.values.get(id(node), TOP)


@dataclass
class ModuleFacts:
    """Dataflow facts for every function in one module."""

    functions: list[FunctionFacts] = field(default_factory=list)
    spread_tables: dict[str, SpreadTable] = field(default_factory=dict)
    #: Module-level spread-table AST nodes (for capacity rules).
    spread_assigns: list[ast.Assign] = field(default_factory=list)


# -- the interpreter ----------------------------------------------------------


class _Interpreter:
    """Walks one function body, producing :class:`FunctionFacts`."""

    def __init__(self, facts: FunctionFacts, module: ModuleFacts,
                 attr_env: dict[str, AbstractValue],
                 attr_sink: dict[str, AbstractValue] | None) -> None:
        self.facts = facts
        self.module = module
        self.env: dict[str, AbstractValue] = {}
        #: class attribute facts visible as ``self.<name>``.
        self.attr_env = dict(attr_env)
        #: when not None, ``self.<name> = ...`` assignments are collected.
        self.attr_sink = attr_sink

    # -- statements -----------------------------------------------------------

    def run(self) -> None:
        self._seed_params()
        self._apply_param_guards()
        self._scan_guards()
        self._exec_body(self.facts.node.body)

    def _seed_params(self) -> None:
        args = self.facts.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            self.env[arg.arg] = TOP

    def _apply_param_guards(self) -> None:
        """Narrow parameters validated by early ``if ...: raise`` guards."""
        for stmt in self.facts.node.body:
            if not isinstance(stmt, ast.If):
                continue
            if not any(isinstance(s, ast.Raise) for s in stmt.body):
                continue
            for name, bound in _guard_bounds(stmt.test):
                if name in self.env:
                    self.env[name] = _int(bound, "pyint")

    def _scan_guards(self) -> None:
        """Record guard-style facts visible anywhere in the function."""
        for node in ast.walk(self.facts.node):
            if isinstance(node, ast.Call):
                name = _callee_name(node.func)
                if name:
                    self.facts.called_names.add(name)
                    if name in ("require_code_budget", "fits_code_budget"):
                        self.facts.has_budget_guard = True
                    if name == "exact_float64":
                        self.facts.has_float64_guard = True
            elif isinstance(node, ast.Constant) and node.value == (1 << 53):
                self.facts.has_float64_guard = True
            elif isinstance(node, (ast.Attribute, ast.Name)):
                label = node.attr if isinstance(node, ast.Attribute) else node.id
                if label.startswith("FLOAT64_EXACT"):
                    self.facts.has_float64_guard = True
            elif isinstance(node, ast.Compare):
                if _mentions_budget_compare(node):
                    self.facts.has_budget_guard = True
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow):
                base = _const_int(node.left)
                exp = _const_int(node.right)
                if base == 2 and exp == 53:
                    self.facts.has_float64_guard = True

    def _exec_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, value, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = self._eval(stmt.value)
            self._assign(stmt.target, value, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            left = self._eval(stmt.target)
            right = self._eval(stmt.value)
            combined = self._binop_value(stmt.op, left, right, stmt)
            self._assign(stmt.target, combined, None)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            before = dict(self.env)
            self._exec_body(stmt.body)
            after_body = self.env
            self.env = before
            self._exec_body(stmt.orelse)
            self._join_envs(after_body)
        elif isinstance(stmt, (ast.For, ast.While)):
            if isinstance(stmt, ast.For):
                self._eval(stmt.iter)
                self._assign(stmt.target, self._loop_target_value(stmt.iter), None)
            else:
                self._eval(stmt.test)
            self._exec_body(stmt.body)
            self._exec_body(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(item.context_expr)
            self._exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_body(stmt.body)
            for handler in stmt.handlers:
                self._exec_body(handler.body)
            self._exec_body(stmt.orelse)
            self._exec_body(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        # Nested defs/classes are analyzed separately; ignore here.

    def _join_envs(self, other: dict[str, AbstractValue]) -> None:
        for name, value in other.items():
            if name in self.env:
                self.env[name] = join(self.env[name], value)
            else:
                self.env[name] = value

    def _loop_target_value(self, iterator: ast.expr) -> AbstractValue:
        """Abstract value of a for-loop target."""
        if isinstance(iterator, ast.Call) and _callee_name(iterator.func) == "range":
            bounds = [self._eval(a) for a in iterator.args]
            if bounds and all(b.is_int and b.max_abs is not None for b in bounds):
                return _int(max(b.max_abs for b in bounds
                                if b.max_abs is not None), "pyint")
            return _int(None, "pyint")
        base = self._eval(iterator)
        if base.kind in ("int", "float"):
            return base
        return TOP

    def _assign(self, target: ast.expr, value: AbstractValue,
                source: ast.expr | None) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and target.value.id == "self":
            self.attr_env[target.attr] = value
            if self.attr_sink is not None:
                if target.attr in self.attr_sink:
                    self.attr_sink[target.attr] = join(
                        self.attr_sink[target.attr], value)
                else:
                    self.attr_sink[target.attr] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            spread = self._spread_unpack(source)
            if spread is not None and len(target.elts) == 2:
                first, second = target.elts
                if isinstance(first, ast.Name):
                    self.env[first.id] = AbstractValue("other")
                if isinstance(second, ast.Name):
                    self.env[second.id] = spread
                return
            for elt in target.elts:
                self._assign(elt, TOP, None)
        elif isinstance(target, ast.Subscript):
            self._eval(target.value)

    def _spread_unpack(self, source: ast.expr | None) -> AbstractValue | None:
        """``steps, in_mask = _SPREAD_STEPS[d]`` -> mask bound for in_mask."""
        if not isinstance(source, ast.Subscript):
            return None
        if not isinstance(source.value, ast.Name):
            return None
        table = self.module.spread_tables.get(source.value.id)
        if table is None:
            return None
        key = _const_int(source.slice)
        if key is not None and key in table.masks:
            return _int(table.masks[key], "pyint")
        mask = table.joined_mask()
        return _int(mask, "pyint") if mask is not None else None

    # -- expressions ----------------------------------------------------------

    def _eval(self, node: ast.expr) -> AbstractValue:
        value = self._eval_inner(node)
        self.facts.values[id(node)] = value
        return value

    def _eval_inner(self, node: ast.expr) -> AbstractValue:
        if isinstance(node, ast.Constant):
            return self._eval_constant(node)
        if isinstance(node, (ast.BinOp, ast.Call)):
            # Fold pure-constant expressions (``(1 << 62) - 1``,
            # ``np.uint64(0xFF)``) exactly: the generic operator rules
            # would smear the sign (Sub) and widen the bound (Add).
            folded = _const_int(node)
            if folded is not None:
                dtype = "pyint"
                if isinstance(node, ast.Call):
                    name = _callee_name(node.func)
                    if name in _INT_DTYPES:
                        dtype = name
                return _int(abs(folded), dtype, folded < 0)
        if isinstance(node, ast.Name):
            return self.env.get(node.id, TOP)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left)
            right = self._eval(node.right)
            return self._binop_value(node.op, left, right, node)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand)
            if isinstance(node.op, ast.USub) and operand.kind in ("int", "float"):
                return replace(operand, maybe_negative=True)
            if isinstance(node.op, ast.Not):
                return AbstractValue("bool", "bool", 1, False)
            return operand
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Subscript):
            spread = self._spread_unpack(node)
            if spread is not None:
                return spread
            base = self._eval(node.value)
            if isinstance(node.slice, ast.expr):
                self._eval(node.slice)
            # Elementwise view: indexing keeps the element domain.
            if base.kind in ("int", "float"):
                return base
            return TOP
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return AbstractValue("bool", "bool", 1, False)
        if isinstance(node, ast.BoolOp):
            for value_node in node.values:
                self._eval(value_node)
            return AbstractValue("bool", "bool", 1, False)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return join(self._eval(node.body), self._eval(node.orelse))
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            elements = [self._eval(e) for e in node.elts]
            if elements:
                out = elements[0]
                for e in elements[1:]:
                    out = join(out, e)
                return replace(out, dtype=None) if out.kind in ("int", "float") else TOP
            return AbstractValue("other")
        if isinstance(node, ast.ListComp):
            for gen in node.generators:
                self._eval(gen.iter)
                self._assign(gen.target, TOP, None)
            return self._eval(node.elt)
        if isinstance(node, (ast.SetComp, ast.GeneratorExp)):
            for gen in node.generators:
                self._eval(gen.iter)
                self._assign(gen.target, TOP, None)
            self._eval(node.elt)
            return AbstractValue("other")
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        return TOP

    def _eval_constant(self, node: ast.Constant) -> AbstractValue:
        value = node.value
        if isinstance(value, bool):
            return AbstractValue("bool", "bool", 1, False)
        if isinstance(value, int):
            return _int(abs(value), "pyint", value < 0)
        if isinstance(value, float):
            return AbstractValue("float", "pyfloat", None, value < 0)
        return AbstractValue("other")

    def _eval_attribute(self, node: ast.Attribute) -> AbstractValue:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            if node.attr in self.attr_env:
                return self.attr_env[node.attr]
        if node.attr in KNOWN_FLOAT_ATTRS:
            return AbstractValue("float", "pyfloat", None, True)
        if node.attr in KNOWN_INT_ATTRS:
            return _int((1 << POSITION_BITS) - 1, "pyint")
        self._eval(node.value)
        return TOP

    def _eval_call(self, node: ast.Call) -> AbstractValue:
        name = _callee_name(node.func)
        args = [self._eval(a) for a in node.args]
        kwargs = {kw.arg: self._eval(kw.value) for kw in node.keywords if kw.arg}
        if isinstance(node.func, ast.Attribute):
            self._eval(node.func.value)

        if name == "astype":
            dtype = _dtype_from_node(node.args[0] if node.args else None)
            base = TOP
            if isinstance(node.func, ast.Attribute):
                base = self.facts.value_of(node.func.value)
            return _value_for_dtype(dtype, base)
        if name in ("asarray", "array", "ascontiguousarray"):
            dtype_node = next((kw.value for kw in node.keywords
                               if kw.arg == "dtype"), None)
            base = args[0] if args else TOP
            if dtype_node is not None:
                return _value_for_dtype(_dtype_from_node(dtype_node), base)
            if base.kind == "int":
                return replace(base, dtype="int64")
            if base.kind == "float":
                return replace(base, dtype="float64")
            return TOP
        if name in ("zeros", "empty", "ones", "full"):
            dtype_node = next((kw.value for kw in node.keywords
                               if kw.arg == "dtype"), None)
            dtype = _dtype_from_node(dtype_node) if dtype_node is not None else "float64"
            return _value_for_dtype(dtype, TOP)
        if name in _DTYPE_NAMES and name not in ("object", "bool"):
            # np.int64(x), np.uint64(x), float(x), int(x) constructor casts.
            base = args[0] if args else TOP
            return _value_for_dtype(_DTYPE_NAMES[name], base)
        if name in _FLOAT_CALLS:
            return _float()
        if name in ("clip", "minimum"):
            return self._eval_clip(name, args)
        if name == "maximum":
            if args and all(a.kind in ("int", "float") for a in args):
                out = args[0]
                for a in args[1:]:
                    out = join(out, a)
                # max(x, y) is >= each operand: non-negative when any
                # operand is known non-negative.
                neg = all(a.maybe_negative for a in args)
                return replace(out, maybe_negative=neg)
            return TOP
        if name in ("where",):
            if len(args) == 3:
                return join(args[1], args[2])
            return TOP
        if name in ("min", "max", "abs", "sum"):
            if args and args[0].kind in ("int", "float"):
                out = args[0]
                if name == "abs":
                    out = replace(out, maybe_negative=False)
                return out
            return TOP
        if name in _SIGNATURES:
            return _SIGNATURES[name]
        del kwargs
        return TOP

    def _eval_clip(self, name: str, args: list[AbstractValue]) -> AbstractValue:
        """``np.clip(x, lo, hi)`` / ``np.minimum(x, bound)``."""
        if not args:
            return TOP
        base = args[0]
        bound: AbstractValue | None = None
        if name == "clip" and len(args) == 3:
            bound = args[2]
        elif name == "minimum" and len(args) == 2:
            bound = args[1]
        if bound is None:
            return base if base.kind in ("int", "float") else TOP
        kind = base.kind if base.kind != "unknown" else bound.kind
        if kind not in ("int", "float"):
            return TOP
        caps = [v.max_abs for v in (base, bound) if v.max_abs is not None]
        max_abs = min(caps) if caps else None
        dtype = base.dtype if base.kind != "unknown" else bound.dtype
        neg = base.maybe_negative if kind == "int" else True
        return AbstractValue(kind, dtype, max_abs, neg)

    # -- operators ------------------------------------------------------------

    def _binop_value(self, op: ast.operator, left: AbstractValue,
                     right: AbstractValue, node: ast.AST) -> AbstractValue:
        del node
        if left.kind == "float" or right.kind == "float":
            if left.kind in ("float", "int", "unknown") and \
                    right.kind in ("float", "int", "unknown"):
                dtype = "float64" if "float64" in (left.dtype, right.dtype) \
                    else "pyfloat"
                return AbstractValue("float", dtype, None, True)
            return TOP
        if isinstance(op, ast.BitAnd) and "unknown" in (left.kind, right.kind):
            # ``x & mask`` bounds the result even when ``x`` is unknown:
            # a valid ``&`` implies integers, and a non-negative known
            # mask caps the magnitude.
            for side in (left, right):
                if side.is_int and side.max_abs is not None \
                        and not side.maybe_negative:
                    return _int(side.max_abs, "pyint", False)
            return TOP
        if left.kind not in ("int", "bool") or right.kind not in ("int", "bool"):
            return TOP

        dtype = _promote_int(left.dtype, right.dtype)
        la, ra = left.max_abs, right.max_abs
        neg = left.maybe_negative or right.maybe_negative
        max_abs: int | None = None

        if isinstance(op, ast.BitAnd):
            # A non-negative mask caps the result whatever the other side is.
            candidates = []
            if la is not None and not left.maybe_negative:
                candidates.append(la)
            if ra is not None and not right.maybe_negative:
                candidates.append(ra)
            max_abs = min(candidates) if candidates else None
            neg = left.maybe_negative and right.maybe_negative
        elif isinstance(op, (ast.BitOr, ast.BitXor)):
            if la is not None and ra is not None and not neg:
                bits = max(int(la).bit_length(), int(ra).bit_length())
                max_abs = (1 << bits) - 1
        elif isinstance(op, ast.LShift):
            # Cap the modeled shift amount: a bound past 1024 bits is
            # already "overflows anything" territory, and huge amounts
            # (e.g. a position-sized bound) would allocate silly ints.
            if la is not None and ra is not None and ra <= 1024 \
                    and not right.maybe_negative:
                max_abs = int(la) << int(ra)
        elif isinstance(op, ast.RShift):
            max_abs = la  # conservative: shifting right never grows
        elif isinstance(op, ast.Add):
            if la is not None and ra is not None:
                max_abs = la + ra
        elif isinstance(op, ast.Sub):
            if la is not None and ra is not None:
                max_abs = la + ra
            neg = True
        elif isinstance(op, ast.Mult):
            if la is not None and ra is not None:
                max_abs = la * ra
        elif isinstance(op, (ast.FloorDiv, ast.Mod)):
            max_abs = la
        elif isinstance(op, ast.Pow):
            if la is not None and ra is not None and ra <= 64:
                try:
                    max_abs = int(la) ** int(ra)
                except (OverflowError, ValueError):
                    max_abs = None
        elif isinstance(op, ast.Div):
            return AbstractValue("float", "pyfloat", None, True)
        return AbstractValue("int", dtype, max_abs, neg)


def _promote_int(a: str | None, b: str | None) -> str | None:
    if a == b:
        return a
    if "uint64" in (a, b):
        return "uint64"
    if a == "pyint":
        return b
    if b == "pyint":
        return a
    if a is None or b is None:
        return None
    return "int64"


# -- guard pattern matching ----------------------------------------------------


def _guard_bounds(test: ast.expr) -> Iterator[tuple[str, int]]:
    """Extract ``(param, upper_bound)`` pairs from a raise-guard condition.

    Recognises ``x < lo or x > hi``, ``x > hi``, and
    ``not lo <= x <= hi`` — the idioms used by the kernels to validate
    integer parameters before doing bit arithmetic with them.
    """
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        for value in test.values:
            yield from _guard_bounds(value)
        return
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        inner = test.operand
        if isinstance(inner, ast.Compare) and len(inner.ops) == 2 and \
                all(isinstance(op, (ast.LtE, ast.Lt)) for op in inner.ops):
            target = inner.comparators[0]
            upper = _const_int(inner.comparators[1])
            if isinstance(target, ast.Name) and upper is not None:
                yield target.id, upper
        return
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        op = test.ops[0]
        left, right = test.left, test.comparators[0]
        if isinstance(op, (ast.Gt, ast.GtE)) and isinstance(left, ast.Name):
            bound = _const_int(right)
            if bound is not None:
                yield left.id, bound
        elif isinstance(op, (ast.Lt, ast.LtE)) and isinstance(right, ast.Name):
            bound = _const_int(left)
            if bound is not None:
                yield right.id, bound


def _mentions_budget_compare(node: ast.Compare) -> bool:
    """``d * bits > 62``-style inline budget comparisons."""
    sides = [node.left, *node.comparators]
    consts = [_const_int(s) for s in sides]
    if not any(c is not None and c in (62, 63, 64) for c in consts):
        return False
    return any(isinstance(s, ast.BinOp) and isinstance(s.op, ast.Mult)
               for s in sides)


# -- module driver ------------------------------------------------------------


def _functions(tree: ast.Module) -> Iterator[tuple[ast.FunctionDef, str, str | None]]:
    """Yield ``(node, qualname, class_name)`` for every def in the module."""
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef):
            yield stmt, stmt.name, None
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, ast.FunctionDef):
                    yield sub, f"{stmt.name}.{sub.name}", stmt.name


def analyze_module(tree: ast.Module) -> ModuleFacts:
    """Run the dataflow analysis over every function in ``tree``."""
    module = ModuleFacts()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            parsed = parse_spread_table(stmt)
            if parsed is not None:
                name, table = parsed
                module.spread_tables[name] = table
                module.spread_assigns.append(stmt)

    # Phase 1: collect class attribute facts (``self.attr = ...``).
    class_attrs: dict[str, dict[str, AbstractValue]] = {}

    def runner(node: ast.FunctionDef, qualname: str,
               attr_env: dict[str, AbstractValue],
               sink: dict[str, AbstractValue] | None) -> FunctionFacts:
        facts = FunctionFacts(node=node, qualname=qualname)
        _Interpreter(facts, module, attr_env, sink).run()
        return facts

    for node, qualname, cls in _functions(tree):
        if cls is None:
            continue
        sink = class_attrs.setdefault(cls, {})
        runner(node, qualname, {}, sink)

    # Phase 2: analyze every function with the collected attribute facts.
    for node, qualname, cls in _functions(tree):
        attr_env = class_attrs.get(cls, {}) if cls is not None else {}
        module.functions.append(runner(node, qualname, attr_env, None))
    return module


# ---------------------------------------------------------------------------
# Concurrency dataflow extensions (RPR2xx support)
# ---------------------------------------------------------------------------
# The lock-discipline analyzer (:mod:`repro.analysis.concurrency`) needs
# two small dataflow facts the numeric interpreter above does not track:
# which functions run on *other* threads or processes (spawn-target
# discovery), and which local names are aliases of a ``self`` lock
# attribute (``cond = self._conds[shard]`` followed by ``with cond:``).

_SPAWN_CTORS = {"Thread": "thread", "Process": "process"}


def thread_spawn_targets(
    node: ast.AST,
) -> Iterator[tuple[str, str, int]]:
    """Spawn targets in ``node``: ``(kind, target, lineno)`` triples.

    ``kind`` is ``"thread"`` or ``"process"``; ``target`` is either a
    plain function name (``"worker_main"``) or ``"self.<method>"`` for
    bound-method targets.  Matches any constructor whose trailing name
    is ``Thread``/``Process`` (``threading.Thread``, ``ctx.Process``,
    bare ``Process`` from an import), keyed on the ``target=`` keyword —
    positional targets do not occur in idiomatic spawn code and are
    ignored.
    """
    for call in ast.walk(node):
        if not isinstance(call, ast.Call):
            continue
        leaf: str | None = None
        if isinstance(call.func, ast.Name):
            leaf = call.func.id
        elif isinstance(call.func, ast.Attribute):
            leaf = call.func.attr
        kind = _SPAWN_CTORS.get(leaf or "")
        if kind is None:
            continue
        for kw in call.keywords:
            if kw.arg != "target":
                continue
            value = kw.value
            if isinstance(value, ast.Name):
                yield kind, value.id, call.lineno
            elif (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
            ):
                yield kind, f"self.{value.attr}", call.lineno


def _lock_attr_of(node: ast.expr, lock_attrs: frozenset[str] | set[str]) -> str | None:
    """The lock attribute behind ``self.X`` / ``self.X[...]``, if any."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in lock_attrs
    ):
        return node.attr
    return None


def lock_aliases(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    lock_attrs: frozenset[str] | set[str],
) -> dict[str, str]:
    """Local names that alias a ``self`` lock attribute inside ``func``.

    Covers the two idioms the serving layer uses:

    * ``cond = self._conds[shard]`` (plain assignment of the attribute
      or one subscript of it), and
    * ``for cond in self._conds:`` / ``for s, cond in
      enumerate(self._conds):`` (iteration over an indexed lock family).

    The map is flow-insensitive but *poisoned* conservatively: a name
    that is ever rebound to anything that is not the same lock attribute
    is dropped entirely, so a stale alias can never mark an unrelated
    ``with`` block as a lock acquisition.
    """
    aliases: dict[str, str] = {}
    poisoned: set[str] = set()

    def bind(name: str, attr: str | None) -> None:
        if attr is None:
            poisoned.add(name)
        elif name in aliases and aliases[name] != attr:
            poisoned.add(name)
        else:
            aliases[name] = attr

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bind(target.id, _lock_attr_of(node.value, lock_attrs))
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                bind(node.target.id, _lock_attr_of(node.value, lock_attrs))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            source = node.iter
            element: ast.expr | None = node.target
            if (
                isinstance(source, ast.Call)
                and isinstance(source.func, ast.Name)
                and source.func.id == "enumerate"
                and source.args
            ):
                source = source.args[0]
                if isinstance(element, ast.Tuple) and len(element.elts) == 2:
                    element = element.elts[1]
                else:
                    element = None
            attr = _lock_attr_of(source, lock_attrs) if not isinstance(
                source, ast.Subscript) else None
            if isinstance(element, ast.Name):
                bind(element.id, attr)
            elif element is not None:
                for sub in ast.walk(element):
                    if isinstance(sub, ast.Name):
                        bind(sub.id, None)
    return {name: attr for name, attr in aliases.items() if name not in poisoned}
