"""``repro.analysis`` — AST-based contract linter for the index library.

The survey's comparison of 100+ learned indexes rests on a uniform
contract: identical query semantics, identical cost accounting,
registry membership.  This package enforces that contract statically
with repo-specific rules, each with a stable ID, severity,
``file:line`` output, and a per-rule suppression comment
(``# lint: disable=RPRxxx -- justification``):

* RPR001-RPR009 — API-contract rules (registry membership, batch
  parity, stats accounting, floor-consistent routing, serving-layer
  shard-lock discipline, ...);
* RPR101-RPR104 — numeric-safety rules backed by the
  :mod:`repro.analysis.dataflow` abstract interpreter (code-budget
  overflow, lossy float64 casts, mixed-dtype routing, signed/unsigned
  round-trips);
* RPR201-RPR205 — concurrency contracts backed by the interprocedural
  lock model of :mod:`repro.analysis.concurrency` (lock-order cycles,
  unguarded shared state, predicate-loop waits, generation-counter
  atomicity, segment lifecycle ownership), cross-validated at runtime
  by :mod:`repro.core.lockorder` under ``REPRO_SANITIZE=1``;
* RPR206 — self-tuning actuation discipline
  (:mod:`repro.analysis.tuning_rules`): control-plane code may reshape
  live shards only through the store's locked, generation-bumping
  re-partition methods, and those methods must bump;
* RPR301-RPR303 — complexity contracts backed by the static cost model
  of :mod:`repro.analysis.complexity` (hot paths bounded by their
  declared :mod:`repro.core.complexity` class, vectorization discipline
  in batch kernels, serve-layer allocation bounds), cross-validated
  empirically by the :mod:`repro.bench.scaling` witness (E22);
* RPR012 — stale-suppression audit (``# lint: disable`` comments that
  no longer silence anything), implemented inside the engine because it
  needs every other rule's suppressed findings.

Run ``python -m repro.analysis`` from the repository root; see the
"Static analysis" section of README.md for the rule table.
"""

from repro.analysis import complexity  # noqa: F401  (registers RPR301-303)
from repro.analysis import concurrency  # noqa: F401  (registers RPR201-205)
from repro.analysis import numeric_rules  # noqa: F401  (registers RPR101-104)
from repro.analysis import tuning_rules  # noqa: F401  (registers RPR206)
from repro.analysis.concurrency import build_model, static_lock_graph
from repro.analysis.dataflow import (
    AbstractValue,
    FunctionFacts,
    ModuleFacts,
    analyze_module,
    bit_width,
    lock_aliases,
    thread_spawn_targets,
)
from repro.analysis.engine import (
    AnalysisResult,
    build_context,
    render_json,
    render_text,
    run_analysis,
)
from repro.analysis.findings import Finding, RuleMeta, Severity
from repro.analysis.registry_view import (
    IndexClassInfo,
    RegistryView,
    build_registry_view,
)
from repro.analysis.rules import RULE_METADATA, RULES, AnalysisContext
from repro.analysis.source import SourceFile, parse_suppressions

__all__ = [
    "AbstractValue",
    "AnalysisContext",
    "AnalysisResult",
    "Finding",
    "FunctionFacts",
    "ModuleFacts",
    "analyze_module",
    "bit_width",
    "build_model",
    "complexity",
    "concurrency",
    "lock_aliases",
    "numeric_rules",
    "static_lock_graph",
    "thread_spawn_targets",
    "IndexClassInfo",
    "RegistryView",
    "RuleMeta",
    "RULES",
    "RULE_METADATA",
    "Severity",
    "SourceFile",
    "build_context",
    "build_registry_view",
    "parse_suppressions",
    "render_json",
    "render_text",
    "run_analysis",
]
