"""SNARF — Vaidya et al., 2022: a learning-enhanced range filter.

Bloom filters cannot answer range-membership ("is any key in [a, b]?").
SNARF can: it maps every key through a monotone learned CDF model to a
slot in a bit array of ``bits_per_key * n`` positions and sets that bit.
Because the mapping is monotone, the keys inside a query range occupy
exactly the slot interval ``[slot(a), slot(b)]`` — so scanning that
interval yields no false negatives, and false positives shrink as the
model gets sharper or the bit budget grows.

The published SNARF compresses the bit array with Golomb coding; this
reproduction keeps the plain bit array and counts its true size (the
compression is orthogonal to the filtering behaviour that benchmarks
exercise — noted in DESIGN.md).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.interfaces import MembershipFilter
from repro.models.cdf import QuantileModel

__all__ = ["SNARFFilter"]


class SNARFFilter(MembershipFilter):
    """Learned range filter: monotone model + bit array.

    Subclasses :class:`MembershipFilter` — point membership is a
    width-zero range query — so the filter benchmarks and the contract
    linter hold it to the same no-false-negative surface as the Bloom
    family, while :meth:`might_contain_range` adds the range capability
    Bloom filters lack.

    Args:
        bits_per_key: slots allocated per key (>= 2 recommended).
        num_quantiles: size of the monotone CDF model.
    """

    name = "snarf"

    def __init__(self, bits_per_key: float = 8.0, num_quantiles: int = 256) -> None:
        if bits_per_key < 1:
            raise ValueError("bits_per_key must be >= 1")
        super().__init__()
        self.bits_per_key = bits_per_key
        self.num_quantiles = num_quantiles
        self._model = QuantileModel()
        self._bits = np.zeros(8, dtype=bool)
        self._lo = 0.0
        self._hi = 1.0
        self._count = 0

    def _slot(self, key: float) -> int:
        size = self._bits.size
        frac = self._model.evaluate(float(key))
        return min(int(frac * (size - 1)), size - 1)

    def build(self, keys: Iterable[float]) -> "SNARFFilter":
        """Construct the filter over ``keys``."""
        arr = np.asarray([float(k) for k in keys])
        if arr.size == 0:
            raise ValueError("cannot build a filter over zero keys")
        self._count = int(arr.size)
        self._lo = float(arr.min())
        self._hi = float(arr.max())
        self._model = QuantileModel.fit(arr, num_quantiles=self.num_quantiles)
        size = max(8, int(arr.size * self.bits_per_key))
        self._bits = np.zeros(size, dtype=bool)
        for k in arr:
            self._bits[self._slot(float(k))] = True
        self.stats.size_bytes = (size + 7) // 8 + self._model.size_bytes
        self.stats.extra["occupancy"] = float(self._bits.mean())
        return self

    def might_contain(self, key: float) -> bool:
        """Point membership (a width-zero range query)."""
        return self.might_contain_range(key, key)

    def might_contain_range(self, low: float, high: float) -> bool:
        """Return False only if no built key can lie in ``[low, high]``.

        No false negatives: every key's bit lies in the slot interval of
        any range containing it (monotone mapping).
        """
        if high < low:
            return False
        if high < self._lo or low > self._hi:
            return False
        s_lo = self._slot(max(low, self._lo))
        s_hi = self._slot(min(high, self._hi))
        self.stats.comparisons += s_hi - s_lo + 1
        return bool(self._bits[s_lo:s_hi + 1].any())

    def false_positive_rate(self, ranges: Iterable[tuple[float, float]],
                            truth: Iterable[bool]) -> float:
        """Empirical FPR over query ranges with known emptiness."""
        fp = 0
        negatives = 0
        for (lo, hi), has_key in zip(ranges, truth):
            if has_key:
                continue
            negatives += 1
            if self.might_contain_range(lo, hi):
                fp += 1
        return fp / negatives if negatives else 0.0

    def __len__(self) -> int:
        return self._count
