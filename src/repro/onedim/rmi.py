"""The Recursive Model Index (RMI) — Kraska et al., 2018.

The first learned index.  A two-stage model hierarchy learns the CDF of
the keys: the *root* model routes a key to one of ``num_models`` leaf
models, each leaf predicts the key's position in the sorted array, and a
per-leaf error bound drives a bounded binary search for correction.

The root model is configurable (``'linear'``, ``'quadratic'``, or
``'nn'`` for a small MLP), matching the original paper's exploration of
root complexity; leaves are always linear, the configuration that every
follow-up benchmark found dominant.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.interfaces import OneDimIndex, as_object_array
from repro.models.linear import LinearModel
from repro.models.nn import TinyMLP
from repro.models.polynomial import PolynomialModel
from repro.onedim._search import (
    bounded_binary_search,
    exponential_search,
)

__all__ = ["RMIIndex"]


class RMIIndex(OneDimIndex):
    """Two-stage RMI over a sorted array.

    Args:
        num_models: number of second-stage (leaf) linear models.
        root: root model type — ``'linear'``, ``'quadratic'``, or ``'nn'``.

    The index is immutable (pure / immutable branch of the taxonomy).
    """

    name = "rmi"

    def __init__(self, num_models: int = 128, root: str = "linear") -> None:
        super().__init__()
        if num_models < 1:
            raise ValueError("num_models must be >= 1")
        if root not in ("linear", "quadratic", "nn"):
            raise ValueError("root must be 'linear', 'quadratic', or 'nn'")
        self.num_models = num_models
        self.root_kind = root
        self._keys = np.empty(0)
        self._values: list[object] = []
        self._root_model: object | None = None
        self._leaves: list[LinearModel] = []
        self._leaf_errors: list[int] = []
        # Flat per-leaf parameter arrays + an object copy of the values,
        # prepared at build time for the vectorized batch-lookup path.
        self._leaf_slopes = np.empty(0)
        self._leaf_intercepts = np.empty(0)
        self._leaf_error_arr = np.empty(0, dtype=np.int64)
        self._values_arr = np.empty(0, dtype=object)

    # -- construction ----------------------------------------------------
    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "RMIIndex":
        self._keys, self._values = self._prepare(keys, values)
        n = self._keys.size
        self._built = True
        if n == 0:
            self._root_model = LinearModel()
            self._leaves = [LinearModel()]
            self._leaf_errors = [0]
            self._finalize_batch_arrays()
            return self

        positions = np.arange(n, dtype=np.float64)
        self._root_model = self._fit_root(self._keys, positions)

        # Route every key through the root to its leaf model.
        root_pred = self._root_predict_array(self._keys)
        leaf_ids = np.clip((root_pred / n * self.num_models).astype(int), 0, self.num_models - 1)

        self._leaves = []
        self._leaf_errors = []
        for m in range(self.num_models):
            mask = leaf_ids == m
            if not np.any(mask):
                self._leaves.append(LinearModel())
                self._leaf_errors.append(0)
                continue
            xs = self._keys[mask]
            ys = positions[mask]
            leaf = LinearModel.fit(xs, ys)
            preds = np.clip(np.rint(leaf.predict_array(xs)), 0, n - 1)
            err = int(np.max(np.abs(preds - ys))) if xs.size else 0
            self._leaves.append(leaf)
            self._leaf_errors.append(err)

        self.stats.size_bytes = (
            self._root_size_bytes()
            + sum(leaf.size_bytes for leaf in self._leaves)
            + 8 * len(self._leaf_errors)
        )
        self.stats.extra["max_leaf_error"] = max(self._leaf_errors, default=0)
        self.stats.extra["mean_leaf_error"] = float(np.mean(self._leaf_errors)) if self._leaf_errors else 0.0
        self._finalize_batch_arrays()
        return self

    def _finalize_batch_arrays(self) -> None:
        self._leaf_slopes = np.array([leaf.slope for leaf in self._leaves])
        self._leaf_intercepts = np.array([leaf.intercept for leaf in self._leaves])
        self._leaf_error_arr = np.array(self._leaf_errors, dtype=np.int64)
        self._values_arr = as_object_array(self._values)

    def _fit_root(self, keys: np.ndarray, positions: np.ndarray):
        if self.root_kind == "linear":
            return LinearModel.fit(keys, positions)
        if self.root_kind == "quadratic":
            return PolynomialModel.fit(keys, positions, degree=2)
        model = TinyMLP(hidden=16, epochs=200, learning_rate=0.05)
        # Subsample for training speed on large key sets.
        if keys.size > 20000:
            idx = np.linspace(0, keys.size - 1, 20000).astype(int)
            model.fit(keys[idx], positions[idx])
        else:
            model.fit(keys, positions)
        return model

    def _root_size_bytes(self) -> int:
        model = self._root_model
        if isinstance(model, (LinearModel, PolynomialModel)):
            return model.size_bytes
        if isinstance(model, TinyMLP):
            return model.size_bytes
        return 0

    def _root_predict_array(self, keys: np.ndarray) -> np.ndarray:
        model = self._root_model
        if isinstance(model, TinyMLP):
            return np.asarray(model.predict(keys))
        return model.predict_array(keys)

    def _root_predict(self, key: float) -> float:
        model = self._root_model
        if isinstance(model, TinyMLP):
            return float(np.asarray(model.predict(np.array([key])))[0])
        return model.predict(key)

    # -- queries ----------------------------------------------------------
    def _locate(self, key: float) -> int:
        """Lower-bound position of ``key`` via root -> leaf -> correction."""
        n = self._keys.size
        self.stats.model_predictions += 1
        root_pred = self._root_predict(key)
        leaf_id = int(np.clip(root_pred / n * self.num_models, 0, self.num_models - 1))
        leaf = self._leaves[leaf_id]
        self.stats.model_predictions += 1
        self.stats.nodes_visited += 2
        predicted = int(np.clip(round(leaf.predict(key)), 0, n - 1))
        error = self._leaf_errors[leaf_id]
        pos = bounded_binary_search(self._keys, key, predicted, error, self.stats)
        # Guard against routing misses near leaf boundaries: a key may be
        # routed to a different leaf than its neighbours were at build
        # time, so fall back to widening if the bound was violated.
        if (pos < n and self._keys[pos] < key) or (pos > 0 and self._keys[pos - 1] >= key):
            pos = exponential_search(self._keys, key, predicted, self.stats)
        return pos

    def lookup(self, key: float) -> object | None:
        self._require_built()
        if self._keys.size == 0:
            return None
        key = float(key)
        pos = self._locate(key)
        if pos < self._keys.size and self._keys[pos] == key:
            self.stats.keys_scanned += 1
            return self._values[pos]
        return None

    def lookup_batch(self, keys) -> np.ndarray:
        """Vectorized batch lookup: one numpy pass over the whole batch.

        Mirrors the scalar path arithmetic exactly — root prediction,
        leaf routing, per-leaf bounded window, and the leaf-boundary
        fallback (replaced by the global insertion point, which is what
        the scalar ``exponential_search`` fallback converges to) — so a
        batch equals a loop of :meth:`lookup` calls element-wise.
        """
        self._require_built()
        qs = np.asarray(keys, dtype=np.float64)
        if qs.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        m = qs.size
        out = np.full(m, None, dtype=object)
        n = self._keys.size
        if n == 0 or m == 0:
            return out
        root_pred = self._root_predict_array(qs)
        leaf_ids = np.clip(
            root_pred / n * self.num_models, 0, self.num_models - 1
        ).astype(np.int64)
        self.stats.model_predictions += 2 * m
        self.stats.nodes_visited += 2 * m
        predicted = np.clip(
            np.rint(self._leaf_slopes[leaf_ids] * qs + self._leaf_intercepts[leaf_ids]),
            0, n - 1,
        ).astype(np.int64)
        errors = self._leaf_error_arr[leaf_ids]
        lo = np.maximum(predicted - errors, 0)
        hi = np.minimum(predicted + errors + 1, n)
        global_pos = np.searchsorted(self._keys, qs, side="left")
        pos = np.clip(global_pos, lo, hi)
        self.stats.corrections += int((hi - lo).sum())
        # Leaf-boundary routing misses: same violation test as _locate,
        # resolved to the exact global lower bound.
        capped = np.minimum(pos, n - 1)
        violated = ((pos < n) & (self._keys[capped] < qs)) | (
            (pos > 0) & (self._keys[np.maximum(pos - 1, 0)] >= qs)
        )
        pos = np.where(violated, global_pos, pos)
        hit = (pos < n) & (self._keys[np.minimum(pos, n - 1)] == qs)
        hit_idx = np.nonzero(hit)[0]
        self.stats.keys_scanned += int(hit_idx.size)
        out[hit_idx] = self._values_arr[pos[hit_idx]]
        return out

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low or self._keys.size == 0:
            return []
        start = self._locate(float(low))
        out: list[tuple[float, object]] = []
        i = start
        while i < self._keys.size and self._keys[i] <= high:
            out.append((float(self._keys[i]), self._values[i]))
            self.stats.keys_scanned += 1
            i += 1
        return out

    @property
    def leaf_errors(self) -> list[int]:
        """Per-leaf max error bounds (for size/error trade-off studies)."""
        return list(self._leaf_errors)

    def __len__(self) -> int:
        return int(self._keys.size)
