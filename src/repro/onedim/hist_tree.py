"""Hist-Tree — Crotty, 2021 ("Those Who Ignore It Are Doomed to Learn").

A learned-index-shaped structure with no trained models: a hierarchy of
equi-width histograms.  Each node splits its key range into ``bins``
equal-width buckets with cumulative counts; buckets holding more than
``leaf_threshold`` keys get a child histogram.  Lookups descend the bin
hierarchy in O(depth) and finish with a binary search inside the final
bucket's position range.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.interfaces import OneDimIndex
from repro.onedim._search import lower_bound

__all__ = ["HistTreeIndex"]


class _HistNode:
    __slots__ = ("lo", "hi", "cumulative", "children", "first")

    def __init__(self, lo: float, hi: float, cumulative: np.ndarray, first: int) -> None:
        self.lo = lo
        self.hi = hi
        self.cumulative = cumulative  # len bins+1, offsets relative to `first`
        self.children: dict[int, "_HistNode"] = {}
        self.first = first  # absolute position of this node's first key


class HistTreeIndex(OneDimIndex):
    """Hierarchical equi-width histogram index (immutable, pure).

    Args:
        bins: buckets per node (default 64).
        leaf_threshold: max keys in a bucket before it gets a child node
            (default 32; also the final binary-search window size).
    """

    name = "hist-tree"

    def __init__(self, bins: int = 64, leaf_threshold: int = 32) -> None:
        super().__init__()
        if bins < 2:
            raise ValueError("bins must be >= 2")
        if leaf_threshold < 1:
            raise ValueError("leaf_threshold must be >= 1")
        self.bins = bins
        self.leaf_threshold = leaf_threshold
        self._keys = np.empty(0)
        self._values: list[object] = []
        self._root: _HistNode | None = None
        self._node_count = 0

    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "HistTreeIndex":
        self._keys, self._values = self._prepare(keys, values)
        self._built = True
        self._node_count = 0
        if self._keys.size == 0:
            self._root = None
            return self
        lo = float(self._keys[0])
        hi = float(self._keys[-1])
        self._root = self._build_node(lo, hi, 0, self._keys.size, depth=0)
        self.stats.size_bytes = self._node_count * (8 * (self.bins + 1) + 32)
        self.stats.extra["nodes"] = self._node_count
        return self

    def _build_node(self, lo: float, hi: float, first: int, last: int, depth: int) -> _HistNode:
        self._node_count += 1
        if hi <= lo:
            hi = lo + 1.0
        edges = np.linspace(lo, hi, self.bins + 1)
        # Bucket b covers [edges[b], edges[b+1]); the last bucket is closed.
        slice_keys = self._keys[first:last]
        counts = np.searchsorted(slice_keys, edges, side="left")
        counts[-1] = last - first
        node = _HistNode(lo, hi, counts.astype(np.int64), first)
        if depth >= 24:
            return node
        for b in range(self.bins):
            b_first = first + int(counts[b])
            b_last = first + int(counts[b + 1])
            if b_last - b_first > self.leaf_threshold:
                child_lo = float(edges[b])
                child_hi = float(edges[b + 1])
                if self._keys[b_first] == self._keys[b_last - 1]:
                    continue  # all-duplicate bucket cannot be subdivided
                node.children[b] = self._build_node(child_lo, child_hi, b_first, b_last, depth + 1)
        return node

    def _bucket_of(self, node: _HistNode, key: float) -> int:
        width = (node.hi - node.lo) / self.bins
        if width <= 0:
            return 0
        b = int((key - node.lo) / width)
        return min(max(b, 0), self.bins - 1)

    def _locate(self, key: float) -> int:
        """Level-bounded histogram descent to a leaf range, then a
        bounded binary search inside that bucket's span."""
        node = self._root
        assert node is not None
        if key < node.lo:
            return 0
        if key > node.hi:
            return self._keys.size
        while True:
            self.stats.nodes_visited += 1
            b = self._bucket_of(node, key)
            child = node.children.get(b)
            if child is None:
                first = node.first + int(node.cumulative[b])
                last = node.first + int(node.cumulative[b + 1])
                return lower_bound(self._keys, key, first, last, self.stats)
            node = child

    def lookup(self, key: float) -> object | None:
        self._require_built()
        if self._root is None:
            return None
        key = float(key)
        pos = self._locate(key)
        if pos < self._keys.size and self._keys[pos] == key:
            self.stats.keys_scanned += 1
            return self._values[pos]
        return None

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low or self._root is None:
            return []
        start = self._locate(float(low))
        out: list[tuple[float, object]] = []
        i = start
        while i < self._keys.size and self._keys[i] <= high:
            out.append((float(self._keys[i]), self._values[i]))
            self.stats.keys_scanned += 1
            i += 1
        return out

    def __len__(self) -> int:
        return int(self._keys.size)
