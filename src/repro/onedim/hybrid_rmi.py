"""Hybrid-RMI — the hybrid variant from the original learned-index paper.

Kraska et al. (2018) observed that some regions of the key space resist
linear modelling; their hybrid index keeps the RMI top model but replaces
the worst-fitting leaf models with B-trees.  This is the canonical
*immutable hybrid / B-tree* entry in the survey's taxonomy.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.btree import BPlusTreeIndex
from repro.core.interfaces import OneDimIndex
from repro.models.linear import LinearModel
from repro.onedim._search import bounded_binary_search, exponential_search

__all__ = ["HybridRMIIndex"]


class HybridRMIIndex(OneDimIndex):
    """RMI whose bad leaves are replaced by B-trees.

    Args:
        num_models: second-stage model count.
        error_threshold: leaves whose max error exceeds this many
            positions become B-trees instead of linear models.
        btree_fanout: fanout of replacement B-trees.
    """

    name = "hybrid-rmi"

    def __init__(self, num_models: int = 128, error_threshold: int = 256,
                 btree_fanout: int = 64) -> None:
        super().__init__()
        if num_models < 1:
            raise ValueError("num_models must be >= 1")
        if error_threshold < 1:
            raise ValueError("error_threshold must be >= 1")
        self.num_models = num_models
        self.error_threshold = error_threshold
        self.btree_fanout = btree_fanout
        self._keys = np.empty(0)
        self._values: list[object] = []
        self._root = LinearModel()
        #: per leaf: ("model", LinearModel, error) or ("btree", BPlusTreeIndex, bounds)
        self._leaves: list[tuple] = []

    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "HybridRMIIndex":
        self._keys, self._values = self._prepare(keys, values)
        n = self._keys.size
        self._built = True
        self._leaves = []
        if n == 0:
            self._root = LinearModel()
            return self

        positions = np.arange(n, dtype=np.float64)
        self._root = LinearModel.fit(self._keys, positions)
        root_pred = self._root.predict_array(self._keys)
        leaf_ids = np.clip((root_pred / n * self.num_models).astype(int), 0, self.num_models - 1)

        btree_count = 0
        for m in range(self.num_models):
            mask = leaf_ids == m
            if not np.any(mask):
                self._leaves.append(("model", LinearModel(), 0))
                continue
            xs = self._keys[mask]
            ys = positions[mask]
            leaf = LinearModel.fit(xs, ys)
            preds = np.clip(np.rint(leaf.predict_array(xs)), 0, n - 1)
            err = int(np.max(np.abs(preds - ys)))
            if err > self.error_threshold:
                # This region resists linear modelling: use a B-tree that
                # maps keys to their global positions.
                btree = BPlusTreeIndex(fanout=self.btree_fanout).build(xs, [int(p) for p in ys])
                self._leaves.append(("btree", btree, (int(ys[0]), int(ys[-1]))))
                btree_count += 1
            else:
                self._leaves.append(("model", leaf, err))

        total = self._root.size_bytes
        for kind, payload, _ in self._leaves:
            total += payload.stats.size_bytes if kind == "btree" else payload.size_bytes
        self.stats.size_bytes = total
        self.stats.extra["btree_leaves"] = btree_count
        return self

    def _locate(self, key: float) -> int:
        n = self._keys.size
        self.stats.model_predictions += 1
        root_pred = self._root.predict(key)
        leaf_id = int(np.clip(root_pred / n * self.num_models, 0, self.num_models - 1))
        kind, payload, meta = self._leaves[leaf_id]
        self.stats.nodes_visited += 1
        if kind == "btree":
            result = payload.lookup(key)
            if result is not None:
                return int(result)
            # Absent key: fall back to a bounded search around the
            # B-tree's position range.
            lo, hi = meta
            predicted = (lo + hi) // 2
            return exponential_search(self._keys, key, predicted, self.stats)
        self.stats.model_predictions += 1
        predicted = int(np.clip(round(payload.predict(key)), 0, n - 1))
        pos = bounded_binary_search(self._keys, key, predicted, int(meta), self.stats)
        if (pos < n and self._keys[pos] < key) or (pos > 0 and self._keys[pos - 1] >= key):
            pos = exponential_search(self._keys, key, predicted, self.stats)
        return pos

    def lookup(self, key: float) -> object | None:
        self._require_built()
        if self._keys.size == 0:
            return None
        key = float(key)
        pos = self._locate(key)
        if pos < self._keys.size and self._keys[pos] == key:
            self.stats.keys_scanned += 1
            return self._values[pos]
        return None

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low or self._keys.size == 0:
            return []
        start = self._locate(float(low))
        out: list[tuple[float, object]] = []
        i = start
        while i < self._keys.size and self._keys[i] <= high:
            out.append((float(self._keys[i]), self._values[i]))
            self.stats.keys_scanned += 1
            i += 1
        return out

    @property
    def btree_leaf_count(self) -> int:
        """How many leaves fell back to B-trees."""
        return sum(1 for kind, *_ in self._leaves if kind == "btree")

    def __len__(self) -> int:
        return int(self._keys.size)
