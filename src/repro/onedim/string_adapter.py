"""String keys over numeric learned indexes (the SIndex branch).

SIndex (Wang et al., 2020) extends learned indexes to string keys.  The
core trick every string learned index shares is an order-preserving
numeric encoding of a bounded prefix, with exact keys kept for
verification.  :class:`StringIndexAdapter` packs the first 8 bytes of
each (UTF-8) key into a float that preserves lexicographic order, runs
any numeric learned index underneath, and resolves prefix collisions
with per-code sorted buckets.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np

from repro.core.interfaces import IndexStats, MutableOneDimIndex
from repro.onedim.pgm import DynamicPGMIndex

__all__ = ["StringIndexAdapter", "encode_prefix"]

_PREFIX_BYTES = 8


def encode_prefix(key: str) -> float:
    """Order-preserving float encoding of a string's first 8 bytes.

    The UTF-8 prefix is right-padded with zero bytes and read as a
    big-endian unsigned integer; because float64 carries 53 mantissa
    bits, the integer is scaled down to 6 bytes of precision, which
    still preserves *prefix* order exactly (ties are resolved by the
    adapter's buckets).
    """
    raw = key.encode("utf-8")[:_PREFIX_BYTES].ljust(_PREFIX_BYTES, b"\0")
    as_int = int.from_bytes(raw, "big")
    # Keep the top 6 bytes: exactly representable in a float64 mantissa.
    return float(as_int >> 16)


class StringIndexAdapter:
    """String-keyed index over any numeric :class:`MutableOneDimIndex`.

    Args:
        backend_factory: constructor for the numeric index underneath
            (default: :class:`DynamicPGMIndex`).

    The backend maps each distinct prefix code to a *bucket* (sorted list
    of ``(full_key, value)``), so keys sharing an 6-byte prefix still
    resolve exactly.
    """

    name = "string-adapter"

    def __init__(self, backend_factory: Callable[[], MutableOneDimIndex] = DynamicPGMIndex) -> None:
        self.stats = IndexStats()
        self._backend_factory = backend_factory
        self._backend: MutableOneDimIndex | None = None
        self._size = 0

    # -- construction -----------------------------------------------------
    def build(self, keys: Iterable[str], values: Iterable[object] | None = None) -> "StringIndexAdapter":
        """Bulk-load from string keys (values default to sorted rank)."""
        key_list = sorted(set(keys))
        if values is None:
            pairs = {k: i for i, k in enumerate(key_list)}
        else:
            pairs = dict(zip(keys, values))
        buckets: dict[float, list[tuple[str, object]]] = {}
        for k in key_list:
            buckets.setdefault(encode_prefix(k), []).append((k, pairs[k]))
        codes = np.array(sorted(buckets))
        payloads = [sorted(buckets[float(c)]) for c in codes]
        self._backend = self._backend_factory()
        self._backend.build(codes, payloads)
        self._size = len(key_list)
        self.stats.size_bytes = self._backend.stats.size_bytes + self._size * 16
        return self

    def _require_built(self) -> None:
        if self._backend is None:
            raise RuntimeError("call build() before querying")

    # -- queries ------------------------------------------------------------
    def lookup(self, key: str) -> object | None:
        """Exact-match lookup of a string key."""
        self._require_built()
        bucket = self._backend.lookup(encode_prefix(key))
        if bucket is None:
            return None
        self.stats.comparisons += max(1, len(bucket).bit_length())
        lo, hi = 0, len(bucket)
        while lo < hi:
            mid = (lo + hi) // 2
            if bucket[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(bucket) and bucket[lo][0] == key:
            return bucket[lo][1]
        return None

    def range_query(self, low: str, high: str) -> list[tuple[str, object]]:
        """All ``(key, value)`` with ``low <= key <= high`` (lexicographic)."""
        self._require_built()
        if high < low:
            return []
        out: list[tuple[str, object]] = []
        for _, bucket in self._backend.range_query(encode_prefix(low), encode_prefix(high)):
            for k, v in bucket:
                self.stats.keys_scanned += 1
                if low <= k <= high:
                    out.append((k, v))
        return out

    def prefix_query(self, prefix: str) -> list[tuple[str, object]]:
        """All keys starting with ``prefix``, in order."""
        self._require_built()
        if not prefix:
            return self.range_query("", "\U0010FFFF" * 2)
        # The successor of the prefix in lexicographic order bounds the scan.
        high = prefix + "\U0010FFFF"
        return [
            (k, v) for k, v in self.range_query(prefix, high)
            if k.startswith(prefix)
        ]

    # -- updates ---------------------------------------------------------------
    def insert(self, key: str, value: object | None = None) -> None:
        """Insert or replace a string key."""
        self._require_built()
        code = encode_prefix(key)
        bucket = self._backend.lookup(code)
        if bucket is None:
            self._backend.insert(code, [(key, value)])
            self._size += 1
            return
        lo, hi = 0, len(bucket)
        while lo < hi:
            mid = (lo + hi) // 2
            if bucket[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(bucket) and bucket[lo][0] == key:
            bucket[lo] = (key, value)
            return
        bucket.insert(lo, (key, value))
        self._size += 1

    def delete(self, key: str) -> bool:
        """Remove a string key; returns whether it was present."""
        self._require_built()
        code = encode_prefix(key)
        bucket = self._backend.lookup(code)
        if bucket is None:
            return False
        for i, (k, _) in enumerate(bucket):
            if k == key:
                del bucket[i]
                self._size -= 1
                if not bucket:
                    self._backend.delete(code)
                return True
        return False

    def items(self) -> Iterator[tuple[str, object]]:
        """All entries in lexicographic key order."""
        self._require_built()
        huge = float(np.finfo(np.float64).max)
        for _, bucket in self._backend.range_query(0.0, huge):
            yield from bucket

    def __len__(self) -> int:
        return self._size
