"""Learned Bloom filters: LBF, Sandwiched LBF, and Partitioned LBF.

The learned Bloom filter (Kraska et al., 2018) scores keys with a
classifier; keys the model is confident about skip the bit array, the
rest fall through to a *backup* Bloom filter that restores the
no-false-negative guarantee.  Mitzenmacher (2018) sandwiches the model
between two Bloom filters; Vaidya et al. (2020) partition the score range
and give each region its own tuned backup filter.

All three are implemented over the same classifier substrate
(:class:`repro.models.classifier.LogisticClassifier` with simple scalar
features), so their FPR-vs-bits trade-offs are directly comparable in the
E6 benchmark.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.baselines.bloom import BloomFilter
from repro.core.interfaces import MembershipFilter
from repro.models.classifier import LogisticClassifier, ScalarFeaturizer

__all__ = [
    "LearnedBloomFilter",
    "SandwichedLearnedBloomFilter",
    "PartitionedLearnedBloomFilter",
]


def _synthesize_negatives(keys: np.ndarray, count: int, seed: int = 99) -> np.ndarray:
    """Generate non-member keys spanning the key range for training."""
    rng = np.random.default_rng(seed)
    lo = float(keys.min())
    hi = float(keys.max())
    span = (hi - lo) or 1.0
    key_set = set(float(k) for k in keys)
    out: list[float] = []
    while len(out) < count:
        for c in rng.uniform(lo - 0.2 * span, hi + 0.2 * span, count):
            if float(c) not in key_set:
                out.append(float(c))
                if len(out) == count:
                    break
    return np.asarray(out)


class LearnedBloomFilter(MembershipFilter):
    """Classifier + backup Bloom filter (the original LBF).

    Args:
        bits_budget: total bit budget; the model's bytes are charged
            against it and the remainder goes to the backup filter.
        threshold_fpr: fraction of *negatives* allowed through the model
            (drives the score threshold tau).
        seed: RNG seed for synthetic training negatives.
    """

    name = "learned-bloom"

    def __init__(self, bits_budget: int = 65536, threshold_fpr: float = 0.005,
                 seed: int = 99) -> None:
        super().__init__()
        if bits_budget < 64:
            raise ValueError("bits_budget must be >= 64")
        self.bits_budget = bits_budget
        self.threshold_fpr = threshold_fpr
        self.seed = seed
        self._classifier = LogisticClassifier()
        self._featurizer = ScalarFeaturizer()
        self._tau = 1.0
        self._backup: BloomFilter | None = None

    def build(self, keys: Iterable[float], negatives: np.ndarray | None = None) -> "LearnedBloomFilter":
        key_arr = np.asarray([float(k) for k in keys])
        if key_arr.size == 0:
            raise ValueError("cannot build a filter over zero keys")
        if negatives is None:
            negatives = _synthesize_negatives(key_arr, key_arr.size, seed=self.seed)
        combined_keys = np.concatenate([key_arr, negatives])
        self._featurizer = ScalarFeaturizer.fit(combined_keys)
        features = self._featurizer.transform(combined_keys)
        labels = np.concatenate([np.ones(key_arr.size), np.zeros(negatives.size)])
        self._classifier.fit(features, labels)

        # tau = the score above which only `threshold_fpr` of negatives fall.
        neg_scores = self._classifier.predict_proba(self._featurizer.transform(negatives))
        self._tau = float(np.quantile(neg_scores, 1.0 - self.threshold_fpr))
        self._tau = min(max(self._tau, 1e-6), 1.0)

        pos_scores = self._classifier.predict_proba(self._featurizer.transform(key_arr))
        fallthrough = key_arr[pos_scores < self._tau]
        model_bits = self._classifier.size_bytes * 8
        backup_bits = max(64, self.bits_budget - model_bits)
        self._backup = BloomFilter(bits=backup_bits)
        self._backup.build(fallthrough)
        self.stats.size_bytes = (model_bits + backup_bits + 7) // 8
        self.stats.extra["fallthrough_keys"] = int(fallthrough.size)
        self.stats.extra["tau"] = self._tau
        return self

    def might_contain(self, key: float) -> bool:
        score = float(self._classifier.predict_proba(self._featurizer.transform(np.array([key])))[0])
        self.stats.model_predictions += 1
        if score >= self._tau:
            return True
        return self._backup.might_contain(key)


class SandwichedLearnedBloomFilter(MembershipFilter):
    """Bloom -> classifier -> Bloom (Mitzenmacher, 2018).

    The pre-filter rejects most negatives cheaply before the model runs,
    which provably improves the FPR achievable per bit.

    Args:
        bits_budget: total bits split between pre- and backup filters.
        pre_fraction: fraction of the (non-model) bits for the pre-filter.
        threshold_fpr: model threshold, as in :class:`LearnedBloomFilter`.
    """

    name = "sandwiched-bloom"

    def __init__(self, bits_budget: int = 65536, pre_fraction: float = 0.3,
                 threshold_fpr: float = 0.01, seed: int = 99) -> None:
        super().__init__()
        if not 0.0 < pre_fraction < 1.0:
            raise ValueError("pre_fraction must be in (0, 1)")
        self.bits_budget = bits_budget
        self.pre_fraction = pre_fraction
        self.threshold_fpr = threshold_fpr
        self.seed = seed
        self._pre: BloomFilter | None = None
        self._classifier = LogisticClassifier()
        self._featurizer = ScalarFeaturizer()
        self._tau = 1.0
        self._backup: BloomFilter | None = None

    def build(self, keys: Iterable[float], negatives: np.ndarray | None = None) -> "SandwichedLearnedBloomFilter":
        key_arr = np.asarray([float(k) for k in keys])
        if key_arr.size == 0:
            raise ValueError("cannot build a filter over zero keys")
        if negatives is None:
            negatives = _synthesize_negatives(key_arr, key_arr.size, seed=self.seed)
        combined_keys = np.concatenate([key_arr, negatives])
        self._featurizer = ScalarFeaturizer.fit(combined_keys)
        features = self._featurizer.transform(combined_keys)
        labels = np.concatenate([np.ones(key_arr.size), np.zeros(negatives.size)])
        self._classifier.fit(features, labels)
        neg_scores = self._classifier.predict_proba(self._featurizer.transform(negatives))
        self._tau = float(np.quantile(neg_scores, 1.0 - self.threshold_fpr))
        self._tau = min(max(self._tau, 1e-6), 1.0)

        model_bits = self._classifier.size_bytes * 8
        usable = max(128, self.bits_budget - model_bits)
        pre_bits = max(64, int(usable * self.pre_fraction))
        self._pre = BloomFilter(bits=pre_bits)
        self._pre.build(key_arr)
        pos_scores = self._classifier.predict_proba(self._featurizer.transform(key_arr))
        fallthrough = key_arr[pos_scores < self._tau]
        self._backup = BloomFilter(bits=max(64, usable - pre_bits))
        self._backup.build(fallthrough)
        self.stats.size_bytes = (model_bits + usable + 7) // 8
        self.stats.extra["fallthrough_keys"] = int(fallthrough.size)
        return self

    def might_contain(self, key: float) -> bool:
        if not self._pre.might_contain(key):
            return False
        score = float(self._classifier.predict_proba(self._featurizer.transform(np.array([key])))[0])
        self.stats.model_predictions += 1
        if score >= self._tau:
            return True
        return self._backup.might_contain(key)


class PartitionedLearnedBloomFilter(MembershipFilter):
    """PLBF (Vaidya et al., 2020): per-score-region backup filters.

    The score range is cut into ``regions`` quantile buckets; each region
    gets its own Bloom filter whose false-positive budget follows the
    paper's optimal allocation, FPR_i proportional to h_i / g_i (key
    density over negative density in the region), normalised to meet the
    overall target.  Regions where keys dominate get cheap, permissive
    filters; regions where negatives dominate get tight ones.
    """

    name = "partitioned-bloom"

    def __init__(self, bits_budget: int = 65536, regions: int = 5,
                 target_fpr: float = 0.01, seed: int = 99) -> None:
        super().__init__()
        if regions < 2:
            raise ValueError("regions must be >= 2")
        self.bits_budget = bits_budget
        self.regions = regions
        self.target_fpr = target_fpr
        self.seed = seed
        self._classifier = LogisticClassifier()
        self._featurizer = ScalarFeaturizer()
        self._edges = np.empty(0)
        self._filters: list[BloomFilter | None] = []

    def build(self, keys: Iterable[float], negatives: np.ndarray | None = None) -> "PartitionedLearnedBloomFilter":
        key_arr = np.asarray([float(k) for k in keys])
        if key_arr.size == 0:
            raise ValueError("cannot build a filter over zero keys")
        if negatives is None:
            negatives = _synthesize_negatives(key_arr, key_arr.size, seed=self.seed)
        combined_keys = np.concatenate([key_arr, negatives])
        self._featurizer = ScalarFeaturizer.fit(combined_keys)
        features = self._featurizer.transform(combined_keys)
        labels = np.concatenate([np.ones(key_arr.size), np.zeros(negatives.size)])
        self._classifier.fit(features, labels)

        pos_scores = self._classifier.predict_proba(self._featurizer.transform(key_arr))
        neg_scores = self._classifier.predict_proba(self._featurizer.transform(negatives))
        # Region edges: score quantiles of the combined distribution.
        combined = np.concatenate([pos_scores, neg_scores])
        self._edges = np.quantile(combined, np.linspace(0, 1, self.regions + 1))[1:-1]

        pos_region = np.searchsorted(self._edges, pos_scores)
        neg_region = np.searchsorted(self._edges, neg_scores)
        h = np.array([(pos_region == r).mean() for r in range(self.regions)])
        g = np.array([(neg_region == r).mean() for r in range(self.regions)])
        g = np.maximum(g, 1e-6)
        ratio = np.maximum(h, 1e-6) / g
        # Optimal allocation: f_i = min(1, target * ratio_i / sum(g_i * ratio_i...)).
        scale = self.target_fpr / float(np.sum(g * np.minimum(ratio, 1.0 / self.target_fpr)))
        fprs = np.clip(ratio * scale * self.regions, 1e-5, 1.0)

        model_bits = self._classifier.size_bytes * 8
        usable = max(128 * self.regions, self.bits_budget - model_bits)
        # Size regions proportionally to the bits their (n_i, fpr_i) need.
        wanted = []
        for r in range(self.regions):
            n_r = int((pos_region == r).sum())
            if n_r == 0 or fprs[r] >= 1.0:
                wanted.append(0)
            else:
                wanted.append(max(64, int(-n_r * np.log(fprs[r]) / (np.log(2) ** 2))))
        total_wanted = sum(wanted) or 1
        self._filters = []
        for r in range(self.regions):
            if wanted[r] == 0:
                self._filters.append(None)  # always-accept region
                continue
            bits = max(64, int(usable * wanted[r] / total_wanted))
            flt = BloomFilter(bits=bits)
            flt.build(key_arr[pos_region == r])
            self._filters.append(flt)
        self.stats.size_bytes = (model_bits + usable + 7) // 8
        self.stats.extra["region_fprs"] = [float(f) for f in fprs]
        return self

    def might_contain(self, key: float) -> bool:
        score = float(self._classifier.predict_proba(self._featurizer.transform(np.array([key])))[0])
        self.stats.model_predictions += 1
        region = int(np.searchsorted(self._edges, score))
        flt = self._filters[region]
        if flt is None:
            return True
        return flt.might_contain(key)
