"""BOURBON — Dai et al., 2020: a learned index for log-structured merge trees.

BOURBON attaches error-bounded piecewise-linear models to the immutable
sorted runs (sstables) of an LSM-tree: run files never change after
creation, which makes them ideal learned-index targets.  Lookups inside a
run predict with the run's model and correct within the error bound,
replacing the per-run binary search.

Here the substrate is :class:`repro.baselines.lsm.LSMTreeIndex`; this
class overrides exactly the two hooks that BOURBON changes — model
construction at run creation and in-run search.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.lsm import LSMTreeIndex, SortedRun
from repro.models.pla import Segment, segment_stream
from repro.onedim._search import bounded_binary_search

__all__ = ["BourbonLSM"]


class _RunModel:
    """PLA segments + segment-key directory for one sorted run."""

    __slots__ = ("segments", "first_keys", "epsilon")

    def __init__(self, segments: list[Segment], epsilon: int) -> None:
        self.segments = segments
        self.first_keys = np.array([seg.key for seg in segments])
        self.epsilon = epsilon

    @property
    def size_bytes(self) -> int:
        return sum(seg.size_bytes for seg in self.segments) + 8 * len(self.segments)


class BourbonLSM(LSMTreeIndex):
    """Learned LSM-tree: every sorted run carries a PLA model.

    Args:
        epsilon: per-run model error bound (positions).
        memtable_limit, max_runs: LSM knobs (see the base class).
    """

    name = "bourbon"

    def __init__(self, epsilon: int = 16, memtable_limit: int = 4096,
                 max_runs: int = 6) -> None:
        if epsilon < 1:
            raise ValueError("epsilon must be >= 1")
        self.epsilon = epsilon
        super().__init__(memtable_limit=memtable_limit, max_runs=max_runs)

    def _make_run_index(self, keys: np.ndarray) -> _RunModel | None:
        if keys.size == 0:
            return None
        segments = segment_stream(keys, float(self.epsilon))
        self.stats.extra["models_built"] = self.stats.extra.get("models_built", 0) + 1
        return _RunModel(segments, self.epsilon)

    def _search_run(self, run: SortedRun, key: float) -> int:
        model: _RunModel | None = run.model
        if model is None or not model.segments:
            return super()._search_run(run, key)
        self.stats.model_predictions += 1
        # Route to the covering segment (last first-key <= key).
        seg_idx = int(np.searchsorted(model.first_keys, key, side="right")) - 1
        seg_idx = min(max(seg_idx, 0), len(model.segments) - 1)
        seg = model.segments[seg_idx]
        predicted = int(np.clip(round(seg.predict(key)), seg.first, seg.last - 1))
        return bounded_binary_search(run.keys, key, predicted, model.epsilon + 1, self.stats)

    def model_size_bytes(self) -> int:
        """Total bytes of the learned models across all runs."""
        return sum(
            run.model.size_bytes for run in self._runs if isinstance(run.model, _RunModel)
        )
