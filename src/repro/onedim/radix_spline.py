"""RadixSpline — Kipf et al., 2020.

A single-pass learned index: fit an error-bounded greedy spline over the
sorted keys, then build a radix table over the top ``radix_bits`` bits of
the (offset-shifted) keys pointing at the first spline knot per radix
prefix.  Lookups use the radix table to narrow the knot search, the
spline to predict a position, and a bounded binary search to correct.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.interfaces import OneDimIndex, as_object_array
from repro.models.spline import GreedySpline, fit_greedy_spline
from repro.onedim._search import bounded_binary_search, lower_bound

__all__ = ["RadixSplineIndex"]


class RadixSplineIndex(OneDimIndex):
    """Radix table + greedy spline (immutable, pure).

    Args:
        max_error: spline corridor half-width (default 32 positions).
        radix_bits: log2 of the radix table size (default 12).
    """

    name = "radix-spline"

    def __init__(self, max_error: int = 32, radix_bits: int = 12) -> None:
        super().__init__()
        if max_error < 1:
            raise ValueError("max_error must be >= 1")
        if not 1 <= radix_bits <= 24:
            raise ValueError("radix_bits must be in [1, 24]")
        self.max_error = max_error
        self.radix_bits = radix_bits
        self._keys = np.empty(0)
        self._values: list[object] = []
        self._spline: GreedySpline | None = None
        self._knot_keys = np.empty(0)
        self._knot_positions = np.empty(0)
        self._values_arr = np.empty(0, dtype=object)
        self._radix_table = np.empty(0, dtype=np.int64)
        self._key_min = 0.0
        self._key_span = 1.0
        self._true_error = 0

    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "RadixSplineIndex":
        self._keys, self._values = self._prepare(keys, values)
        n = self._keys.size
        self._built = True
        if n == 0:
            self._spline = GreedySpline(knots=[], max_error=self.max_error)
            self._radix_table = np.zeros(2, dtype=np.int64)
            return self

        self._spline = fit_greedy_spline(self._keys, float(self.max_error))
        self._knot_keys = np.array([k.key for k in self._spline.knots])
        self._knot_positions = np.array([k.position for k in self._spline.knots])
        self._values_arr = as_object_array(self._values)

        # Measure the spline's actual max error over the data (also covers
        # the duplicate-key corner where the corridor guarantee is void).
        preds = np.array([self._spline.predict(float(k)) for k in self._keys])
        self._true_error = int(np.ceil(np.max(np.abs(preds - np.arange(n))))) if n else 0

        # Radix table over the normalised key prefix.
        self._key_min = float(self._keys[0])
        self._key_span = float(self._keys[-1] - self._keys[0]) or 1.0
        table_size = 1 << self.radix_bits
        prefixes = self._prefix_array(self._knot_keys)
        # radix_table[p] = first knot whose prefix >= p.
        self._radix_table = np.searchsorted(prefixes, np.arange(table_size + 1), side="left")

        self.stats.size_bytes = self._spline.size_bytes + 8 * int(self._radix_table.size)
        self.stats.extra["knots"] = len(self._spline.knots)
        self.stats.extra["true_error"] = self._true_error
        return self

    def _prefix(self, key: float) -> int:
        frac = (key - self._key_min) / self._key_span
        return int(np.clip(frac, 0.0, 1.0) * ((1 << self.radix_bits) - 1))

    def _prefix_array(self, keys: np.ndarray) -> np.ndarray:
        frac = (keys - self._key_min) / self._key_span
        return (np.clip(frac, 0.0, 1.0) * ((1 << self.radix_bits) - 1)).astype(np.int64)

    def _locate(self, key: float) -> int:
        n = self._keys.size
        self.stats.model_predictions += 1
        # Narrow the knot range with the radix table, then find the
        # bracketing knots by binary search within it.
        p = self._prefix(key)
        knot_lo = int(self._radix_table[p])
        knot_hi = int(self._radix_table[min(p + 1, self._radix_table.size - 1)])
        # Widening lo is safe (extra knots < key do not change the lower
        # bound); hi must stay exact because "not found in window" means
        # the answer IS the window's upper bound.
        knot_lo = max(knot_lo - 1, 0)
        knot_hi = min(knot_hi, self._knot_keys.size)
        seg = lower_bound(self._knot_keys, key, knot_lo, knot_hi, self.stats)
        seg = max(seg - 1, 0)
        knots = self._spline.knots
        if key <= knots[0].key:
            predicted = 0.0
        elif key >= knots[-1].key:
            predicted = knots[-1].position
        else:
            left = knots[seg]
            right = knots[min(seg + 1, len(knots) - 1)]
            if right.key == left.key:
                predicted = left.position
            else:
                t = (key - left.key) / (right.key - left.key)
                predicted = left.position + t * (right.position - left.position)
        pred_int = int(np.clip(round(predicted), 0, n - 1))
        return bounded_binary_search(self._keys, key, pred_int, self._true_error + 1, self.stats)

    def lookup(self, key: float) -> object | None:
        self._require_built()
        if self._keys.size == 0:
            return None
        key = float(key)
        pos = self._locate(key)
        if pos < self._keys.size and self._keys[pos] == key:
            self.stats.keys_scanned += 1
            return self._values[pos]
        return None

    def lookup_batch(self, keys) -> np.ndarray:
        """Vectorized batch lookup: radix routing, spline interpolation,
        and the bounded correction all run as whole-batch numpy kernels,
        mirroring the scalar arithmetic exactly."""
        self._require_built()
        qs = np.asarray(keys, dtype=np.float64)
        if qs.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        m = qs.size
        out = np.full(m, None, dtype=object)
        n = self._keys.size
        if n == 0 or m == 0:
            return out
        kk = self._knot_keys
        kp = self._knot_positions
        # Radix routing + knot lower bound, clipped into the table window
        # (the windowed lower bound equals the global one clipped).
        prefixes = self._prefix_array(qs)
        knot_lo = np.maximum(self._radix_table[prefixes] - 1, 0)
        knot_hi = np.minimum(
            self._radix_table[np.minimum(prefixes + 1, self._radix_table.size - 1)],
            kk.size,
        )
        seg = np.clip(np.searchsorted(kk, qs, side="left"), knot_lo, knot_hi)
        seg = np.maximum(seg - 1, 0)
        self.stats.model_predictions += m
        self.stats.comparisons += int(
            np.ceil(np.log2(np.maximum(knot_hi - knot_lo, 1).astype(np.float64))).sum()
        )
        # Spline interpolation between the bracketing knots.
        right = np.minimum(seg + 1, kk.size - 1)
        denom = kk[right] - kk[seg]
        with np.errstate(divide="ignore", invalid="ignore"):
            t = (qs - kk[seg]) / denom
            predicted = kp[seg] + t * (kp[right] - kp[seg])
        predicted = np.where(denom == 0.0, kp[seg], predicted)
        predicted = np.where(qs >= kk[-1], kp[-1], predicted)
        predicted = np.where(qs <= kk[0], 0.0, predicted)
        pred_int = np.clip(np.rint(predicted), 0, n - 1).astype(np.int64)
        # Bounded last-mile correction over clamped per-key windows.
        error = self._true_error + 1
        lo = np.maximum(pred_int - error, 0)
        hi = np.minimum(pred_int + error + 1, n)
        pos = np.clip(np.searchsorted(self._keys, qs, side="left"), lo, hi)
        self.stats.corrections += int((hi - lo).sum())
        hit = (pos < n) & (self._keys[np.minimum(pos, n - 1)] == qs)
        hit_idx = np.nonzero(hit)[0]
        self.stats.keys_scanned += int(hit_idx.size)
        out[hit_idx] = self._values_arr[pos[hit_idx]]
        return out

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low or self._keys.size == 0:
            return []
        start = self._locate(float(low))
        out: list[tuple[float, object]] = []
        i = start
        while i < self._keys.size and self._keys[i] <= high:
            out.append((float(self._keys[i]), self._values[i]))
            self.stats.keys_scanned += 1
            i += 1
        return out

    @property
    def num_knots(self) -> int:
        """Number of spline knots (the index's size driver)."""
        return 0 if self._spline is None else len(self._spline.knots)

    def __len__(self) -> int:
        return int(self._keys.size)
