"""FITing-Tree — Galakatos et al., 2019.

The first data-aware learned index with inserts: the sorted keys are cut
into greedy error-bounded linear segments, segment boundary keys are kept
in a (here: sorted-array) directory, and each segment carries a small
*delta buffer* absorbing inserts.  When a buffer fills, the segment is
merged with its buffer and re-segmented, preserving the error bound.

This is the survey's canonical *mutable pure / fixed layout / delta
buffer* index.
"""

from __future__ import annotations

import bisect
from typing import Sequence

import numpy as np

from repro.core.interfaces import MutableOneDimIndex
from repro.models.pla import segment_stream
from repro.onedim._search import bounded_binary_search

__all__ = ["FITingTreeIndex"]


class _FSegment:
    """One linear segment: sorted key/value arrays + insert buffer."""

    __slots__ = ("first_key", "slope", "anchor_pos", "keys", "values",
                 "buf_keys", "buf_values")

    def __init__(self, first_key: float, slope: float, anchor_pos: float,
                 keys: np.ndarray, values: list[object]) -> None:
        self.first_key = first_key
        self.slope = slope
        self.anchor_pos = anchor_pos  # local position predicted at first_key
        self.keys = keys
        self.values = values
        self.buf_keys: list[float] = []
        self.buf_values: list[object] = []


class FITingTreeIndex(MutableOneDimIndex):
    """FITing-Tree with per-segment delta buffers.

    Args:
        epsilon: segment error bound (positions).
        buffer_size: inserts per segment before merge + re-segmentation.
    """

    name = "fiting-tree"

    def __init__(self, epsilon: int = 64, buffer_size: int = 64) -> None:
        super().__init__()
        if epsilon < 1:
            raise ValueError("epsilon must be >= 1")
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        self.epsilon = epsilon
        self.buffer_size = buffer_size
        self._segments: list[_FSegment] = []
        self._boundaries: list[float] = []  # first_key per segment
        self._size = 0

    # -- construction --------------------------------------------------------
    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "FITingTreeIndex":
        arr, vals = self._prepare(keys, values)
        self._segments = []
        self._boundaries = []
        self._size = int(arr.size)
        self._built = True
        if arr.size:
            self._segments = self._make_segments(arr, vals)
            self._boundaries = [seg.first_key for seg in self._segments]
        self._refresh_size()
        return self

    def _make_segments(self, arr: np.ndarray, vals: list[object]) -> list[_FSegment]:
        """Epsilon-bounded segmentation of ``arr``.  Build passes the
        whole key set once; on the insert path the argument is one
        capacity-bounded segment plus its buffer, not the full index."""
        segments = []
        for seg in segment_stream(arr, float(self.epsilon)):
            keys = arr[seg.first:seg.last].copy()
            values = vals[seg.first:seg.last]
            # Convert the global-position anchor to local positions.
            local_anchor = seg.anchor_pos - seg.first
            segments.append(_FSegment(seg.key, seg.slope, local_anchor, keys, values))
        return segments

    def _refresh_size(self) -> None:
        self.stats.size_bytes = sum(
            40 + 16 * int(s.keys.size) + 16 * len(s.buf_keys) for s in self._segments
        )
        self.stats.extra["segments"] = len(self._segments)

    # -- segment routing ------------------------------------------------------
    def _segment_for(self, key: float) -> int:
        idx = bisect.bisect_right(self._boundaries, key) - 1
        self.stats.comparisons += max(1, len(self._boundaries).bit_length())
        return max(idx, 0)

    def _local_locate(self, seg: _FSegment, key: float) -> int:
        self.stats.model_predictions += 1
        raw = seg.slope * (key - seg.first_key) + seg.anchor_pos
        predicted = int(np.clip(round(raw), 0, max(seg.keys.size - 1, 0)))
        return bounded_binary_search(seg.keys, key, predicted, self.epsilon + 1, self.stats)

    # -- reads ------------------------------------------------------------------
    def lookup(self, key: float) -> object | None:
        self._require_built()
        if not self._segments:
            return None
        key = float(key)
        seg = self._segments[self._segment_for(key)]
        self.stats.nodes_visited += 1
        pos = self._local_locate(seg, key)
        if pos < seg.keys.size and seg.keys[pos] == key:
            self.stats.keys_scanned += 1
            return seg.values[pos]
        bpos = bisect.bisect_left(seg.buf_keys, key)
        self.stats.comparisons += max(1, len(seg.buf_keys).bit_length())
        if bpos < len(seg.buf_keys) and seg.buf_keys[bpos] == key:
            self.stats.keys_scanned += 1
            return seg.buf_values[bpos]
        return None

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low or not self._segments:
            return []
        low = float(low)
        high = float(high)
        start_seg = self._segment_for(low)
        out: list[tuple[float, object]] = []
        for si in range(start_seg, len(self._segments)):
            seg = self._segments[si]
            # Keys (run or buffer) in segment i > 0 are >= its boundary
            # key; segment 0 may hold buffered keys below it.
            if si > 0 and seg.first_key > high:
                break
            merged: list[tuple[float, object]] = []
            lo_i = int(np.searchsorted(seg.keys, low, side="left"))
            hi_i = int(np.searchsorted(seg.keys, high, side="right"))
            merged.extend((float(seg.keys[i]), seg.values[i]) for i in range(lo_i, hi_i))
            b_lo = bisect.bisect_left(seg.buf_keys, low)
            b_hi = bisect.bisect_right(seg.buf_keys, high)
            merged.extend(zip(seg.buf_keys[b_lo:b_hi], seg.buf_values[b_lo:b_hi]))
            merged.sort(key=lambda kv: kv[0])
            out.extend(merged)
            self.stats.keys_scanned += len(merged)
        return out

    # -- writes -------------------------------------------------------------------
    def insert(self, key: float, value: object | None = None) -> None:
        self._require_built()
        key = float(key)
        if not self._segments:
            self._segments = [_FSegment(key, 0.0, 0.0, np.array([key]), [value])]
            self._boundaries = [key]
            self._size = 1
            self._refresh_size()
            return
        si = self._segment_for(key)
        seg = self._segments[si]
        # Replace if present in the main array.
        pos = self._local_locate(seg, key)
        if pos < seg.keys.size and seg.keys[pos] == key:
            seg.values[pos] = value
            return
        bpos = bisect.bisect_left(seg.buf_keys, key)
        if bpos < len(seg.buf_keys) and seg.buf_keys[bpos] == key:
            seg.buf_values[bpos] = value
            return
        seg.buf_keys.insert(bpos, key)
        seg.buf_values.insert(bpos, value)
        self._size += 1
        if len(seg.buf_keys) > self.buffer_size:
            self._merge_segment(si)
        self._refresh_size()

    def _merge_segment(self, si: int) -> None:
        """Merge a segment with its buffer and re-segment it in place."""
        seg = self._segments[si]
        all_keys = np.concatenate([seg.keys, np.asarray(seg.buf_keys, dtype=np.float64)])
        all_values = list(seg.values) + list(seg.buf_values)
        order = np.argsort(all_keys, kind="mergesort")
        merged_keys = all_keys[order]
        merged_values = [all_values[i] for i in order]
        new_segments = self._make_segments(merged_keys, merged_values)
        self._segments[si:si + 1] = new_segments
        self._boundaries = [s.first_key for s in self._segments]
        self.stats.extra["merges"] = self.stats.extra.get("merges", 0) + 1

    def delete(self, key: float) -> bool:
        self._require_built()
        if not self._segments:
            return False
        key = float(key)
        si = self._segment_for(key)
        seg = self._segments[si]
        bpos = bisect.bisect_left(seg.buf_keys, key)
        if bpos < len(seg.buf_keys) and seg.buf_keys[bpos] == key:
            del seg.buf_keys[bpos]
            del seg.buf_values[bpos]
            self._size -= 1
            return True
        pos = self._local_locate(seg, key)
        if pos < seg.keys.size and seg.keys[pos] == key:
            # Deleting from the array shifts positions, voiding the model's
            # bound — rebuild this segment (cheap: it is one segment).
            seg.keys = np.delete(seg.keys, pos)
            del seg.values[pos]
            self._size -= 1
            if seg.keys.size or seg.buf_keys:
                # Re-segment even when only buffered keys remain — dropping
                # the segment here would silently lose its insert buffer.
                self._merge_segment(si)
            else:
                del self._segments[si]
                self._boundaries = [s.first_key for s in self._segments]
            self._refresh_size()
            return True
        return False

    @property
    def num_segments(self) -> int:
        """Current number of linear segments."""
        return len(self._segments)

    def __len__(self) -> int:
        return self._size
