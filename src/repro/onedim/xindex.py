"""XIndex-style two-layer learned index with per-group delta buffers.

XIndex (Tang et al., 2020) targets concurrency, which a single-threaded
reproduction cannot show; what it *structurally* contributes — and what
this class reproduces — is the two-layer design: a root directory of
rank-partitioned groups, each holding a trained linear model over its
sorted run plus a delta buffer for inserts, with per-group compaction
that merges the buffer and retrains the model (the operation XIndex
performs in the background).
"""

from __future__ import annotations

import bisect
from typing import Sequence

import numpy as np

from repro.core.interfaces import MutableOneDimIndex
from repro.models.linear import LinearModel
from repro.onedim._search import bounded_binary_search

__all__ = ["XIndexStyleIndex"]


class _Group:
    """One group: sorted run + model + delta buffer."""

    __slots__ = ("pivot", "keys", "values", "model", "error", "buf_keys", "buf_values")

    def __init__(self, pivot: float, keys: np.ndarray, values: list[object]) -> None:
        self.pivot = pivot
        self.keys = keys
        self.values = values
        self.model = LinearModel()
        self.error = 0
        self.buf_keys: list[float] = []
        self.buf_values: list[object] = []
        self.retrain()

    def retrain(self) -> None:
        n = self.keys.size
        if n == 0:
            self.model = LinearModel()
            self.error = 0
            return
        positions = np.arange(n, dtype=np.float64)
        self.model = LinearModel.fit(self.keys, positions)
        preds = np.clip(np.rint(self.model.predict_array(self.keys)), 0, n - 1)
        self.error = int(np.max(np.abs(preds - positions)))


class XIndexStyleIndex(MutableOneDimIndex):
    """Two-layer learned index: group directory + per-group buffers.

    Args:
        group_size: target keys per group at build/compaction time.
        buffer_limit: buffered inserts per group before compaction.
    """

    name = "xindex"

    def __init__(self, group_size: int = 1024, buffer_limit: int = 128) -> None:
        super().__init__()
        if group_size < 16:
            raise ValueError("group_size must be >= 16")
        if buffer_limit < 1:
            raise ValueError("buffer_limit must be >= 1")
        self.group_size = group_size
        self.buffer_limit = buffer_limit
        self._groups: list[_Group] = []
        self._pivots: list[float] = []
        self._size = 0

    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "XIndexStyleIndex":
        arr, vals = self._prepare(keys, values)
        self._groups = []
        self._size = int(arr.size)
        self._built = True
        for start in range(0, arr.size, self.group_size):
            end = min(start + self.group_size, arr.size)
            group = _Group(float(arr[start]), arr[start:end].copy(), vals[start:end])
            self._groups.append(group)
        self._pivots = [g.pivot for g in self._groups]
        self._refresh_size()
        return self

    def _refresh_size(self) -> None:
        self.stats.size_bytes = sum(
            24 + 16 * int(g.keys.size) + 16 * len(g.buf_keys) for g in self._groups
        )
        self.stats.extra["groups"] = len(self._groups)

    def _group_for(self, key: float) -> _Group | None:
        if not self._groups:
            return None
        idx = bisect.bisect_right(self._pivots, key) - 1
        self.stats.comparisons += max(1, len(self._pivots).bit_length())
        return self._groups[max(idx, 0)]

    # -- reads ---------------------------------------------------------------
    def lookup(self, key: float) -> object | None:
        self._require_built()
        key = float(key)
        group = self._group_for(key)
        if group is None:
            return None
        self.stats.nodes_visited += 1
        if group.keys.size:
            self.stats.model_predictions += 1
            predicted = int(np.clip(round(group.model.predict(key)), 0, group.keys.size - 1))
            pos = bounded_binary_search(group.keys, key, predicted, group.error + 1, self.stats)
            if pos < group.keys.size and group.keys[pos] == key:
                self.stats.keys_scanned += 1
                return group.values[pos]
        bpos = bisect.bisect_left(group.buf_keys, key)
        if bpos < len(group.buf_keys) and group.buf_keys[bpos] == key:
            self.stats.keys_scanned += 1
            return group.buf_values[bpos]
        return None

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low or not self._groups:
            return []
        low = float(low)
        high = float(high)
        start = max(bisect.bisect_right(self._pivots, low) - 1, 0)
        out: list[tuple[float, object]] = []
        for gi in range(start, len(self._groups)):
            group = self._groups[gi]
            # Every key (run or buffer) in group i > 0 is >= its pivot, so
            # once pivots pass `high` nothing further can match.  Group 0
            # may hold keys below its pivot and is always scanned.
            if gi > 0 and group.pivot > high:
                break
            merged: list[tuple[float, object]] = []
            lo_i = int(np.searchsorted(group.keys, low, side="left"))
            hi_i = int(np.searchsorted(group.keys, high, side="right"))
            merged.extend((float(group.keys[i]), group.values[i]) for i in range(lo_i, hi_i))
            b_lo = bisect.bisect_left(group.buf_keys, low)
            b_hi = bisect.bisect_right(group.buf_keys, high)
            merged.extend(zip(group.buf_keys[b_lo:b_hi], group.buf_values[b_lo:b_hi]))
            merged.sort(key=lambda kv: kv[0])
            out.extend(merged)
            self.stats.keys_scanned += len(merged)
        return out

    # -- writes --------------------------------------------------------------
    def insert(self, key: float, value: object | None = None) -> None:
        self._require_built()
        key = float(key)
        group = self._group_for(key)
        if group is None:
            self._groups = [_Group(key, np.array([key]), [value])]
            self._pivots = [key]
            self._size = 1
            return
        # Replace in the run if present.
        if group.keys.size:
            predicted = int(np.clip(round(group.model.predict(key)), 0, group.keys.size - 1))
            pos = bounded_binary_search(group.keys, key, predicted, group.error + 1, self.stats)
            if pos < group.keys.size and group.keys[pos] == key:
                group.values[pos] = value
                return
        bpos = bisect.bisect_left(group.buf_keys, key)
        if bpos < len(group.buf_keys) and group.buf_keys[bpos] == key:
            group.buf_values[bpos] = value
            return
        group.buf_keys.insert(bpos, key)
        group.buf_values.insert(bpos, value)
        self._size += 1
        if len(group.buf_keys) > self.buffer_limit:
            self._compact(group)
        self._refresh_size()

    def _compact(self, group: _Group) -> None:
        """Merge the buffer into the run, retrain, split oversized groups.

        Capacity-bounded: one group's run and buffer, and groups split
        once they exceed ``2 * group_size`` — never the whole key set.
        """
        all_keys = np.concatenate([group.keys, np.asarray(group.buf_keys)])
        all_values = list(group.values) + list(group.buf_values)
        order = np.argsort(all_keys, kind="mergesort")
        merged_keys = all_keys[order]
        merged_values = [all_values[i] for i in order]
        gi = self._groups.index(group)
        if merged_keys.size > 2 * self.group_size:
            replacements = []
            for start in range(0, merged_keys.size, self.group_size):
                end = min(start + self.group_size, merged_keys.size)
                replacements.append(_Group(float(merged_keys[start]),
                                           merged_keys[start:end].copy(),
                                           merged_values[start:end]))
            self._groups[gi:gi + 1] = replacements
        else:
            group.keys = merged_keys
            group.values = merged_values
            group.buf_keys = []
            group.buf_values = []
            group.pivot = min(group.pivot, float(merged_keys[0]))
            group.retrain()
        self._pivots = [g.pivot for g in self._groups]
        self.stats.extra["compactions"] = self.stats.extra.get("compactions", 0) + 1

    def delete(self, key: float) -> bool:
        self._require_built()
        key = float(key)
        group = self._group_for(key)
        if group is None:
            return False
        bpos = bisect.bisect_left(group.buf_keys, key)
        if bpos < len(group.buf_keys) and group.buf_keys[bpos] == key:
            del group.buf_keys[bpos]
            del group.buf_values[bpos]
            self._size -= 1
            return True
        if group.keys.size:
            predicted = int(np.clip(round(group.model.predict(key)), 0, group.keys.size - 1))
            pos = bounded_binary_search(group.keys, key, predicted, group.error + 1, self.stats)
            if pos < group.keys.size and group.keys[pos] == key:
                group.keys = np.delete(group.keys, pos)
                del group.values[pos]
                group.retrain()
                self._size -= 1
                return True
        return False

    @property
    def num_groups(self) -> int:
        """Current number of groups in the directory."""
        return len(self._groups)

    def __len__(self) -> int:
        return self._size
