"""S3-style learned skip list (Zhang et al., 2019).

S3 accelerates a skip list with learned models: instead of descending the
probabilistic tower levels, a model predicts where in the bottom-level
chain a key lives, and the search starts there.  Updates go through the
ordinary skip-list machinery; the model guide is rebuilt after enough
updates accumulate (the paper's periodically refreshed "neural-guided"
lanes, with a linear-segment model standing in for the tiny NN).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.skiplist import SkipListIndex, _SkipNode
from repro.models.pla import Segment, segment_stream
from repro.onedim._search import bounded_binary_search

__all__ = ["LearnedSkipList"]


class LearnedSkipList(SkipListIndex):
    """Skip list with a learned fast lane.

    Args:
        rebuild_every: number of updates tolerated before the learned
            guide is rebuilt from the current chain.
        guide_epsilon: error bound of the piecewise-linear guide; the
            last-mile search window stays this wide at every n (a
            single global model's error would grow with n).
        seed: tower RNG seed (see :class:`SkipListIndex`).
    """

    name = "learned-skiplist"

    def __init__(self, rebuild_every: int = 512, guide_epsilon: int = 16,
                 seed: int = 42) -> None:
        super().__init__(seed=seed)
        if rebuild_every < 1:
            raise ValueError("rebuild_every must be >= 1")
        if guide_epsilon < 1:
            raise ValueError("guide_epsilon must be >= 1")
        self.rebuild_every = rebuild_every
        self.guide_epsilon = guide_epsilon
        self._guide_keys = np.empty(0)
        self._guide_nodes: list[_SkipNode] = []
        self._guide_segments: list[Segment] = []
        self._guide_seg_keys = np.empty(0)
        self._guide_error = 0
        self._dirty_ops = 0

    # -- guide maintenance ---------------------------------------------------
    def _rebuild_guide(self) -> None:
        """Compaction-bounded: the full level-0 walk runs once per
        ``rebuild_every`` mutations, so its cost is amortized O(n / n)
        per operation across the window that triggered it."""
        keys: list[float] = []
        nodes: list[_SkipNode] = []
        node = self._head.forward[0]
        while node is not None:
            keys.append(node.key)
            nodes.append(node)
            node = node.forward[0]
        self._guide_keys = np.asarray(keys)
        self._guide_nodes = nodes
        n = self._guide_keys.size
        if n:
            # Piecewise-linear guide: per-segment error is capped at
            # guide_epsilon regardless of n, so the last-mile window —
            # and the counted correction work — stays constant as the
            # chain grows (the E22 witness checks exactly this).
            self._guide_segments = segment_stream(
                self._guide_keys.astype(np.float64), float(self.guide_epsilon))
            self._guide_seg_keys = np.array([seg.key for seg in self._guide_segments])
            self._guide_error = int(self.guide_epsilon)
        else:
            self._guide_segments = []
            self._guide_seg_keys = np.empty(0)
            self._guide_error = 0
        self._dirty_ops = 0
        self.stats.extra["guide_rebuilds"] = self.stats.extra.get("guide_rebuilds", 0) + 1

    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "LearnedSkipList":
        super().build(keys, values)
        self._rebuild_guide()
        return self

    # -- accelerated reads ------------------------------------------------------
    def lookup(self, key: float) -> object | None:
        """Error-bounded chain walk: the guide predicts a start node and
        the walk is cut off after ``4 * (dirty_ops + guide_error + 2)``
        steps, falling back to the O(log n) tower search."""
        self._require_built()
        key = float(key)
        if self._dirty_ops >= self.rebuild_every:
            self._rebuild_guide()
        n = self._guide_keys.size
        if n == 0:
            return super().lookup(key)
        self.stats.model_predictions += 1
        seg_idx = int(np.searchsorted(self._guide_seg_keys, key, side="right")) - 1
        seg_idx = min(max(seg_idx, 0), len(self._guide_segments) - 1)
        seg = self._guide_segments[seg_idx]
        predicted = int(np.clip(round(seg.predict(key)), seg.first, max(seg.first, seg.last - 1)))
        pos = bounded_binary_search(self._guide_keys, key, predicted, self._guide_error + 1, self.stats)
        # Start walking the live chain one guide entry early: inserts since
        # the last rebuild may sit between guide entries.
        start = max(pos - 1, 0)
        node: _SkipNode | None = self._guide_nodes[start] if start < n else None
        if node is None or node.key > key:
            node = self._head.forward[0]
        steps = 0
        while node is not None and node.key < key:
            node = node.forward[0]
            steps += 1
            if steps > 4 * (self._dirty_ops + self._guide_error + 2):
                # Guide too stale to be useful: fall back to tower search.
                return super().lookup(key)
        self.stats.keys_scanned += steps
        if node is not None and node.key == key:
            return node.value
        return None

    # -- updates invalidate the guide ----------------------------------------------
    def insert(self, key: float, value: object | None = None) -> None:
        super().insert(key, value)
        self._dirty_ops += 1

    def delete(self, key: float) -> bool:
        result = super().delete(key)
        if result:
            self._dirty_ops += 1
            # A deleted node may still be referenced by the guide; rebuild
            # eagerly so stale pointers never serve reads.
            self._rebuild_guide()
        return result

    # -- built-state export ------------------------------------------------
    #: The guide holds live node references; null it during export and
    #: rebuild it from the restored chain (see SkipListIndex.export_state).
    _STATE_NODE_ATTRS = ("_head", "_guide_nodes")

    def _restore_from_chain(self) -> None:
        self._guide_nodes = []
        self._rebuild_guide()
