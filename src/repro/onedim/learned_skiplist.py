"""S3-style learned skip list (Zhang et al., 2019).

S3 accelerates a skip list with learned models: instead of descending the
probabilistic tower levels, a model predicts where in the bottom-level
chain a key lives, and the search starts there.  Updates go through the
ordinary skip-list machinery; the model guide is rebuilt after enough
updates accumulate (the paper's periodically refreshed "neural-guided"
lanes, with a linear-segment model standing in for the tiny NN).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.skiplist import SkipListIndex, _SkipNode
from repro.models.linear import LinearModel
from repro.onedim._search import bounded_binary_search

__all__ = ["LearnedSkipList"]


class LearnedSkipList(SkipListIndex):
    """Skip list with a learned fast lane.

    Args:
        rebuild_every: number of updates tolerated before the learned
            guide is rebuilt from the current chain.
        seed: tower RNG seed (see :class:`SkipListIndex`).
    """

    name = "learned-skiplist"

    def __init__(self, rebuild_every: int = 512, seed: int = 42) -> None:
        super().__init__(seed=seed)
        if rebuild_every < 1:
            raise ValueError("rebuild_every must be >= 1")
        self.rebuild_every = rebuild_every
        self._guide_keys = np.empty(0)
        self._guide_nodes: list[_SkipNode] = []
        self._guide_model = LinearModel()
        self._guide_error = 0
        self._dirty_ops = 0

    # -- guide maintenance ---------------------------------------------------
    def _rebuild_guide(self) -> None:
        keys: list[float] = []
        nodes: list[_SkipNode] = []
        node = self._head.forward[0]
        while node is not None:
            keys.append(node.key)
            nodes.append(node)
            node = node.forward[0]
        self._guide_keys = np.asarray(keys)
        self._guide_nodes = nodes
        n = self._guide_keys.size
        if n:
            positions = np.arange(n, dtype=np.float64)
            self._guide_model = LinearModel.fit(self._guide_keys, positions)
            preds = np.clip(np.rint(self._guide_model.predict_array(self._guide_keys)), 0, n - 1)
            self._guide_error = int(np.max(np.abs(preds - positions)))
        else:
            self._guide_model = LinearModel()
            self._guide_error = 0
        self._dirty_ops = 0
        self.stats.extra["guide_rebuilds"] = self.stats.extra.get("guide_rebuilds", 0) + 1

    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "LearnedSkipList":
        super().build(keys, values)
        self._rebuild_guide()
        return self

    # -- accelerated reads ------------------------------------------------------
    def lookup(self, key: float) -> object | None:
        self._require_built()
        key = float(key)
        if self._dirty_ops >= self.rebuild_every:
            self._rebuild_guide()
        n = self._guide_keys.size
        if n == 0:
            return super().lookup(key)
        self.stats.model_predictions += 1
        predicted = int(np.clip(round(self._guide_model.predict(key)), 0, n - 1))
        pos = bounded_binary_search(self._guide_keys, key, predicted, self._guide_error + 1, self.stats)
        # Start walking the live chain one guide entry early: inserts since
        # the last rebuild may sit between guide entries.
        start = max(pos - 1, 0)
        node: _SkipNode | None = self._guide_nodes[start] if start < n else None
        if node is None or node.key > key:
            node = self._head.forward[0]
        steps = 0
        while node is not None and node.key < key:
            node = node.forward[0]
            steps += 1
            if steps > 4 * (self._dirty_ops + self._guide_error + 2):
                # Guide too stale to be useful: fall back to tower search.
                return super().lookup(key)
        self.stats.keys_scanned += steps
        if node is not None and node.key == key:
            return node.value
        return None

    # -- updates invalidate the guide ----------------------------------------------
    def insert(self, key: float, value: object | None = None) -> None:
        super().insert(key, value)
        self._dirty_ops += 1

    def delete(self, key: float) -> bool:
        result = super().delete(key)
        if result:
            self._dirty_ops += 1
            # A deleted node may still be referenced by the guide; rebuild
            # eagerly so stale pointers never serve reads.
            self._rebuild_guide()
        return result

    # -- built-state export ------------------------------------------------
    #: The guide holds live node references; null it during export and
    #: rebuild it from the restored chain (see SkipListIndex.export_state).
    _STATE_NODE_ATTRS = ("_head", "_guide_nodes")

    def _restore_from_chain(self) -> None:
        self._guide_nodes = []
        self._rebuild_guide()
