"""The PGM-index — Ferragina & Vinciguerra, 2020.

The Piecewise Geometric Model index partitions the sorted keys into the
fewest epsilon-bounded linear segments (see :mod:`repro.models.pla`),
then recursively indexes the segments' first keys with the same
construction until one segment remains.  Every level narrows the search
to a window of ``2 * epsilon + 1`` positions, giving the worst-case
query bound the paper proves.

:class:`DynamicPGMIndex` adds inserts/deletes with the paper's LSM-style
construction: a logarithmic sequence of static PGM levels that are
merged on overflow (the canonical *delta-buffer* strategy in the
survey's taxonomy).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.interfaces import MutableOneDimIndex, OneDimIndex, as_object_array
from repro.models.pla import Segment, segment_stream
from repro.onedim._search import bounded_binary_search, bounded_search_batch

__all__ = ["PGMIndex", "DynamicPGMIndex"]


class PGMIndex(OneDimIndex):
    """Static multi-level PGM-index (immutable; the epsilon knob trades
    index size against query-time search window).

    Args:
        epsilon: leaf-level error bound (positions).
        epsilon_recursive: error bound of the internal levels.
    """

    name = "pgm"

    def __init__(self, epsilon: int = 64, epsilon_recursive: int = 4) -> None:
        super().__init__()
        if epsilon < 1 or epsilon_recursive < 1:
            raise ValueError("epsilon bounds must be >= 1")
        self.epsilon = epsilon
        self.epsilon_recursive = epsilon_recursive
        self._keys = np.empty(0)
        self._values: list[object] = []
        #: levels[0] = leaf segments over the data; levels[i>0] index the
        #: first-keys of the segments one level below.
        self._levels: list[list[Segment]] = []
        self._level_keys: list[np.ndarray] = []
        #: per-level flat segment parameters (key, slope, anchor_pos,
        #: first, last) for the vectorized batch-lookup path.
        self._level_arrays: list[tuple[np.ndarray, ...]] = []
        self._values_arr = np.empty(0, dtype=object)

    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "PGMIndex":
        self._keys, self._values = self._prepare(keys, values)
        self._built = True
        self._levels = []
        self._level_keys = []
        self._level_arrays = []
        self._values_arr = as_object_array(self._values)
        n = self._keys.size
        if n == 0:
            return self

        level_keys = self._keys
        epsilon = self.epsilon
        while True:
            segments = segment_stream(level_keys, float(epsilon))
            self._levels.append(segments)
            self._level_keys.append(level_keys)
            if len(segments) <= 1:
                break
            level_keys = np.array([seg.key for seg in segments])
            epsilon = self.epsilon_recursive

        for segments in self._levels:
            self._level_arrays.append((
                np.array([seg.key for seg in segments]),
                np.array([seg.slope for seg in segments]),
                np.array([seg.anchor_pos for seg in segments]),
                np.array([seg.first for seg in segments], dtype=np.int64),
                np.array([seg.last for seg in segments], dtype=np.int64),
            ))

        self.stats.size_bytes = sum(
            seg.size_bytes for level in self._levels for seg in level
        )
        self.stats.extra["levels"] = len(self._levels)
        self.stats.extra["segments"] = len(self._levels[0])
        return self

    # -- queries ------------------------------------------------------------
    def _locate(self, key: float) -> int:
        """Lower-bound position of ``key`` in the data array.

        Level-bounded: the loop walks the recursive-model hierarchy
        (O(log n) levels), doing one epsilon-bounded search per level.
        """
        # Walk levels from the top (last) down to the leaves (first).
        top = len(self._levels) - 1
        seg_idx = 0
        for level in range(top, -1, -1):
            segments = self._levels[level]
            level_keys = self._level_keys[level]
            epsilon = self.epsilon if level == 0 else self.epsilon_recursive
            if level == top:
                seg_idx = 0
            seg = segments[seg_idx]
            self.stats.model_predictions += 1
            self.stats.nodes_visited += 1
            raw = seg.predict(key)
            if not np.isfinite(raw):
                # +-inf probes (open-ended scans): saturate the prediction.
                raw = seg.first if raw < 0 else seg.last - 1
            predicted = int(np.clip(round(raw), seg.first, seg.last - 1))
            pos = bounded_binary_search(level_keys, key, predicted, epsilon + 1, self.stats)
            if level == 0:
                return pos
            # The entries of this level's key array are the first-keys of
            # the segments one level below, so `pos` is a hint for the
            # covering segment; _segment_containing walks to the exact one.
            hint = min(pos, len(self._levels[level - 1]) - 1)
            seg_idx = self._segment_containing(level - 1, hint, key)
        return 0  # pragma: no cover - loop always returns at level 0

    def _segment_containing(self, level: int, hint: int, key: float) -> int:
        """Resolve the segment index at ``level`` that covers ``key``."""
        segments = self._levels[level]
        idx = min(max(hint, 0), len(segments) - 1)
        while idx + 1 < len(segments) and segments[idx + 1].key <= key:
            idx += 1
            self.stats.comparisons += 1
        while idx > 0 and segments[idx].key > key:
            idx -= 1
            self.stats.comparisons += 1
        return idx

    def lookup(self, key: float) -> object | None:
        self._require_built()
        if self._keys.size == 0:
            return None
        key = float(key)
        pos = self._locate(key)
        if pos < self._keys.size and self._keys[pos] == key:
            self.stats.keys_scanned += 1
            return self._values[pos]
        return None

    def _locate_batch(self, qs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_locate` over a whole query batch.

        Walks the PLA levels top-down exactly like the scalar path, but
        carries an int64 array of per-query segment indexes instead of a
        single one.  The scalar ``_segment_containing`` walk resolves to
        the last segment whose first-key is <= the query (clamped to 0),
        which is one ``np.searchsorted(side='right') - 1`` per level.
        """
        top = len(self._levels) - 1
        m = qs.size
        seg_idx = np.zeros(m, dtype=np.int64)
        for level in range(top, -1, -1):
            seg_keys, slopes, anchors, firsts, lasts = self._level_arrays[level]
            level_keys = self._level_keys[level]
            epsilon = self.epsilon if level == 0 else self.epsilon_recursive
            raw = slopes[seg_idx] * (qs - seg_keys[seg_idx]) + anchors[seg_idx]
            bad = ~np.isfinite(raw)
            if bad.any():
                # +-inf probes: saturate exactly like the scalar path
                # (NaN compares false, so it saturates high there too).
                with np.errstate(invalid="ignore"):
                    raw = np.where(
                        bad,
                        np.where(raw < 0, firsts[seg_idx],
                                 lasts[seg_idx] - 1).astype(np.float64),
                        raw,
                    )
            predicted = np.clip(np.rint(raw), firsts[seg_idx],
                                lasts[seg_idx] - 1).astype(np.int64)
            self.stats.model_predictions += m
            self.stats.nodes_visited += m
            pos = bounded_search_batch(level_keys, qs, predicted,
                                       epsilon + 1, self.stats)
            if level == 0:
                return pos
            below_keys = self._level_arrays[level - 1][0]
            seg_idx = np.clip(
                np.searchsorted(below_keys, qs, side="right") - 1,
                0, below_keys.size - 1,
            )
        return np.zeros(m, dtype=np.int64)  # pragma: no cover

    def lookup_batch(self, keys) -> np.ndarray:
        """Vectorized batch lookup (element-wise equal to scalar lookups)."""
        self._require_built()
        qs = np.asarray(keys, dtype=np.float64)
        if qs.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        m = qs.size
        out = np.full(m, None, dtype=object)
        n = self._keys.size
        if n == 0 or m == 0:
            return out
        pos = self._locate_batch(qs)
        hit = (pos < n) & (self._keys[np.minimum(pos, n - 1)] == qs)
        hit_idx = np.nonzero(hit)[0]
        self.stats.keys_scanned += int(hit_idx.size)
        out[hit_idx] = self._values_arr[pos[hit_idx]]
        return out

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low or self._keys.size == 0:
            return []
        start = self._locate(float(low))
        out: list[tuple[float, object]] = []
        i = start
        while i < self._keys.size and self._keys[i] <= high:
            out.append((float(self._keys[i]), self._values[i]))
            self.stats.keys_scanned += 1
            i += 1
        return out

    @property
    def num_segments(self) -> int:
        """Leaf-level segment count (the size driver)."""
        return len(self._levels[0]) if self._levels else 0

    @property
    def num_levels(self) -> int:
        """Number of PLA levels including the leaf level."""
        return len(self._levels)

    def __len__(self) -> int:
        return int(self._keys.size)


class DynamicPGMIndex(MutableOneDimIndex):
    """Dynamic PGM: a logarithmic LSM of static PGM indexes.

    Inserts go to an unsorted buffer; when it fills, it is merged into
    the smallest static level, cascading merges like an LSM-tree.  This
    is the delta-buffer insert strategy in the survey's taxonomy, in
    contrast with ALEX/LIPP's in-place strategy.

    Args:
        epsilon: error bound of every static level.
        buffer_capacity: inserts buffered before a merge (default 256).
    """

    name = "dynamic-pgm"

    def __init__(self, epsilon: int = 64, buffer_capacity: int = 256) -> None:
        super().__init__()
        if buffer_capacity < 1:
            raise ValueError("buffer_capacity must be >= 1")
        self.epsilon = epsilon
        self.buffer_capacity = buffer_capacity
        self._buffer: dict[float, object] = {}
        self._deleted: set[float] = set()
        #: static levels, geometrically growing; level i holds <= base * 2^i keys.
        self._static: list[PGMIndex | None] = []

    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "DynamicPGMIndex":
        arr, vals = self._prepare(keys, values)
        self._buffer = {}
        self._deleted = set()
        self._static = []
        self._built = True
        if arr.size:
            index = PGMIndex(epsilon=self.epsilon).build(arr, vals)
            self._static = [None] * self._level_for(arr.size) + [index]
        self._refresh_size()
        return self

    def _level_for(self, count: int) -> int:
        level = 0
        size = self.buffer_capacity
        while size < count:
            size *= 2
            level += 1
        return level

    def _refresh_size(self) -> None:
        self.stats.size_bytes = sum(
            idx.stats.size_bytes for idx in self._static if idx is not None
        ) + 48 * len(self._buffer)
        self.stats.extra["static_levels"] = sum(1 for idx in self._static if idx is not None)

    # -- writes -----------------------------------------------------------
    def insert(self, key: float, value: object | None = None) -> None:
        self._require_built()
        key = float(key)
        self._buffer[key] = value
        self._deleted.discard(key)
        if len(self._buffer) >= self.buffer_capacity:
            self._merge_buffer()

    def delete(self, key: float) -> bool:
        self._require_built()
        key = float(key)
        present = self.lookup(key) is not None
        if not present:
            return False
        self._buffer.pop(key, None)
        self._deleted.add(key)
        return True

    def _merge_buffer(self) -> None:
        """Cascade the buffer into the static levels (LSM merge).

        Compaction-bounded: each key is rewritten once per level it
        cascades through, amortizing the merge to O(log n) per insert.
        """
        items = dict(self._buffer)
        self._buffer = {}
        level = 0
        while True:
            if level >= len(self._static):
                self._static.extend([None] * (level - len(self._static) + 1))
            existing = self._static[level]
            if existing is None:
                break
            for k, v in zip(existing._keys, existing._values):
                items.setdefault(float(k), v)
            self._static[level] = None
            level += 1
        # Apply pending tombstones during the merge.
        live = {k: v for k, v in items.items() if k not in self._deleted}
        self._deleted -= set(items)
        if live:
            keys = np.array(sorted(live))
            values = [live[float(k)] for k in keys]
            target = max(level, self._level_for(keys.size))
            if target >= len(self._static):
                self._static.extend([None] * (target - len(self._static) + 1))
            if self._static[target] is not None:
                # Cascaded into an occupied level: merge once more.
                upper = self._static[target]
                merged: dict[float, object] = {
                    float(k): v for k, v in zip(upper._keys, upper._values)
                }
                merged.update(live)
                merged = {k: v for k, v in merged.items() if k not in self._deleted}
                keys = np.array(sorted(merged))
                values = [merged[float(k)] for k in keys]
            self._static[target] = PGMIndex(epsilon=self.epsilon).build(keys, values)
        self._refresh_size()

    def compact(self) -> None:
        """Delta-merge every level (and the buffer) into one static run.

        The self-tuning rebuild fast path: equivalent to a fresh
        ``build`` over the live items — afterwards every lookup probes
        exactly one static level again — but done from the level arrays
        directly, without materializing the ``range_query`` tuple list
        an external rebuild would pay for.  Newest data wins duplicate
        keys (buffer first, then smaller levels), tombstones drop.
        """
        self._require_built()
        items: dict[float, object] = dict(self._buffer)
        for index in self._static:
            if index is None:
                continue
            for k, v in zip(index._keys, index._values):
                items.setdefault(float(k), v)
        self._buffer = {}
        live = {k: v for k, v in items.items() if k not in self._deleted}
        self._deleted = set()
        self._static = []
        if live:
            keys = np.array(sorted(live))
            values = [live[float(k)] for k in keys]
            index = PGMIndex(epsilon=self.epsilon).build(keys, values)
            self._static = [None] * self._level_for(keys.size) + [index]
        self._refresh_size()

    # -- reads -------------------------------------------------------------
    def lookup(self, key: float) -> object | None:
        """Level-bounded probe sequence: ``_static`` holds one run per
        geometric level, so at most O(log n) sub-index lookups."""
        self._require_built()
        key = float(key)
        if key in self._deleted:
            return None
        if key in self._buffer:
            self.stats.comparisons += 1
            return self._buffer[key]
        for index in self._static:
            if index is None:
                continue
            self.stats.nodes_visited += 1
            result = index.lookup(key)
            if result is not None:
                self.stats.comparisons += index.stats.comparisons
                index.stats.reset_counters()
                return result
            index.stats.reset_counters()
        return None

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low:
            return []
        merged: dict[float, object] = {}
        for index in self._static:
            if index is None:
                continue
            self.stats.nodes_visited += 1
            for k, v in index.range_query(low, high):
                merged.setdefault(k, v)
            # Fold the per-level counters into the LSM-wide accounting so
            # the cost of a range query over L levels is visible.
            self.stats.comparisons += index.stats.comparisons
            self.stats.keys_scanned += index.stats.keys_scanned
            index.stats.reset_counters()
        for k, v in self._buffer.items():
            self.stats.keys_scanned += 1
            if low <= k <= high:
                merged[k] = v
        for k in self._deleted:
            merged.pop(k, None)
        return sorted(merged.items())

    def __len__(self) -> int:
        seen: set[float] = set(self._buffer)
        for index in self._static:
            if index is not None:
                seen.update(float(k) for k in index._keys)
        return len(seen - self._deleted)
