"""Learned hashing — "Can Learned Models Replace Hash Functions?"
(Sabek et al., 2022).

Instead of a pseudo-random hash, the bucket of a key is its predicted
CDF position: ``bucket = floor(model(key) / n * num_buckets)``.  On keys
a small model can fit, this distributes *better* than random hashing
(fewer collisions, order-preserving buckets for free); on adversarial
keys it degrades toward the model's error.

:class:`LearnedHashIndex` implements a chained hash table over a
CDF-model hash with a classical multiplicative hash as the comparison
baseline (``learned=False``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.interfaces import MutableOneDimIndex
from repro.models.cdf import QuantileModel

__all__ = ["LearnedHashIndex"]

_GOLDEN = 0x9E3779B97F4A7C15


def _classic_hash(key: float, buckets: int) -> int:
    raw = int(np.float64(key).view(np.uint64))
    x = (raw * _GOLDEN) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return int(x % buckets)


class LearnedHashIndex(MutableOneDimIndex):
    """Chained hash table whose hash function is a learned CDF model.

    Args:
        buckets_per_key: table load factor knob (buckets = n * this).
        learned: use the CDF-model hash (True) or the classical
            multiplicative hash (False, the ablation baseline).
        num_quantiles: size of the CDF model.
    """

    name = "learned-hash"

    def __init__(self, buckets_per_key: float = 1.0, learned: bool = True,
                 num_quantiles: int = 128) -> None:
        super().__init__()
        if buckets_per_key <= 0:
            raise ValueError("buckets_per_key must be positive")
        self.buckets_per_key = buckets_per_key
        self.learned = learned
        self.num_quantiles = num_quantiles
        self._model = QuantileModel()
        self._buckets: list[list[tuple[float, object]]] = []
        self._size = 0

    def _bucket_of(self, key: float) -> int:
        buckets = len(self._buckets)
        if buckets == 0:
            return 0
        if self.learned:
            frac = self._model.evaluate(key)
            return min(int(frac * buckets), buckets - 1)
        return _classic_hash(key, buckets)

    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "LearnedHashIndex":
        arr, vals = self._prepare(keys, values)
        self._built = True
        self._size = int(arr.size)
        num_buckets = max(8, int(arr.size * self.buckets_per_key))
        self._buckets = [[] for _ in range(num_buckets)]
        if arr.size:
            self._model = QuantileModel.fit(arr, num_quantiles=self.num_quantiles)
            for k, v in zip(arr, vals):
                self._buckets[self._bucket_of(float(k))].append((float(k), v))
        self.stats.size_bytes = num_buckets * 8 + self._size * 24 + self._model.size_bytes
        self.stats.extra["max_chain"] = self.max_chain_length()
        return self

    # -- chain statistics (the paper's headline metric) ----------------------
    def max_chain_length(self) -> int:
        """Longest collision chain."""
        return max((len(b) for b in self._buckets), default=0)

    def mean_probe_length(self) -> float:
        """Expected probes for a uniformly random *stored* key.

        For a chain of length c, finding each member costs 1..c probes,
        so the chain contributes c*(c+1)/2 over c keys.
        """
        if self._size == 0:
            return 0.0
        total = sum(len(b) * (len(b) + 1) / 2 for b in self._buckets)
        return total / self._size

    def occupancy(self) -> float:
        """Fraction of non-empty buckets."""
        if not self._buckets:
            return 0.0
        return sum(1 for b in self._buckets if b) / len(self._buckets)

    # -- queries ----------------------------------------------------------------
    def lookup(self, key: float) -> object | None:
        """Hash to a bucket, then an occupancy-bounded chain scan (the
        bucket count is sized to the data, so expected occupancy is
        O(1); the CDF hash keeps it balanced on skew)."""
        self._require_built()
        key = float(key)
        bucket = self._buckets[self._bucket_of(key)] if self._buckets else []
        self.stats.nodes_visited += 1
        for k, v in bucket:
            self.stats.comparisons += 1
            if k == key:
                return v
        return None

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        """Range scan.

        The learned (CDF) hash is order-preserving, so only the bucket
        interval [bucket(low), bucket(high)] needs scanning; the classic
        hash must scan every bucket — exactly the trade-off the paper
        discusses.
        """
        self._require_built()
        if high < low:
            return []
        low = float(low)
        high = float(high)
        if self.learned and self._buckets:
            b_lo = self._bucket_of(low)
            b_hi = self._bucket_of(high)
            candidates = self._buckets[b_lo:b_hi + 1]
        else:
            candidates = self._buckets
        out = []
        for bucket in candidates:
            self.stats.nodes_visited += 1
            for k, v in bucket:
                self.stats.keys_scanned += 1
                if low <= k <= high:
                    out.append((k, v))
        out.sort(key=lambda kv: kv[0])
        return out

    # -- updates -----------------------------------------------------------------
    def insert(self, key: float, value: object | None = None) -> None:
        """Occupancy-bounded replace scan: the model spreads keys across
        ``num_buckets`` proportional to n, so one bucket's chain stays a
        constant expected length."""
        self._require_built()
        key = float(key)
        if not self._buckets:
            self._buckets = [[] for _ in range(8)]
        bucket = self._buckets[self._bucket_of(key)]
        for i, (k, _) in enumerate(bucket):
            if k == key:
                bucket[i] = (key, value)
                return
        bucket.append((key, value))
        self._size += 1

    def delete(self, key: float) -> bool:
        self._require_built()
        key = float(key)
        if not self._buckets:
            return False
        bucket = self._buckets[self._bucket_of(key)]
        for i, (k, _) in enumerate(bucket):
            if k == key:
                del bucket[i]
                self._size -= 1
                return True
        return False

    def __len__(self) -> int:
        return self._size
