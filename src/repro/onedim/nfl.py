"""NFL-style distribution-transforming learned index (Wu et al., 2022).

NFL ("Normalizing Flow for Learned index") observes that learned indexes
degrade on hard key distributions, and fixes the *data* instead of the
model: a lightweight monotone transformation reshapes the keys into a
nearly uniform distribution, after which a simple learned index performs
like it would on uniform data.

The published system trains a numerical normalizing flow; the monotone
transform reproduced here is the spline-interpolated empirical CDF over
a quantile sample — the same fixed point the flow converges to, with the
same O(1)-parameters/O(log sample) evaluation cost.  The back-end index
over the transformed keys is a PGM; the delta buffer makes it mutable
(the NFL paper's variant buffers inserts the same way).
"""

from __future__ import annotations

import bisect
from typing import Sequence

import numpy as np

from repro.core.interfaces import MutableOneDimIndex
from repro.models.pla import Segment, segment_stream
from repro.onedim._search import bounded_binary_search

__all__ = ["NFLIndex"]


class NFLIndex(MutableOneDimIndex):
    """Distribution transform + learned index over transformed keys.

    Args:
        num_anchors: quantile sample size of the monotone transform.
        epsilon: error bound of the back-end PLA over transformed keys.
        buffer_limit: inserts buffered before a rebuild of the back end.
    """

    name = "nfl"

    def __init__(self, num_anchors: int = 256, epsilon: int = 16,
                 buffer_limit: int = 1024) -> None:
        super().__init__()
        if num_anchors < 2:
            raise ValueError("num_anchors must be >= 2")
        if epsilon < 1:
            raise ValueError("epsilon must be >= 1")
        self.num_anchors = num_anchors
        self.epsilon = epsilon
        self.buffer_limit = buffer_limit
        self._anchors = np.empty(0)
        self._keys = np.empty(0)          # original keys, sorted
        self._transformed = np.empty(0)   # transform of _keys (also sorted)
        self._values: list[object] = []
        self._segments: list[Segment] = []
        self._segment_keys = np.empty(0)
        self._buf_keys: list[float] = []
        self._buf_values: list[object] = []

    # -- the monotone transform -------------------------------------------
    def _fit_transform(self, keys: np.ndarray) -> None:
        probs = np.linspace(0.0, 1.0, self.num_anchors)
        self._anchors = np.quantile(keys, probs)

    def transform(self, key: float) -> float:
        """Monotone map of ``key`` into [0, num_anchors - 1].

        Piecewise-linear interpolation of the empirical CDF through the
        quantile anchors; out-of-range keys extrapolate linearly off the
        end anchors so the map stays strictly monotone everywhere.
        """
        anchors = self._anchors
        n = anchors.size
        if n == 0:
            return key
        span = float(anchors[-1] - anchors[0]) or 1.0
        if key <= anchors[0]:
            return (key - float(anchors[0])) / span
        if key >= anchors[-1]:
            return (n - 1) + (key - float(anchors[-1])) / span
        i = int(np.searchsorted(anchors, key, side="right")) - 1
        i = min(i, n - 2)
        left = float(anchors[i])
        right = float(anchors[i + 1])
        frac = 0.0 if right == left else (key - left) / (right - left)
        return i + frac

    def transform_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`transform`."""
        return np.array([self.transform(float(k)) for k in keys])

    # -- construction -------------------------------------------------------
    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "NFLIndex":
        arr, vals = self._prepare(keys, values)
        self._built = True
        self._buf_keys = []
        self._buf_values = []
        self._keys = arr
        self._values = vals
        if arr.size == 0:
            self._segments = []
            self._transformed = np.empty(0)
            return self
        self._fit_transform(arr)
        self._transformed = self.transform_array(arr)
        self._segments = segment_stream(self._transformed, float(self.epsilon))
        self._segment_keys = np.array([seg.key for seg in self._segments])
        self.stats.size_bytes = (
            8 * int(self._anchors.size)
            + sum(seg.size_bytes for seg in self._segments)
        )
        self.stats.extra["segments"] = len(self._segments)
        return self

    # -- reads ----------------------------------------------------------------
    def _locate(self, key: float) -> int:
        t = self.transform(key)
        self.stats.model_predictions += 1
        seg_idx = int(np.searchsorted(self._segment_keys, t, side="right")) - 1
        seg_idx = min(max(seg_idx, 0), len(self._segments) - 1)
        seg = self._segments[seg_idx]
        predicted = int(np.clip(round(seg.predict(t)), seg.first, seg.last - 1))
        return bounded_binary_search(self._transformed, t, predicted,
                                     self.epsilon + 1, self.stats)

    def lookup(self, key: float) -> object | None:
        """Duplicate-bounded: after the learned locate, the scan covers
        only the equal-transform run plus a bisect of the small buffer."""
        self._require_built()
        key = float(key)
        if self._keys.size:
            pos = self._locate(key)
            # The transform is monotone but may collapse ties; scan the
            # tiny equal-transform run for the exact key.
            i = pos
            while i < self._keys.size and self._transformed[i] <= self.transform(key) + 1e-12:
                self.stats.keys_scanned += 1
                if self._keys[i] == key:
                    return self._values[i]
                i += 1
        bpos = bisect.bisect_left(self._buf_keys, key)
        if bpos < len(self._buf_keys) and self._buf_keys[bpos] == key:
            return self._buf_values[bpos]
        return None

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low:
            return []
        out: list[tuple[float, object]] = []
        if self._keys.size:
            start = int(np.searchsorted(self._keys, low, side="left"))
            i = start
            while i < self._keys.size and self._keys[i] <= high:
                out.append((float(self._keys[i]), self._values[i]))
                self.stats.keys_scanned += 1
                i += 1
        b_lo = bisect.bisect_left(self._buf_keys, float(low))
        b_hi = bisect.bisect_right(self._buf_keys, float(high))
        out.extend(zip(self._buf_keys[b_lo:b_hi], self._buf_values[b_lo:b_hi]))
        out.sort(key=lambda kv: kv[0])
        return out

    # -- writes -------------------------------------------------------------------
    def insert(self, key: float, value: object | None = None) -> None:
        self._require_built()
        key = float(key)
        if self._keys.size:
            pos = int(np.searchsorted(self._keys, key, side="left"))
            if pos < self._keys.size and self._keys[pos] == key:
                self._values[pos] = value
                return
        bpos = bisect.bisect_left(self._buf_keys, key)
        if bpos < len(self._buf_keys) and self._buf_keys[bpos] == key:
            self._buf_values[bpos] = value
            return
        self._buf_keys.insert(bpos, key)
        self._buf_values.insert(bpos, value)
        if len(self._buf_keys) > max(self.buffer_limit, self._keys.size // 4):
            self._rebuild()

    def _rebuild(self) -> None:
        """Fold the buffer in and refit transform + back-end index.

        Compaction-bounded: triggered only once the buffer outgrows a
        constant fraction of the back end (geometric threshold), so the
        O(n) refit is amortized O(1)-ish per insert that funded it.
        """
        merged_keys = np.concatenate([self._keys, np.asarray(self._buf_keys)])
        merged_values = list(self._values) + list(self._buf_values)
        order = np.argsort(merged_keys, kind="mergesort")
        self.build(merged_keys[order], [merged_values[i] for i in order])
        self.stats.extra["rebuilds"] = self.stats.extra.get("rebuilds", 0) + 1

    def delete(self, key: float) -> bool:
        self._require_built()
        key = float(key)
        bpos = bisect.bisect_left(self._buf_keys, key)
        if bpos < len(self._buf_keys) and self._buf_keys[bpos] == key:
            del self._buf_keys[bpos]
            del self._buf_values[bpos]
            return True
        if self._keys.size:
            pos = int(np.searchsorted(self._keys, key, side="left"))
            if pos < self._keys.size and self._keys[pos] == key:
                self._keys = np.delete(self._keys, pos)
                self._transformed = np.delete(self._transformed, pos)
                del self._values[pos]
                # Positions shifted: refit the back-end segments.
                if self._keys.size:
                    self._segments = segment_stream(self._transformed, float(self.epsilon))
                    self._segment_keys = np.array([seg.key for seg in self._segments])
                else:
                    self._segments = []
                return True
        return False

    @property
    def transformed_hardness(self) -> float:
        """Segments per key of the back end — lower means the transform
        made the data easier (the NFL claim)."""
        if self._keys.size == 0:
            return 0.0
        return len(self._segments) / self._keys.size

    def __len__(self) -> int:
        return int(self._keys.size) + len(self._buf_keys)
