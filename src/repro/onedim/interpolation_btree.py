"""IFB-tree — interpolation-friendly B+-tree (Hadian & Heinis, 2019).

A *mutable hybrid* learned index: the structure is a plain B+-tree, but
within every node the search interpolates between the node's first and
last keys instead of binary searching, falling back to a short linear
scan for correction.  On well-behaved key distributions this turns the
per-node O(log fanout) into O(1)-ish.
"""

from __future__ import annotations

from repro.baselines.btree import BPlusTreeIndex, _Node

__all__ = ["InterpolationBTreeIndex"]


class InterpolationBTreeIndex(BPlusTreeIndex):
    """B+-tree with per-node interpolation search.

    Inherits all structure maintenance (bulk load, splits, deletes) from
    :class:`BPlusTreeIndex` and overrides only the intra-node search.
    """

    name = "ifb-tree"

    def __init__(self, fanout: int = 64) -> None:
        super().__init__(fanout=fanout)

    def _interpolate(self, keys: list[float], key: float) -> int:
        """Lower-bound index of ``key`` in a node's sorted key list.

        Interpolate an initial guess, then repair with a linear scan; the
        scan length is recorded as correction effort.  Error-bounded in
        expectation: the repair walk covers the interpolation error of
        one fanout-bounded node key list, not the data array.
        """
        n = len(keys)
        if n == 0:
            return 0
        lo_key = keys[0]
        hi_key = keys[-1]
        if key <= lo_key:
            # Still need leftmost >= key semantics: if key == lo_key, 0 is
            # correct; if key < lo_key, 0 is correct too.
            self.stats.comparisons += 1
            return 0
        if key > hi_key:
            self.stats.comparisons += 1
            return n
        span = hi_key - lo_key
        guess = int((key - lo_key) / span * (n - 1)) if span > 0 else 0
        guess = min(max(guess, 0), n - 1)
        # Repair scan: move left while previous keys are >= key, then
        # right while the current key is < key.
        while guess > 0 and keys[guess - 1] >= key:
            guess -= 1
            self.stats.corrections += 1
        while guess < n and keys[guess] < key:
            guess += 1
            self.stats.corrections += 1
        return guess

    def _find_leaf(self, key: float) -> _Node:
        node = self._root
        while not node.leaf:
            self.stats.nodes_visited += 1
            idx = self._interpolate_right(node.keys, key)
            node = node.children[idx]
        self.stats.nodes_visited += 1
        return node

    def _interpolate_right(self, keys: list[float], key: float) -> int:
        """Upper-bound (bisect_right) via interpolation, for routing.

        Duplicate-bounded: the repair walk crosses only the equal-key
        run inside one fanout-limited node.
        """
        idx = self._interpolate(keys, key)
        n = len(keys)
        while idx < n and keys[idx] == key:
            idx += 1
            self.stats.corrections += 1
        return idx

    def lookup(self, key: float) -> object | None:
        self._require_built()
        key = float(key)
        leaf = self._find_leaf(key)
        idx = self._interpolate(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            self.stats.keys_scanned += 1
            return leaf.values[idx]
        return None

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low:
            return []
        leaf: _Node | None = self._find_leaf(float(low))
        out: list[tuple[float, object]] = []
        idx = self._interpolate(leaf.keys, float(low))
        while leaf is not None:
            while idx < len(leaf.keys):
                k = leaf.keys[idx]
                if k > high:
                    return out
                out.append((k, leaf.values[idx]))
                self.stats.keys_scanned += 1
                idx += 1
            leaf = leaf.next
            idx = 0
            if leaf is not None:
                self.stats.nodes_visited += 1
        return out
