"""Last-mile search helpers shared by the learned 1-d indexes.

Every learned index predicts an approximate position and then runs a
bounded *correction* search around the prediction.  These helpers
implement the two standard strategies — bounded binary search when an
error bound is known, exponential (galloping) search when it is not —
and record the search effort in the index's :class:`IndexStats`.
"""

from __future__ import annotations

import numpy as np

from repro.core.interfaces import IndexStats

__all__ = ["bounded_binary_search", "exponential_search", "lower_bound"]


def lower_bound(keys: np.ndarray, key: float, lo: int, hi: int, stats: IndexStats | None = None) -> int:
    """First index in [lo, hi) with ``keys[idx] >= key`` (plain binary)."""
    while lo < hi:
        mid = (lo + hi) // 2
        if stats is not None:
            stats.comparisons += 1
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def bounded_binary_search(keys: np.ndarray, key: float, predicted: int, error: int,
                          stats: IndexStats | None = None) -> int:
    """Lower-bound position of ``key`` within ``predicted +- error``.

    The window is clamped to the array; the caller guarantees that the
    true position lies inside it (learned indexes with an epsilon bound).
    Returns the insertion point (first index with ``keys[idx] >= key``).
    """
    n = keys.shape[0]
    lo = max(predicted - error, 0)
    hi = min(predicted + error + 1, n)
    if stats is not None:
        stats.corrections += hi - lo
    return lower_bound(keys, key, lo, hi, stats)


def exponential_search(keys: np.ndarray, key: float, predicted: int,
                       stats: IndexStats | None = None) -> int:
    """Lower-bound position of ``key`` by galloping out from ``predicted``.

    Used when no error bound is available (e.g. ALEX's model-based
    search): double the window until it brackets the key, then binary
    search inside it.  Cost is O(log of the actual error).
    """
    n = keys.shape[0]
    if n == 0:
        return 0
    pos = min(max(predicted, 0), n - 1)
    if stats is not None:
        stats.comparisons += 1
    if keys[pos] < key:
        # Answer lies in (pos, n]: gallop right.
        step = 1
        lo = pos + 1
        while pos + step < n and keys[pos + step] < key:
            if stats is not None:
                stats.comparisons += 1
            lo = pos + step + 1
            step *= 2
        hi = min(pos + step + 1, n)
        if stats is not None:
            stats.corrections += hi - lo
        return lower_bound(keys, key, lo, hi, stats)
    # keys[pos] >= key: answer lies in [0, pos], gallop left.
    step = 1
    hi = pos
    while pos - step >= 0 and keys[pos - step] >= key:
        if stats is not None:
            stats.comparisons += 1
        hi = pos - step
        step *= 2
    lo = max(pos - step, 0)
    if stats is not None:
        stats.corrections += hi - lo
    return lower_bound(keys, key, lo, hi, stats)
