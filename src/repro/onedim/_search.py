"""Last-mile search helpers shared by the learned 1-d indexes.

Every learned index predicts an approximate position and then runs a
bounded *correction* search around the prediction.  These helpers
implement the two standard strategies — bounded binary search when an
error bound is known, exponential (galloping) search when it is not —
and record the search effort in the index's :class:`IndexStats`.
"""

from __future__ import annotations

import numpy as np

from repro.core.interfaces import IndexStats

__all__ = [
    "bounded_binary_search",
    "bounded_search_batch",
    "exponential_search",
    "lower_bound",
]


def lower_bound(keys: np.ndarray, key: float, lo: int, hi: int, stats: IndexStats | None = None) -> int:
    """First index in [lo, hi) with ``keys[idx] >= key`` (plain binary)."""
    while lo < hi:
        mid = (lo + hi) // 2
        if stats is not None:
            stats.comparisons += 1
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def bounded_binary_search(keys: np.ndarray, key: float, predicted: int, error: int,
                          stats: IndexStats | None = None) -> int:
    """Lower-bound position of ``key`` within ``predicted +- error``.

    The window is clamped to the array; the caller guarantees that the
    true position lies inside it (learned indexes with an epsilon bound).
    Returns the insertion point (first index with ``keys[idx] >= key``).
    """
    n = keys.shape[0]
    lo = max(predicted - error, 0)
    hi = min(predicted + error + 1, n)
    if stats is not None:
        stats.corrections += hi - lo
    return lower_bound(keys, key, lo, hi, stats)


def exponential_search(keys: np.ndarray, key: float, predicted: int,
                       stats: IndexStats | None = None) -> int:
    """Lower-bound position of ``key`` by galloping out from ``predicted``.

    Used when no error bound is available (e.g. ALEX's model-based
    search): double the window until it brackets the key, then binary
    search inside it.  Cost is O(log of the actual error).

    ``stats.corrections`` records the actual searched window: one per
    galloped probe plus the width of the final binary-search window.
    (Counting only the binary window would report zero effort whenever
    the gallop is clamped at position 0 and the window collapses there,
    despite having probed the whole prefix.)
    """
    n = keys.shape[0]
    if n == 0:
        return 0
    pos = min(max(predicted, 0), n - 1)
    if stats is not None:
        stats.comparisons += 1
    probes = 0
    if keys[pos] < key:
        # Answer lies in (pos, n]: gallop right.
        step = 1
        lo = pos + 1
        while pos + step < n:
            probes += 1
            if stats is not None:
                stats.comparisons += 1
            if keys[pos + step] >= key:
                break
            lo = pos + step + 1
            step *= 2
        hi = min(pos + step + 1, n)
        if stats is not None:
            stats.corrections += probes + hi - lo
        return lower_bound(keys, key, lo, hi, stats)
    # keys[pos] >= key: answer lies in [0, pos], gallop left.
    step = 1
    hi = pos
    lo = 0
    while pos - step >= 0:
        probes += 1
        if stats is not None:
            stats.comparisons += 1
        if keys[pos - step] < key:
            # The probe is known smaller than key: exclude it from the
            # binary window rather than re-examining it.
            lo = pos - step + 1
            break
        hi = pos - step
        step *= 2
    if stats is not None:
        stats.corrections += probes + hi - lo
    return lower_bound(keys, key, lo, hi, stats)


def bounded_search_batch(keys: np.ndarray, queries: np.ndarray,
                         predicted: np.ndarray, errors: np.ndarray | int,
                         stats: IndexStats | None = None) -> np.ndarray:
    """Vectorized :func:`bounded_binary_search` over a whole query batch.

    Because ``keys`` is globally sorted, the lower bound restricted to the
    clamped window ``[predicted - error, predicted + error]`` equals the
    *global* lower bound clipped into that window: if the global answer
    lies left of the window every windowed position satisfies
    ``keys[idx] >= key`` (so the window's start is returned), and if it
    lies right of the window no windowed position does (so the window's
    end is returned).  One ``np.searchsorted`` over the batch therefore
    reproduces a loop of scalar calls exactly.

    Counters are aggregated per batch: ``corrections`` sums the window
    widths, ``comparisons`` the binary-search depths ``ceil(log2(w))``.

    Returns:
        int64 array of per-query insertion points.
    """
    n = keys.shape[0]
    predicted = np.asarray(predicted, dtype=np.int64)
    lo = np.maximum(predicted - errors, 0)
    hi = np.minimum(predicted + errors + 1, n)
    pos = np.clip(np.searchsorted(keys, queries, side="left"), lo, hi)
    if stats is not None:
        widths = hi - lo
        stats.corrections += int(widths.sum())
        stats.comparisons += int(
            np.ceil(np.log2(np.maximum(widths, 1).astype(np.float64))).sum()
        )
    return pos
