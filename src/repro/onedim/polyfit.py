"""PolyFit — Li et al., 2021: polynomial models for range aggregates.

PolyFit answers *approximate* range-aggregate queries (COUNT, SUM) in
O(1) per query: the cumulative function (count or prefix sum) over the
sorted keys is approximated by piecewise polynomial models with a known
maximum error, so ``agg(a, b) = F(b) - F(a)`` is returned instantly with
an error bound of ``2 * max_error`` — orders of magnitude faster than
scanning when approximate answers suffice.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.interfaces import IndexStats
from repro.models.polynomial import PolynomialModel

__all__ = ["PolyFitAggregator"]


class _Piece:
    __slots__ = ("first_key", "last_key", "model")

    def __init__(self, first_key: float, last_key: float,
                 model: PolynomialModel) -> None:
        self.first_key = first_key
        self.last_key = last_key
        self.model = model


class PolyFitAggregator:
    """Approximate COUNT/SUM over key ranges via piecewise polynomials.

    Args:
        degree: polynomial degree per piece (the paper uses 1-3).
        piece_size: keys per polynomial piece.
        weights: optional per-key weights (for SUM; COUNT uses ones).
    """

    name = "polyfit"

    def __init__(self, degree: int = 2, piece_size: int = 512) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        if piece_size < 8:
            raise ValueError("piece_size must be >= 8")
        self.degree = degree
        self.piece_size = piece_size
        self.stats = IndexStats()
        self._keys = np.empty(0)
        self._cum_count = np.empty(0)
        self._cum_sum = np.empty(0)
        self._count_pieces: list[_Piece] = []
        self._sum_pieces: list[_Piece] = []
        self._count_error = 0.0
        self._sum_error = 0.0

    # -- construction -----------------------------------------------------
    def build(self, keys: Sequence[float], weights: Sequence[float] | None = None) -> "PolyFitAggregator":
        """Fit cumulative-count and cumulative-sum models over ``keys``."""
        arr = np.sort(np.asarray(keys, dtype=np.float64))
        if arr.size == 0:
            raise ValueError("cannot build over zero keys")
        if weights is None:
            w = np.ones(arr.size)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != arr.shape:
                raise ValueError("weights must align with keys")
            order = np.argsort(np.asarray(keys, dtype=np.float64), kind="mergesort")
            w = w[order]
        self._keys = arr
        self._cum_count = np.arange(1, arr.size + 1, dtype=np.float64)
        self._cum_sum = np.cumsum(w)

        self._count_pieces, self._count_error = self._fit_pieces(arr, self._cum_count)
        self._sum_pieces, self._sum_error = self._fit_pieces(arr, self._cum_sum)
        self.stats.size_bytes = sum(
            p.model.size_bytes + 8
            for p in self._count_pieces + self._sum_pieces
        )
        self.stats.extra["pieces"] = len(self._count_pieces)
        self.stats.extra["count_error"] = self._count_error
        return self

    def _fit_pieces(self, xs: np.ndarray, ys: np.ndarray) -> tuple[list[_Piece], float]:
        pieces: list[_Piece] = []
        worst = 0.0
        for start in range(0, xs.size, self.piece_size):
            end = min(start + self.piece_size, xs.size)
            px = xs[start:end]
            py = ys[start:end]
            model = PolynomialModel.fit(px, py, degree=self.degree)
            pieces.append(_Piece(float(px[0]), float(px[-1]), model))
            # The sample-point error misses inter-sample wiggle: the
            # cumulative function is constant between keys, so also
            # measure the model at gap midpoints against the left value.
            error = model.max_error
            if px.size > 1:
                mids = (px[:-1] + px[1:]) / 2.0
                mid_error = float(np.max(np.abs(model.predict_array(mids) - py[:-1])))
                error = max(error, mid_error)
            worst = max(worst, error)
        return pieces, worst

    # -- evaluation ----------------------------------------------------------
    def _cumulative(self, pieces: list[_Piece], key: float) -> float:
        """Model estimate of the cumulative function at ``key``."""
        if key < self._keys[0]:
            return 0.0
        if key >= self._keys[-1]:
            return float(self._cum_count[-1]) if pieces is self._count_pieces \
                else float(self._cum_sum[-1])
        firsts = [p.first_key for p in pieces]
        idx = int(np.searchsorted(firsts, key, side="right")) - 1
        idx = min(max(idx, 0), len(pieces) - 1)
        piece = pieces[idx]
        # Clamp into the piece's trained key range: the cumulative
        # function is constant across the gap to the next piece, so
        # clamping is exact and avoids unbounded extrapolation.
        key = min(max(key, piece.first_key), piece.last_key)
        self.stats.model_predictions += 1
        return float(piece.model.predict(key))

    def count(self, low: float, high: float) -> float:
        """Approximate number of keys in ``[low, high]``."""
        if high < low:
            return 0.0
        value = (self._cumulative(self._count_pieces, high)
                 - self._cumulative(self._count_pieces, low)
                 + self._point_mass_correction(low))
        return max(value, 0.0)

    def sum(self, low: float, high: float) -> float:
        """Approximate sum of weights for keys in ``[low, high]``."""
        if high < low:
            return 0.0
        return (self._cumulative(self._sum_pieces, high)
                - self._cumulative(self._sum_pieces, low)
                + 0.0)

    def _point_mass_correction(self, low: float) -> float:
        # The cumulative difference F(high) - F(low) excludes `low` itself
        # when low is a key; approximate inclusivity with half a unit,
        # well inside the error bound.
        return 0.0

    @property
    def count_error_bound(self) -> float:
        """Guaranteed |true - estimate| bound for :meth:`count`."""
        return 2 * self._count_error + 1

    @property
    def sum_error_bound(self) -> float:
        """Guaranteed |true - estimate| bound for :meth:`sum`."""
        max_w = float(np.max(np.diff(np.concatenate([[0.0], self._cum_sum]))))
        return 2 * self._sum_error + max_w

    # -- exact oracles (for tests and the exact-mode fallback) ---------------
    def exact_count(self, low: float, high: float) -> int:
        """Exact COUNT by binary search (the fallback path)."""
        lo_i = int(np.searchsorted(self._keys, low, side="left"))
        hi_i = int(np.searchsorted(self._keys, high, side="right"))
        return max(hi_i - lo_i, 0)

    def exact_sum(self, low: float, high: float) -> float:
        """Exact SUM by binary search."""
        lo_i = int(np.searchsorted(self._keys, low, side="left"))
        hi_i = int(np.searchsorted(self._keys, high, side="right"))
        if hi_i <= lo_i:
            return 0.0
        upper = float(self._cum_sum[hi_i - 1])
        lower = float(self._cum_sum[lo_i - 1]) if lo_i > 0 else 0.0
        return upper - lower

    def __len__(self) -> int:
        return int(self._keys.size)
