"""Learned one-dimensional indexes (Part 1 of the tutorial)."""

from repro.onedim.alex import ALEXIndex
from repro.onedim.bourbon import BourbonLSM
from repro.onedim.fiting_tree import FITingTreeIndex
from repro.onedim.hist_tree import HistTreeIndex
from repro.onedim.hybrid_rmi import HybridRMIIndex
from repro.onedim.interpolation_btree import InterpolationBTreeIndex
from repro.onedim.learned_bloom import (
    LearnedBloomFilter,
    PartitionedLearnedBloomFilter,
    SandwichedLearnedBloomFilter,
)
from repro.onedim.learned_skiplist import LearnedSkipList
from repro.onedim.learned_hash import LearnedHashIndex
from repro.onedim.lipp import LIPPIndex
from repro.onedim.nfl import NFLIndex
from repro.onedim.pgm import DynamicPGMIndex, PGMIndex
from repro.onedim.polyfit import PolyFitAggregator
from repro.onedim.radix_spline import RadixSplineIndex
from repro.onedim.rmi import RMIIndex
from repro.onedim.snarf import SNARFFilter
from repro.onedim.string_adapter import StringIndexAdapter
from repro.onedim.xindex import XIndexStyleIndex

__all__ = [
    "ALEXIndex",
    "BourbonLSM",
    "FITingTreeIndex",
    "HistTreeIndex",
    "HybridRMIIndex",
    "InterpolationBTreeIndex",
    "LearnedBloomFilter",
    "PartitionedLearnedBloomFilter",
    "SandwichedLearnedBloomFilter",
    "LearnedSkipList",
    "LearnedHashIndex",
    "LIPPIndex",
    "NFLIndex",
    "DynamicPGMIndex",
    "PGMIndex",
    "PolyFitAggregator",
    "RadixSplineIndex",
    "RMIIndex",
    "SNARFFilter",
    "StringIndexAdapter",
    "XIndexStyleIndex",
]
