"""ALEX — Ding et al., 2020: an updatable adaptive learned index.

ALEX's signature ideas, all reproduced here:

* **Gapped arrays**: data nodes leave gaps between elements so most
  inserts move O(1) elements.  Gap slots duplicate their left occupied
  neighbour's key, so plain (exponential) search still works over the
  array.
* **Model-based inserts/layout**: when a node is (re)built, each key is
  placed at the slot its linear model predicts, making later predictions
  nearly exact.
* **Adaptive structure**: data nodes expand in place while small, and
  convert into a model-routed subtree when they exceed the node size
  limit (dynamic data layout, in-place insert strategy in the survey's
  taxonomy).

Inner nodes route with a linear model over child slots; leaves form a
doubly linked chain for range scans.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.interfaces import MutableOneDimIndex
from repro.core.state import IndexState, export_index_state
from repro.models.linear import LinearModel

__all__ = ["ALEXIndex"]


class _DataNode:
    """Gapped-array leaf with a linear model over its own slots."""

    __slots__ = ("keys", "values", "occupied", "model", "count", "prev", "next")

    def __init__(self, capacity: int) -> None:
        self.keys = np.full(capacity, -np.inf)
        self.values: list[object] = [None] * capacity
        self.occupied = np.zeros(capacity, dtype=bool)
        self.model = LinearModel()
        self.count = 0
        self.prev: _DataNode | None = None
        self.next: _DataNode | None = None

    @property
    def capacity(self) -> int:
        return int(self.keys.size)


class _InnerNode:
    """Model-routed inner node: one child per slot.

    When the data defeats linear routing (near-duplicate key clusters),
    ``boundaries`` switches the node to exact rank-split routing.
    """

    __slots__ = ("model", "children", "boundaries")

    def __init__(self, model: LinearModel, children: list,
                 boundaries: np.ndarray | None = None) -> None:
        self.model = model
        self.children = children
        self.boundaries = boundaries

    def route(self, key: float) -> int:
        if self.boundaries is not None:
            return int(np.searchsorted(self.boundaries, key, side="right"))
        raw = self.model.predict(key)
        if not np.isfinite(raw):
            return 0
        slot = int(raw)
        if slot < 0:
            return 0
        if slot >= len(self.children):
            return len(self.children) - 1
        return slot


class ALEXIndex(MutableOneDimIndex):
    """ALEX: adaptive learned index with gapped arrays.

    Args:
        max_leaf_keys: keys per data node before it becomes a subtree.
        density: target fill factor of gapped arrays (0 < density < 1).
    """

    name = "alex"

    def __init__(self, max_leaf_keys: int = 512, density: float = 0.7) -> None:
        super().__init__()
        if max_leaf_keys < 8:
            raise ValueError("max_leaf_keys must be >= 8")
        if not 0.1 < density < 0.95:
            raise ValueError("density must be in (0.1, 0.95)")
        self.max_leaf_keys = max_leaf_keys
        self.density = density
        self._root: _InnerNode | _DataNode | None = None
        self._size = 0
        self._head: _DataNode | None = None  # leftmost leaf

    # -- construction -------------------------------------------------------
    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "ALEXIndex":
        arr, vals = self._prepare(keys, values)
        self._size = int(arr.size)
        self._built = True
        self._root = self._build_subtree(arr, vals)
        self._link_leaves()
        self._refresh_size()
        return self

    def _build_subtree(self, arr: np.ndarray, vals: list[object]):
        if arr.size <= self.max_leaf_keys:
            return self._build_data_node(arr, vals)
        if float(arr[0]) == float(arr[-1]):
            # All-duplicate oversized group: splitting cannot help, so
            # keep one (large) data node rather than recurse forever.
            return self._build_data_node(arr, vals)
        return self._build_inner(arr, vals)

    def _build_inner(self, arr: np.ndarray, vals: list[object]) -> "_InnerNode":
        n = arr.size
        # Inner node: pick a slot count targeting half-full leaves.
        target = max(self.max_leaf_keys // 2, 1)
        slots = int(2 ** np.ceil(np.log2(max(n / target, 2))))
        slots = min(slots, 4096)
        positions = np.arange(n, dtype=np.float64) / n * slots
        model = LinearModel.fit(arr, positions)
        pred = np.clip(model.predict_array(arr).astype(int), 0, slots - 1)
        # Enforce monotone routing (slope >= 0 gives it already, but be safe).
        pred = np.maximum.accumulate(pred)
        if pred[0] == pred[-1]:
            # Degenerate model (near-duplicate key clusters): the linear
            # split would put everything into one child and recurse
            # forever.  Fall back to exact rank-based partitioning, with
            # equal keys pinned to one group.
            pred = (np.arange(n) * slots // n).astype(np.int64)
            for i in range(1, n):
                if arr[i] == arr[i - 1] and pred[i] != pred[i - 1]:
                    pred[i] = pred[i - 1]
            boundaries = np.empty(slots - 1)
            for s in range(1, slots):
                j = int(np.searchsorted(pred, s, side="left"))
                boundaries[s - 1] = arr[j] if j < n else np.inf
            children = []
            start = 0
            for s in range(slots):
                end = int(np.searchsorted(pred, s, side="right"))
                children.append(self._build_subtree(arr[start:end], vals[start:end]))
                start = end
            return _InnerNode(model, children, boundaries=boundaries)
        children = []
        start = 0
        for s in range(slots):
            end = int(np.searchsorted(pred, s, side="right"))
            children.append(self._build_subtree(arr[start:end], vals[start:end]))
            start = end
        return _InnerNode(model, children)

    def _build_data_node(self, arr: np.ndarray, vals: list[object]) -> _DataNode:
        """Model-based placement of ``arr`` into one gapped data node.

        Capacity-bounded on the hot path: insert-time splits call this
        with one node's keys (at most ``max_node_size`` of them), so the
        placement loops are O(1) per operation; only the initial bulk
        build sees the full array.
        """
        n = arr.size
        capacity = max(8, int(np.ceil(n / self.density)) + 1)
        node = _DataNode(capacity)
        node.count = n
        if n == 0:
            return node
        # Model-based placement: put each key where the model predicts.
        model = LinearModel.fit(arr, np.arange(n, dtype=np.float64) / max(n - 1, 1) * (capacity - 1))
        node.model = model
        preds = model.predict_array(arr)
        if not np.all(np.isfinite(preds)):
            preds = np.zeros(n)
        slots = np.clip(preds.astype(int), 0, capacity - 1)
        last = -1
        placed: list[int] = []
        overflow = False
        for i in range(n):
            s = max(int(slots[i]), last + 1)
            if s >= capacity:
                overflow = True
                break
            placed.append(s)
            last = s
        if overflow or len(placed) != n:
            placed = list(np.linspace(0, capacity - 1, n).astype(int))
            # linspace can repeat for tiny capacities; force strict increase.
            for i in range(1, n):
                if placed[i] <= placed[i - 1]:
                    placed[i] = placed[i - 1] + 1
        for i, s in enumerate(placed):
            node.keys[s] = arr[i]
            node.values[s] = vals[i]
            node.occupied[s] = True
        self._fill_gaps(node)
        return node

    @staticmethod
    def _fill_gaps(node: _DataNode) -> None:
        """Gap slots duplicate the nearest occupied key to their left."""
        current = -np.inf
        for s in range(node.capacity):
            if node.occupied[s]:
                current = node.keys[s]
            else:
                node.keys[s] = current
                node.values[s] = None

    def _link_leaves(self) -> None:
        leaves: list[_DataNode] = []

        def collect(node) -> None:
            if isinstance(node, _DataNode):
                leaves.append(node)
            else:
                for child in node.children:
                    collect(child)

        if self._root is not None:
            collect(self._root)
        for i, leaf in enumerate(leaves):
            leaf.prev = leaves[i - 1] if i > 0 else None
            leaf.next = leaves[i + 1] if i + 1 < len(leaves) else None
        self._head = leaves[0] if leaves else None

    def _refresh_size(self) -> None:
        total = 0
        nodes = 0

        def visit(node) -> None:
            nonlocal total, nodes
            nodes += 1
            if isinstance(node, _DataNode):
                total += node.capacity * 17 + 24
            else:
                total += len(node.children) * 8 + 24
                for child in node.children:
                    visit(child)

        if self._root is not None:
            visit(self._root)
        self.stats.size_bytes = total
        self.stats.extra["nodes"] = nodes

    # -- state export/restore ---------------------------------------------------
    def export_state(self) -> IndexState:
        """Sever the doubly-linked leaf chain around the generic export.

        Pickling the ``prev``/``next`` chain recurses once per data
        node and overflows pickle's recursion limit on large trees.
        The leaves stay reachable through the inner-node tree (pickle
        depth = tree height), and :meth:`_link_leaves` reconstructs
        the chain on restore.
        """
        self._require_built()
        head = self._head
        leaves: list[_DataNode] = []
        node = head
        while node is not None:
            leaves.append(node)
            node = node.next
        try:
            for leaf in leaves:
                leaf.prev = None
                leaf.next = None
            self._head = None
            return export_index_state(self)
        finally:
            self._head = head
            for i, leaf in enumerate(leaves):
                leaf.prev = leaves[i - 1] if i > 0 else None
                leaf.next = leaves[i + 1] if i + 1 < len(leaves) else None

    @classmethod
    def from_state(cls, state: IndexState,
                   arrays: list[np.ndarray] | None = None) -> "ALEXIndex":
        """Relink the leaf chain after the generic restore."""
        instance = super().from_state(state, arrays)
        assert isinstance(instance, ALEXIndex)
        instance._link_leaves()
        return instance

    # -- navigation ------------------------------------------------------------
    def _find_leaf(self, key: float) -> _DataNode:
        node = self._root
        while isinstance(node, _InnerNode):
            self.stats.nodes_visited += 1
            self.stats.model_predictions += 1
            node = node.children[node.route(key)]
        self.stats.nodes_visited += 1
        return node

    def _slot_of(self, node: _DataNode, key: float) -> int:
        """Leftmost slot with ``keys[slot] >= key`` via model + gallop."""
        self.stats.model_predictions += 1
        cap = node.capacity
        raw = node.model.predict(key)
        pos = int(np.clip(round(raw), 0, cap - 1)) if np.isfinite(raw) else 0
        keys = node.keys
        if keys[pos] < key:
            step = 1
            lo = pos + 1
            while pos + step < cap and keys[pos + step] < key:
                lo = pos + step + 1
                step *= 2
                self.stats.comparisons += 1
            hi = min(pos + step + 1, cap)
        else:
            step = 1
            hi = pos
            while pos - step >= 0 and keys[pos - step] >= key:
                hi = pos - step
                step *= 2
                self.stats.comparisons += 1
            lo = max(pos - step, 0)
        while lo < hi:
            mid = (lo + hi) // 2
            self.stats.comparisons += 1
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # -- reads --------------------------------------------------------------------
    def lookup(self, key: float) -> object | None:
        self._require_built()
        if self._root is None or self._size == 0:
            return None
        key = float(key)
        node = self._find_leaf(key)
        slot = self._slot_of(node, key)
        if slot < node.capacity and node.keys[slot] == key and node.occupied[slot]:
            self.stats.keys_scanned += 1
            return node.values[slot]
        return None

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low or self._root is None:
            return []
        low = float(low)
        high = float(high)
        node: _DataNode | None = self._find_leaf(low)
        slot = self._slot_of(node, low)
        out: list[tuple[float, object]] = []
        while node is not None:
            while slot < node.capacity:
                if node.occupied[slot]:
                    k = float(node.keys[slot])
                    if k > high:
                        return out
                    if k >= low:
                        out.append((k, node.values[slot]))
                        self.stats.keys_scanned += 1
                slot += 1
            node = node.next
            slot = 0
            if node is not None:
                self.stats.nodes_visited += 1
        return out

    # -- writes ---------------------------------------------------------------------
    def insert(self, key: float, value: object | None = None) -> None:
        self._require_built()
        key = float(key)
        if self._root is None:
            self._root = self._build_data_node(np.array([key]), [value])
            self._head = self._root
            self._size = 1
            return
        node = self._find_leaf(key)
        if self._insert_into_leaf(node, key, value):
            self._size += 1

    def _insert_into_leaf(self, node: _DataNode, key: float, value: object) -> bool:
        slot = self._slot_of(node, key)
        if slot < node.capacity and node.keys[slot] == key and node.occupied[slot]:
            node.values[slot] = value
            return False
        if node.count + 1 > node.capacity * 0.95 or node.count + 1 > self.max_leaf_keys:
            self._grow_leaf(node)
            # The leaf may have been replaced by a subtree: re-descend.
            target = self._find_leaf(key)
            return self._insert_into_leaf(target, key, value)
        self._gapped_insert(node, slot, key, value)
        node.count += 1
        return True

    def _gapped_insert(self, node: _DataNode, slot: int, key: float, value: object) -> None:
        """Place ``key`` at ``slot``, shifting toward the nearest gap.

        Occupancy-bounded: callers enforce the 0.95 density cap before
        descending here, so gaps stay dense and the walk is short in
        expectation, capped by one node's capacity.
        """
        occupied = node.occupied
        cap = node.capacity
        # Nearest gap to the right of (and including) slot.
        gap_right = slot
        while gap_right < cap and occupied[gap_right]:
            gap_right += 1
        if gap_right < cap:
            if gap_right > slot:
                node.keys[slot + 1:gap_right + 1] = node.keys[slot:gap_right]
                node.values[slot + 1:gap_right + 1] = node.values[slot:gap_right]
                occupied[slot + 1:gap_right + 1] = occupied[slot:gap_right]
            node.keys[slot] = key
            node.values[slot] = value
            occupied[slot] = True
            return
        # No gap to the right: find one to the left (must exist, caller
        # checked the density bound).
        gap_left = slot - 1
        while gap_left >= 0 and occupied[gap_left]:
            gap_left -= 1
        assert gap_left >= 0, "gapped insert called on a full node"
        insert_at = slot - 1
        node.keys[gap_left:insert_at] = node.keys[gap_left + 1:insert_at + 1]
        node.values[gap_left:insert_at] = node.values[gap_left + 1:insert_at + 1]
        occupied[gap_left:insert_at] = occupied[gap_left + 1:insert_at + 1]
        node.keys[insert_at] = key
        node.values[insert_at] = value
        occupied[insert_at] = True

    def _leaf_items(self, node: _DataNode) -> tuple[np.ndarray, list[object]]:
        mask = node.occupied
        return node.keys[mask].copy(), [node.values[i] for i in np.nonzero(mask)[0]]

    def _grow_leaf(self, node: _DataNode) -> None:
        """Expand a leaf in place, or convert it to a subtree when too big."""
        keys, values = self._leaf_items(node)
        if keys.size < self.max_leaf_keys:
            replacement: _InnerNode | _DataNode = self._build_data_node(keys, values)
        else:
            replacement = self._build_subtree_from_overflow(keys, values)
        self._replace_node(node, replacement, float(keys[0]) if keys.size else None)

    def _build_subtree_from_overflow(self, keys: np.ndarray, values: list[object]):
        """Split an overflowing leaf into a model-routed subtree.

        Capacity-bounded: called with one leaf's keys (exactly
        ``max_leaf_keys`` of them), so the rebuild is O(1) in n and
        amortized over the inserts that filled the leaf.

        Must produce an inner node even when the key count equals the
        leaf limit, otherwise the leaf would rebuild itself forever.
        """
        return self._build_inner(keys, values)

    def _swap_via_route(self, old: _DataNode, new, key: float) -> bool:
        """Model-guided descent to ``old``'s parent; True on success."""
        node = self._root
        while isinstance(node, _InnerNode):
            idx = node.route(key)
            child = node.children[idx]
            if child is old:
                node.children[idx] = new
                return True
            node = child
        return False

    def _replace_node(self, old: _DataNode, new, route_key: float | None = None) -> None:
        """Swap ``old`` for ``new`` in the routing tree and leaf chain.

        Level-bounded: with a ``route_key`` the parent is found by the
        same model-guided descent as :meth:`_find_leaf`; the exhaustive
        tree scan runs only as a fallback when routing misses.
        """
        if self._root is old:
            self._root = new
        elif route_key is None or not self._swap_via_route(old, new, route_key):
            stack = [self._root]
            done = False
            while stack and not done:
                current = stack.pop()
                if isinstance(current, _InnerNode):
                    for i, child in enumerate(current.children):
                        if child is old:
                            current.children[i] = new
                            done = True
                            break
                        if isinstance(child, _InnerNode):
                            stack.append(child)
        # Splice the replacement's leaves into the chain.
        first, last = self._leaf_span(new)
        prev_leaf, next_leaf = old.prev, old.next
        first.prev = prev_leaf
        if prev_leaf is not None:
            prev_leaf.next = first
        else:
            self._head = first
        last.next = next_leaf
        if next_leaf is not None:
            next_leaf.prev = last

    def _leaf_span(self, node) -> tuple[_DataNode, _DataNode]:
        """(leftmost, rightmost) leaves of a freshly built subtree; also
        links the subtree's internal leaf chain."""
        leaves: list[_DataNode] = []

        def collect(current) -> None:
            if isinstance(current, _DataNode):
                leaves.append(current)
            else:
                for child in current.children:
                    collect(child)

        collect(node)
        for i, leaf in enumerate(leaves):
            leaf.prev = leaves[i - 1] if i > 0 else None
            leaf.next = leaves[i + 1] if i + 1 < len(leaves) else None
        return leaves[0], leaves[-1]

    def delete(self, key: float) -> bool:
        self._require_built()
        if self._root is None:
            return False
        key = float(key)
        node = self._find_leaf(key)
        slot = self._slot_of(node, key)
        if slot >= node.capacity or node.keys[slot] != key or not node.occupied[slot]:
            return False
        node.occupied[slot] = False
        node.values[slot] = None
        # Restore the gap invariant: this slot and any gap-run after it
        # must duplicate the nearest occupied key to the left.
        left_key = -np.inf
        for s in range(slot - 1, -1, -1):
            if node.occupied[s]:
                left_key = node.keys[s]
                break
        s = slot
        while s < node.capacity and not node.occupied[s]:
            node.keys[s] = left_key
            s += 1
        node.count -= 1
        self._size -= 1
        return True

    def __len__(self) -> int:
        return self._size
